"""Ongoing integers — Section X's first future-work item, implemented.

The paper's outlook asks for "a duration function for ongoing time intervals
whose result are ongoing integers".  The duration of ``[a, now)`` at
reference time rt is ``max(0, rt - a)`` — it changes *linearly* with the
reference time, so ongoing integers cannot be step functions: they are
**piecewise-linear** functions of the reference time.

:class:`OngoingInt` represents such a function as contiguous half-open
segments ``[start, end)``, each carrying an affine form
``value(rt) = intercept + slope * rt`` with integer coefficients.  The
representation is closed under negation, addition, subtraction, constant
multiplication, minimum, and maximum (crossings split segments at integer
boundaries), and comparisons yield ongoing booleans — so ongoing integers
compose with the rest of the library exactly like ongoing time points do.

As with every ongoing type, the defining law is Definition 4's:
``‖f op g‖rt == ‖f‖rt opF ‖g‖rt`` at every reference time, and that is how
the test suite checks each operation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.core.boolean import OngoingBoolean
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF, TimePoint
from repro.errors import TimeDomainError

__all__ = ["OngoingInt"]

#: One segment: value(rt) = intercept + slope * rt on [start, end).
Segment = Tuple[TimePoint, TimePoint, int, int]


def _normalize(segments: Sequence[Segment]) -> Tuple[Segment, ...]:
    """Validate coverage/contiguity and merge equal adjacent affine forms."""
    if not segments:
        raise TimeDomainError("an ongoing integer needs at least one segment")
    ordered = sorted(segments)
    if ordered[0][0] != MINUS_INF or ordered[-1][1] != PLUS_INF:
        raise TimeDomainError(
            "ongoing integer segments must cover (-inf, inf)"
        )
    merged: List[Segment] = []
    cursor = MINUS_INF
    for start, end, intercept, slope in ordered:
        if start != cursor:
            raise TimeDomainError(
                f"ongoing integer segments must be contiguous; gap at {start}"
            )
        if start >= end:
            raise TimeDomainError(f"empty segment [{start}, {end})")
        cursor = end
        if merged and merged[-1][2] == intercept and merged[-1][3] == slope:
            previous = merged.pop()
            merged.append((previous[0], end, intercept, slope))
        else:
            merged.append((start, end, intercept, slope))
    return tuple(merged)


class OngoingInt:
    """An integer-valued, piecewise-linear function of the reference time."""

    __slots__ = ("_segments",)

    def __init__(self, segments: Iterable[Segment]):
        self._segments = _normalize(list(segments))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "OngoingInt":
        """The fixed integer *value* embedded as an ongoing integer."""
        return cls([(MINUS_INF, PLUS_INF, value, 0)])

    @classmethod
    def step(
        cls, where: IntervalSet, inside: int = 1, outside: int = 0
    ) -> "OngoingInt":
        """A step function: *inside* on the set, *outside* elsewhere.

        The indicator of a tuple's reference time — the building block of
        the COUNT aggregate.
        """
        segments: List[Segment] = []
        cursor = MINUS_INF
        for start, end in where:
            if cursor < start:
                segments.append((cursor, start, outside, 0))
            segments.append((start, end, inside, 0))
            cursor = end
        if cursor < PLUS_INF:
            segments.append((cursor, PLUS_INF, outside, 0))
        if not segments:
            segments.append((MINUS_INF, PLUS_INF, outside, 0))
        return cls(segments)

    @classmethod
    def sum_of_steps(cls, sets: Iterable[IntervalSet]) -> "OngoingInt":
        """``Σ indicator(rt ∈ s)`` over many sets, in one event sweep.

        Equivalent to summing :meth:`step` instances but linear in the
        total number of interval boundaries — this is what makes COUNT over
        large relations cheap.
        """
        events: dict[TimePoint, int] = {}
        for interval_set in sets:
            for start, end in interval_set:
                events[start] = events.get(start, 0) + 1
                events[end] = events.get(end, 0) - 1
        if not events:
            return cls.constant(0)
        segments: List[Segment] = []
        cursor = MINUS_INF
        level = 0
        for boundary in sorted(events):
            if events[boundary] == 0:
                continue
            if cursor < boundary:
                segments.append((cursor, boundary, level, 0))
            level += events[boundary]
            cursor = boundary
        if cursor < PLUS_INF:
            segments.append((cursor, PLUS_INF, level, 0))
        return cls(segments)

    # ------------------------------------------------------------------
    # Introspection and the bind operator
    # ------------------------------------------------------------------

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    def instantiate(self, rt: TimePoint) -> int:
        """``‖f‖rt`` — the fixed integer value at reference time rt."""
        for start, end, intercept, slope in self._segments:
            if start <= rt < end:
                return intercept + slope * rt
        raise TimeDomainError(f"reference time {rt} outside the domain")

    def is_constant(self) -> bool:
        return len(self._segments) == 1 and self._segments[0][3] == 0

    # ------------------------------------------------------------------
    # Arithmetic (closed under the representation)
    # ------------------------------------------------------------------

    def _aligned(self, other: "OngoingInt") -> List[Tuple[TimePoint, TimePoint, int, int, int, int]]:
        """Co-refine both segmentations: pieces with both affine forms."""
        boundaries = sorted(
            {s for seg in self._segments for s in (seg[0], seg[1])}
            | {s for seg in other._segments for s in (seg[0], seg[1])}
        )
        pieces = []
        for start, end in zip(boundaries, boundaries[1:]):
            mine = self._form_at(start)
            theirs = other._form_at(start)
            pieces.append((start, end, mine[0], mine[1], theirs[0], theirs[1]))
        return pieces

    def _form_at(self, rt: TimePoint) -> Tuple[int, int]:
        for start, end, intercept, slope in self._segments:
            if start <= rt < end:
                return (intercept, slope)
        raise TimeDomainError(f"no segment covers {rt}")

    def __add__(self, other: object) -> "OngoingInt":
        other_int = _coerce(other)
        return OngoingInt(
            (start, end, b1 + b2, k1 + k2)
            for start, end, b1, k1, b2, k2 in self._aligned(other_int)
        )

    def __sub__(self, other: object) -> "OngoingInt":
        other_int = _coerce(other)
        return OngoingInt(
            (start, end, b1 - b2, k1 - k2)
            for start, end, b1, k1, b2, k2 in self._aligned(other_int)
        )

    def __neg__(self) -> "OngoingInt":
        return OngoingInt(
            (start, end, -intercept, -slope)
            for start, end, intercept, slope in self._segments
        )

    def scaled(self, factor: int) -> "OngoingInt":
        """Multiplication by a fixed integer factor."""
        return OngoingInt(
            (start, end, intercept * factor, slope * factor)
            for start, end, intercept, slope in self._segments
        )

    def _choose(
        self, other: "OngoingInt", keep_smaller: bool
    ) -> "OngoingInt":
        """Pointwise min/max, splitting pieces at integer crossings."""
        segments: List[Segment] = []
        for start, end, b1, k1, b2, k2 in self._aligned(_coerce(other)):
            # d(rt) = (b1 - b2) + (k1 - k2) rt; the smaller function wins
            # where d < 0 (for min) — split the piece where d changes sign.
            db, dk = b1 - b2, k1 - k2
            cuts = [start, end]
            if dk != 0:
                # Smallest rt with d(rt) >= 0 (dk > 0) resp. d(rt) <= 0
                # (dk < 0) — the integer boundary where the winner changes.
                if dk > 0:
                    boundary = _ceil_div(-db, dk)
                else:
                    boundary = _ceil_div(db, -dk)
                if start < boundary < end:
                    cuts = [start, boundary, end]
            for piece_start, piece_end in zip(cuts, cuts[1:]):
                probe = piece_start if piece_start > MINUS_INF else piece_end - 1
                dval = (b1 - b2) + (k1 - k2) * probe
                # When the functions are equal at the probe (the split
                # boundary itself), the winner over the rest of the piece
                # is decided by the slope of the difference.
                sign = dval if dval != 0 else dk
                take_first = (sign <= 0) if keep_smaller else (sign >= 0)
                if take_first:
                    segments.append((piece_start, piece_end, b1, k1))
                else:
                    segments.append((piece_start, piece_end, b2, k2))
        return OngoingInt(segments)

    def minimum(self, other: object) -> "OngoingInt":
        """Pointwise minimum (``‖min(f,g)‖rt == min(‖f‖rt, ‖g‖rt)``)."""
        return self._choose(_coerce(other), keep_smaller=True)

    def maximum(self, other: object) -> "OngoingInt":
        """Pointwise maximum."""
        return self._choose(_coerce(other), keep_smaller=False)

    def clamp_at_zero(self) -> "OngoingInt":
        """``max(f, 0)`` — the clamping the duration function needs."""
        return self.maximum(OngoingInt.constant(0))

    def mask(self, where: IntervalSet, outside: int = 0) -> "OngoingInt":
        """Keep the function on *where*, *outside* (default 0) elsewhere.

        Used by aggregation to confine a tuple's contribution to its
        reference time: ``duration(vt).mask(rt_set)``.
        """
        segments: List[Segment] = []
        for start, end, intercept, slope in self._segments:
            cursor = start
            for keep_start, keep_end in where:
                if keep_end <= start or keep_start >= end:
                    continue
                lo = max(start, keep_start)
                hi = min(end, keep_end)
                if cursor < lo:
                    segments.append((cursor, lo, outside, 0))
                segments.append((lo, hi, intercept, slope))
                cursor = hi
            if cursor < end:
                segments.append((cursor, end, outside, 0))
        return OngoingInt(segments)

    # ------------------------------------------------------------------
    # Comparisons — results are ongoing booleans
    # ------------------------------------------------------------------

    def _solve(self, other: object, relation: str) -> IntervalSet:
        pieces = self._aligned(_coerce(other))
        true_parts: List[Tuple[TimePoint, TimePoint]] = []
        for start, end, b1, k1, b2, k2 in pieces:
            db, dk = b1 - b2, k1 - k2
            if dk == 0:
                holds = _relation_holds(db, relation)
                if holds:
                    true_parts.append((start, end))
                continue
            # d(rt) = db + dk*rt is strictly monotone on the piece; the
            # boundary where d crosses zero splits it into a "<0" side and
            # a ">=0" side, with at most one exact-zero point.
            if dk > 0:
                zero_from = _ceil_div(-db, dk)  # smallest rt with d >= 0
                negative = (start, min(end, zero_from))
                non_negative = (max(start, zero_from), end)
            else:
                zero_from = _ceil_div(db, -dk)  # smallest rt with d <= 0
                negative = (max(start, zero_from), end)
                non_negative = (start, min(end, zero_from))
                # on this side: d <= 0 from zero_from on; d > 0 before
            exact = None
            if (-db) % dk == 0:
                root = (-db) // dk
                if start <= root < end:
                    exact = root
            for lo, hi in _relation_parts(
                relation, negative, non_negative, exact, dk
            ):
                if lo < hi:
                    true_parts.append((lo, hi))
        return IntervalSet(true_parts)

    def less_than(self, other: object) -> OngoingBoolean:
        return OngoingBoolean(self._solve(other, "<"))

    def less_equal(self, other: object) -> OngoingBoolean:
        return OngoingBoolean(self._solve(other, "<="))

    def equal(self, other: object) -> OngoingBoolean:
        return OngoingBoolean(self._solve(other, "=="))

    def not_equal(self, other: object) -> OngoingBoolean:
        return self.equal(other).negation()

    def greater_than(self, other: object) -> OngoingBoolean:
        return _coerce(other).less_than(self)

    def greater_equal(self, other: object) -> OngoingBoolean:
        return _coerce(other).less_equal(self)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int) and not isinstance(other, bool):
            other = OngoingInt.constant(other)
        if not isinstance(other, OngoingInt):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __repr__(self) -> str:
        return f"OngoingInt({list(self._segments)!r})"

    def format(self) -> str:
        """Human rendering, e.g. ``{(-inf, 5): 0, [5, inf): rt - 5}``."""
        from repro.core.timeline import fmt_point

        parts = []
        for start, end, intercept, slope in self._segments:
            left = "(" if start <= MINUS_INF else "["
            span = f"{left}{fmt_point(start)}, {fmt_point(end)})"
            if slope == 0:
                body = str(intercept)
            else:
                slope_text = "rt" if slope == 1 else f"{slope}*rt"
                if intercept == 0:
                    body = slope_text
                elif intercept > 0:
                    body = f"{slope_text} + {intercept}"
                else:
                    body = f"{slope_text} - {-intercept}"
            parts.append(f"{span}: {body}")
        return "{" + ", ".join(parts) + "}"


def _coerce(value: object) -> OngoingInt:
    if isinstance(value, OngoingInt):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return OngoingInt.constant(value)
    raise TimeDomainError(f"cannot treat {value!r} as an ongoing integer")


def _ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling division for positive denominators."""
    return -((-numerator) // denominator)


def _relation_holds(difference: int, relation: str) -> bool:
    if relation == "<":
        return difference < 0
    if relation == "<=":
        return difference <= 0
    return difference == 0


def _relation_parts(relation, negative, non_negative, exact, dk):
    """Sub-ranges of a piece where the relation holds (monotone d)."""
    if relation == "<":
        if dk > 0:
            yield negative
        else:
            # d <= 0 holds on `negative`; exclude the exact zero point.
            lo, hi = negative
            if exact is not None and exact == lo:
                yield (lo + 1, hi)
            else:
                yield negative
    elif relation == "<=":
        if dk > 0:
            lo, hi = negative
            if exact is not None and exact == hi:
                yield (lo, hi + 1)
            else:
                yield negative
        else:
            yield negative
    elif relation == "==":
        if exact is not None:
            yield (exact, exact + 1)
