"""The duration function on ongoing intervals (Section X future work).

``duration([ts, te))`` at reference time rt is the length of the
instantiated interval, clamped at zero for the reference times where the
interval is empty::

    ‖duration(i)‖rt  ==  max(0, ‖te‖rt - ‖ts‖rt)

The result is an :class:`~repro.core.integer.OngoingInt` — for an expanding
interval ``[a, now)`` it is the ramp ``0`` until ``a`` and ``rt - a``
afterwards, exactly the paper's motivating case for ongoing integers.
"""

from __future__ import annotations

from repro.core.integer import OngoingInt
from repro.core.interval import OngoingInterval
from repro.core.timeline import MINUS_INF, PLUS_INF
from repro.core.timepoint import OngoingTimePoint

__all__ = ["point_value", "duration"]


def point_value(point: OngoingTimePoint) -> OngoingInt:
    """The instantiation function ``rt -> ‖a+b‖rt`` as an ongoing integer.

    Piecewise: the constant ``a`` before ``a``, the identity ``rt`` between
    ``a`` and ``b``, the constant ``b`` afterwards (Definition 2 verbatim).
    """
    a, b = point.components()
    segments = []
    if a > MINUS_INF:
        segments.append((MINUS_INF, a, a, 0))
    middle_start = a if a > MINUS_INF else MINUS_INF
    middle_end = b if b < PLUS_INF else PLUS_INF
    if middle_start < middle_end:
        segments.append((middle_start, middle_end, 0, 1))
    if b < PLUS_INF:
        segments.append((b, PLUS_INF, b, 0))
    if not segments:
        # a == b with both at the same limit cannot happen (a <= b and both
        # finite-or-limit); a fixed point a == b yields the constant a.
        segments.append((MINUS_INF, PLUS_INF, a, 0))
    return OngoingInt(segments)


def duration(interval: OngoingInterval) -> OngoingInt:
    """``max(0, ‖te‖rt - ‖ts‖rt)`` as an ongoing integer."""
    return (point_value(interval.end) - point_value(interval.start)).clamp_at_zero()
