"""The six core operations and derived comparisons (Section VI of the paper).

The core operations are ``<``, ``min``, ``max`` on ongoing time points and
``∧``, ``∨``, ``¬`` on ongoing booleans (Definition 4).  Each is defined by
the requirement that *at every reference time* its result instantiates to the
result of the corresponding fixed-type operation on the instantiated inputs —
which is exactly the property the test suite checks with hypothesis.

The implementations use the proven equivalences of Theorem 1:

* ``a+b < c+d`` is one of five ongoing booleans, selected by the decision
  tree of Fig. 6 with at most three fixed-value comparisons;
* ``min(a+b, c+d) == minF(a, c)+minF(b, d)`` and dually for ``max`` —
  which also shows that Ω is closed under min/max (Table I);
* the connectives are single sweep-line passes over the true-sets
  (implemented in :class:`~repro.core.intervalset.IntervalSet`).

The derived comparisons (``<=``, ``=``, ``!=``, ``>``, ``>=``) are expressed
through the core operations exactly as in Table II.
"""

from __future__ import annotations

from repro.core.boolean import O_FALSE, O_TRUE, OngoingBoolean
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF
from repro.core.timepoint import OngoingTimePoint

__all__ = [
    "less_than",
    "less_equal",
    "equal",
    "not_equal",
    "greater_than",
    "greater_equal",
    "ongoing_min",
    "ongoing_max",
    "conjunction",
    "disjunction",
    "negation",
]


def less_than(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingBoolean:
    """``t1 < t2`` on ongoing time points — the decision tree of Fig. 6.

    For ``a+b < c+d`` (with the domain invariants ``a <= b`` and ``c <= d``)
    the five cases of Theorem 1 are:

    1. ``a <= b < c <= d``  — true at every reference time;
    2. ``a < c <= d <= b``  — true exactly on ``(-inf, c)``;
    3. ``c <= a <= b < d``  — true exactly on ``[b + 1, inf)``;
    4. ``a < c <= b < d``   — true on ``(-inf, c)`` and ``[b + 1, inf)``;
    5. otherwise            — false at every reference time.

    The decision tree orders the comparisons ``b < d``, ``b < c``, ``a < c``
    so that at most three are needed.
    """
    a, b = t1.components()
    c, d = t2.components()
    if b < d:
        if b < c:
            return O_TRUE
        if a < c:
            # Case 4: true on (-inf, c) and on [b + 1, inf).  The pieces are
            # disjoint and ordered (c <= b < b + 1), so the set is built
            # normalized without a union sweep.
            if b + 1 < PLUS_INF:
                pieces = [(MINUS_INF, c), (b + 1, PLUS_INF)]
            else:
                pieces = [(MINUS_INF, c)]
            return OngoingBoolean(IntervalSet._from_normalized(pieces))
        return OngoingBoolean(IntervalSet.at_least(b + 1))
    if a < c:
        return OngoingBoolean(IntervalSet.below(c))
    return O_FALSE


def less_equal(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingBoolean:
    """``t1 <= t2  ==  not (t2 < t1)`` (Table II)."""
    return less_than(t2, t1).negation()


def equal(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingBoolean:
    """``t1 = t2  ==  t1 <= t2 and t2 <= t1`` (Table II)."""
    return less_equal(t1, t2).conjunction(less_equal(t2, t1))


def not_equal(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingBoolean:
    """``t1 != t2  ==  t1 < t2 or t2 < t1`` (Table II)."""
    return less_than(t1, t2).disjunction(less_than(t2, t1))


def greater_than(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingBoolean:
    """``t1 > t2  ==  t2 < t1``."""
    return less_than(t2, t1)


def greater_equal(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingBoolean:
    """``t1 >= t2  ==  not (t1 < t2)``."""
    return less_than(t1, t2).negation()


def ongoing_min(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingTimePoint:
    """``min(a+b, c+d) == minF(a, c)+minF(b, d)`` (Theorem 1).

    The componentwise result is again an element of Ω, which is the closure
    property distinguishing Ω from the earlier domains in Table I.
    """
    a, b = t1.components()
    c, d = t2.components()
    return OngoingTimePoint(a if a < c else c, b if b < d else d)


def ongoing_max(t1: OngoingTimePoint, t2: OngoingTimePoint) -> OngoingTimePoint:
    """``max(a+b, c+d) == maxF(a, c)+maxF(b, d)`` (Theorem 1)."""
    a, b = t1.components()
    c, d = t2.components()
    return OngoingTimePoint(a if a > c else c, b if b > d else d)


def conjunction(b1: OngoingBoolean, b2: OngoingBoolean) -> OngoingBoolean:
    """``b1 and b2`` — functional spelling of ``b1 & b2``."""
    return b1.conjunction(b2)


def disjunction(b1: OngoingBoolean, b2: OngoingBoolean) -> OngoingBoolean:
    """``b1 or b2`` — functional spelling of ``b1 | b2``."""
    return b1.disjunction(b2)


def negation(b1: OngoingBoolean) -> OngoingBoolean:
    """``not b1`` — functional spelling of ``~b1``."""
    return b1.negation()
