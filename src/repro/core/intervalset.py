"""Sets of fixed time intervals — the representation behind ``RT`` and ``St``.

The paper represents both a tuple's reference time ``RT`` and the true-set
``St`` of an ongoing boolean as a list of fixed time intervals that are

* **maximal** — adjacent or overlapping intervals are merged,
* **non-overlapping**, and
* **sorted in ascending order** (Section VIII, "Ongoing Booleans").

These three properties let the logical connectives run as a single sweep
over both inputs (Algorithm 1 of the paper): no sorting is needed, every
input interval is inspected at most once, and the result is produced already
normalized.

:class:`IntervalSet` is an immutable value type.  All intervals are half-open
``[start, end)`` over the discrete domain ``T``; the paper's notation
``(-inf, b)`` corresponds to ``[MINUS_INF, b)`` because ``-inf`` is the
smallest element of ``T``.  Reference times range over
``MINUS_INF <= rt < PLUS_INF``; the upper limit itself is not a reference
time (no half-open interval can contain it), which mirrors the paper's use
of ``inf`` strictly as an exclusive end point.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, Tuple

from repro.errors import IntervalError
from repro.core.timeline import (
    MINUS_INF,
    PLUS_INF,
    TimePoint,
    check_time_point,
    fmt_interval,
)

__all__ = ["IntervalSet", "EMPTY_SET", "UNIVERSAL_SET"]

Pair = Tuple[TimePoint, TimePoint]


class IntervalSet:
    """An immutable, normalized set of fixed half-open time intervals.

    Instances behave like sets of reference times: ``rt in s`` tests
    membership, ``&``, ``|``, ``-`` and ``~`` are intersection, union,
    difference, and complement.  The class maintains the representation
    invariant (maximal, non-overlapping, ascending) under every operation.
    """

    __slots__ = ("_intervals", "_starts")

    def __init__(self, intervals: Iterable[Pair] = ()):
        """Build a set from any iterable of ``(start, end)`` pairs.

        The pairs may overlap, touch, or arrive unsorted — they are
        normalized here.  Empty pairs (``start >= end``) are rejected rather
        than silently dropped: an empty interval inside an RT list is a sign
        of a bug upstream.
        """
        pairs = []
        for start, end in intervals:
            check_time_point(start, what="interval start")
            check_time_point(end, what="interval end")
            if start >= end:
                raise IntervalError(
                    f"fixed interval [{start}, {end}) is empty or inverted"
                )
            pairs.append((start, end))
        pairs.sort()
        merged: list[Pair] = []
        for start, end in pairs:
            if merged and start <= merged[-1][1]:
                last_start, last_end = merged[-1]
                if end > last_end:
                    merged[-1] = (last_start, end)
            else:
                merged.append((start, end))
        self._intervals: Tuple[Pair, ...] = tuple(merged)
        # Parallel list of start points for binary-search membership tests.
        self._starts: Tuple[TimePoint, ...] = tuple(p[0] for p in merged)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_normalized(cls, pairs: list[Pair]) -> "IntervalSet":
        """Fast path for results that are normalized by construction."""
        instance = cls.__new__(cls)
        instance._intervals = tuple(pairs)
        instance._starts = tuple(p[0] for p in pairs)
        return instance

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set of reference times ``{}``."""
        return _EMPTY

    @classmethod
    def universal(cls) -> "IntervalSet":
        """All reference times ``{(-inf, inf)}`` — the trivial RT."""
        return _UNIVERSAL

    @classmethod
    def point(cls, rt: TimePoint) -> "IntervalSet":
        """The singleton set ``{[rt, rt + 1)}``."""
        check_time_point(rt, what="reference time")
        if rt >= PLUS_INF:
            raise IntervalError("PLUS_INF is not a valid reference time")
        return cls._from_normalized([(rt, rt + 1)])

    @classmethod
    def at_least(cls, rt: TimePoint) -> "IntervalSet":
        """All reference times ``>= rt``, i.e. ``{[rt, inf)}``."""
        if rt >= PLUS_INF:
            return _EMPTY
        return cls._from_normalized([(rt, PLUS_INF)])

    @classmethod
    def below(cls, rt: TimePoint) -> "IntervalSet":
        """All reference times ``< rt``, i.e. ``{(-inf, rt)}``."""
        if rt <= MINUS_INF:
            return _EMPTY
        return cls._from_normalized([(MINUS_INF, rt)])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Pair, ...]:
        """The normalized ``(start, end)`` pairs, ascending."""
        return self._intervals

    @property
    def cardinality(self) -> int:
        """Number of fixed intervals needed to represent the set.

        This is the quantity Table IV of the paper reports per predicate
        (and the driver of the RT storage size in Table V).
        """
        return len(self._intervals)

    def is_empty(self) -> bool:
        """``True`` iff no reference time belongs to the set."""
        return not self._intervals

    def is_universal(self) -> bool:
        """``True`` iff every reference time belongs to the set."""
        return self._intervals == ((MINUS_INF, PLUS_INF),)

    def __contains__(self, rt: TimePoint) -> bool:
        """Membership test via binary search (O(log n))."""
        index = bisect_right(self._starts, rt) - 1
        if index < 0:
            return False
        start, end = self._intervals[index]
        return start <= rt < end

    def earliest(self) -> TimePoint:
        """Smallest reference time in the set (requires non-empty)."""
        if not self._intervals:
            raise IntervalError("empty interval set has no earliest point")
        return self._intervals[0][0]

    def latest_end(self) -> TimePoint:
        """Exclusive upper end of the set (requires non-empty)."""
        if not self._intervals:
            raise IntervalError("empty interval set has no latest end")
        return self._intervals[-1][1]

    def total_ticks(self) -> TimePoint:
        """Total number of reference times covered (may be infinite-sized).

        Sets touching a domain limit report ``PLUS_INF`` to signal an
        unbounded cover.
        """
        if not self._intervals:
            return 0
        if self._intervals[0][0] <= MINUS_INF or self._intervals[-1][1] >= PLUS_INF:
            return PLUS_INF
        return sum(end - start for start, end in self._intervals)

    # ------------------------------------------------------------------
    # The sweep-line connectives (Algorithm 1 and its duals)
    # ------------------------------------------------------------------

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection — Algorithm 1 of the paper (conjunction).

        Both inputs are normalized, so a single simultaneous sweep suffices:
        each input interval is visited at most once and the output is
        produced sorted and non-overlapping with no extra passes.
        """
        left = self._intervals
        right = other._intervals
        # Fast paths: empty/universal operands dominate in practice (base
        # tuples carry the trivial RT) and need no sweep.
        if not left or not right:
            return _EMPTY
        if left == _UNIVERSAL_PAIRS:
            return other
        if right == _UNIVERSAL_PAIRS:
            return self
        result: list[Pair] = []
        i, j = 0, 0
        while i < len(left) and j < len(right):
            left_start, left_end = left[i]
            right_start, right_end = right[j]
            if left_end <= right_start:
                i += 1
            elif right_end <= left_start:
                j += 1
            else:
                start = left_start if left_start > right_start else right_start
                end = left_end if left_end < right_end else right_end
                result.append((start, end))
                if left_end < right_end:
                    i += 1
                else:
                    j += 1
        return IntervalSet._from_normalized(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union by a merging sweep over both normalized inputs."""
        left = self._intervals
        right = other._intervals
        if not left:
            return other
        if not right:
            return self
        if left == _UNIVERSAL_PAIRS or right == _UNIVERSAL_PAIRS:
            return _UNIVERSAL
        result: list[Pair] = []
        i, j = 0, 0
        while i < len(left) or j < len(right):
            if j >= len(right) or (i < len(left) and left[i][0] <= right[j][0]):
                start, end = left[i]
                i += 1
            else:
                start, end = right[j]
                j += 1
            if result and start <= result[-1][1]:
                last_start, last_end = result[-1]
                if end > last_end:
                    result[-1] = (last_start, end)
            else:
                result.append((start, end))
        return IntervalSet._from_normalized(result)

    def complement(self) -> "IntervalSet":
        """Set complement with respect to all reference times.

        This realizes the paper's negation ``¬ b[St, Sf] == b[Sf, St]``:
        the complement of ``St`` is exactly ``Sf``.
        """
        result: list[Pair] = []
        cursor = MINUS_INF
        for start, end in self._intervals:
            if cursor < start:
                result.append((cursor, start))
            cursor = end
        if cursor < PLUS_INF:
            result.append((cursor, PLUS_INF))
        return IntervalSet._from_normalized(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other``."""
        return self.intersection(other.complement())

    def overlaps(self, other: "IntervalSet") -> bool:
        """``True`` iff the two sets share at least one reference time.

        Cheaper than materializing the intersection when only emptiness
        matters (used by the difference operator of the algebra).
        """
        left = self._intervals
        right = other._intervals
        i, j = 0, 0
        while i < len(left) and j < len(right):
            if left[i][1] <= right[j][0]:
                i += 1
            elif right[j][1] <= left[i][0]:
                j += 1
            else:
                return True
        return False

    # Operator sugar -----------------------------------------------------

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other)

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other)

    def __invert__(self) -> "IntervalSet":
        return self.complement()

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({list(self._intervals)!r})"

    def format(self) -> str:
        """Render the set the way the paper does, e.g. ``{[01/26, 08/16)}``."""
        if not self._intervals:
            return "{}"
        body = ", ".join(fmt_interval(start, end) for start, end in self._intervals)
        return "{" + body + "}"


_EMPTY = IntervalSet._from_normalized([])
_UNIVERSAL = IntervalSet._from_normalized([(MINUS_INF, PLUS_INF)])
_UNIVERSAL_PAIRS = ((MINUS_INF, PLUS_INF),)

#: The empty set of reference times.
EMPTY_SET = _EMPTY

#: All reference times ``{(-inf, inf)}`` — the trivial reference time.
UNIVERSAL_SET = _UNIVERSAL
