"""Ongoing time points — the time domain Ω (Section V-A of the paper).

An ongoing time point ``a+b`` (Definition 1) means *not earlier than a, but
not later than b*.  Its value at reference time ``rt`` (Definition 2) is::

            a    if rt <= a
    ‖a+b‖rt = rt   if a < rt < b
            b    otherwise

The four kinds of time points of Fig. 3 are all special cases:

* fixed time point ``a``       = ``a+a``
* current time point ``now``   = ``-inf+inf``
* growing time point ``a+``    = ``a+inf``
* limited time point ``+b``    = ``-inf+b``

Ω is closed under ``min`` and ``max`` (Theorem 1) — in contrast to the
previously proposed domains ``T ∪ {now}`` (Clifford) and ``Tf`` (Torp),
which is what Table I of the paper summarizes and what
``repro.bench.experiments.table01_domains`` verifies mechanically.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import TimeDomainError
from repro.core.timeline import (
    MINUS_INF,
    PLUS_INF,
    TimePoint,
    check_time_point,
    fmt_point,
)

__all__ = ["OngoingTimePoint", "NOW", "fixed", "growing", "limited"]


class OngoingTimePoint:
    """An element ``a+b`` of the ongoing time domain Ω (immutable).

    ``a`` is the earliest and ``b`` the latest value the point can take;
    Definition 1 requires ``a <= b``.  Equality, hashing, and ``repr`` treat
    instances as values.  The *order* operators (``<`` etc.) are deliberately
    **not** defined on this class: comparing ongoing time points yields an
    ongoing boolean, not a Python ``bool`` — use
    :func:`repro.core.operations.less_than` and friends.
    """

    __slots__ = ("_a", "_b")

    def __init__(self, a: TimePoint, b: TimePoint):
        check_time_point(a, what="ongoing point component a")
        check_time_point(b, what="ongoing point component b")
        if a > b:
            raise TimeDomainError(
                f"ongoing time point requires a <= b, got a={a}, b={b}"
            )
        self._a = a
        self._b = b

    # ------------------------------------------------------------------
    # Components and classification (Fig. 3)
    # ------------------------------------------------------------------

    @property
    def a(self) -> TimePoint:
        """The earliest value the point can instantiate to."""
        return self._a

    @property
    def b(self) -> TimePoint:
        """The latest value the point can instantiate to."""
        return self._b

    @property
    def is_fixed(self) -> bool:
        """``True`` iff the point instantiates to the same value at all rt."""
        return self._a == self._b

    @property
    def is_now(self) -> bool:
        """``True`` iff the point is ``now = -inf+inf``."""
        return self._a == MINUS_INF and self._b == PLUS_INF

    @property
    def is_growing(self) -> bool:
        """``True`` iff the point is a growing point ``a+`` (b = inf, a finite)."""
        return self._b == PLUS_INF and self._a > MINUS_INF

    @property
    def is_limited(self) -> bool:
        """``True`` iff the point is a limited point ``+b`` (a = -inf, b finite)."""
        return self._a == MINUS_INF and self._b < PLUS_INF

    @property
    def kind(self) -> str:
        """One of ``"fixed"``, ``"now"``, ``"growing"``, ``"limited"``,
        ``"general"`` — the taxonomy of Fig. 3 plus the general case."""
        if self.is_fixed:
            return "fixed"
        if self.is_now:
            return "now"
        if self.is_growing:
            return "growing"
        if self.is_limited:
            return "limited"
        return "general"

    # ------------------------------------------------------------------
    # The bind operator (Definition 2)
    # ------------------------------------------------------------------

    def instantiate(self, rt: TimePoint) -> TimePoint:
        """``‖a+b‖rt`` — the fixed value of the point at reference time rt."""
        if rt <= self._a:
            return self._a
        if rt < self._b:
            return rt
        return self._b

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def components(self) -> Tuple[TimePoint, TimePoint]:
        """The pair ``(a, b)``."""
        return (self._a, self._b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OngoingTimePoint):
            return NotImplemented
        return self._a == other._a and self._b == other._b

    def __hash__(self) -> int:
        return hash((self._a, self._b))

    def __repr__(self) -> str:
        return f"OngoingTimePoint({self._a}, {self._b})"

    def format(self) -> str:
        """Paper-style short rendering: ``a``, ``now``, ``a+``, ``+b``, ``a+b``."""
        if self.is_fixed:
            return fmt_point(self._a)
        if self.is_now:
            return "now"
        if self.is_growing:
            return f"{fmt_point(self._a)}+"
        if self.is_limited:
            return f"+{fmt_point(self._b)}"
        return f"{fmt_point(self._a)}+{fmt_point(self._b)}"

    def __str__(self) -> str:
        return self.format()


def fixed(point: TimePoint) -> OngoingTimePoint:
    """The fixed time point ``a = a+a`` embedded into Ω."""
    return OngoingTimePoint(point, point)


def growing(point: TimePoint) -> OngoingTimePoint:
    """The growing time point ``a+ = a+inf`` (not earlier than a, possibly later)."""
    return OngoingTimePoint(point, PLUS_INF)


def limited(point: TimePoint) -> OngoingTimePoint:
    """The limited time point ``+b = -inf+b`` (possibly earlier, not later than b)."""
    return OngoingTimePoint(MINUS_INF, point)


#: The current time point ``now = -inf+inf`` — instantiates to rt at every rt.
NOW = OngoingTimePoint(MINUS_INF, PLUS_INF)
