"""Predicates and functions on ongoing time intervals (Table II of the paper).

Every predicate is expressed through the six core operations, following the
equivalences of Table II.  Two points deserve emphasis:

* **Per-reference-time non-emptiness.**  Ongoing intervals can be partially
  empty, so each predicate conjoins the explicit non-emptiness checks
  ``ts < te`` and ``t̃s < t̃e``.  It is *not* sufficient to check emptiness
  once: the check must hold at each reference time (Example 2).
* **Empty-interval conventions.**  ``during`` counts an empty interval as
  being during any non-empty interval, and ``equals`` counts two empty
  intervals as equal — exactly the disjuncts Table II carries.

Beyond Table II, this module also provides the symmetric/inverse Allen
relations (``after``, ``met_by``, ``overlapped_by``, ``started_by``,
``finished_by``, ``contains``) and the point-in-interval test.  They are the
natural completions of the paper's predicate set and are used by the SQL-ish
front end.
"""

from __future__ import annotations

from repro.core.boolean import O_FALSE, O_TRUE, OngoingBoolean
from repro.core.interval import OngoingInterval
from repro.core.intervalset import IntervalSet
from repro.core.operations import (
    equal,
    less_equal,
    less_than,
    ongoing_max,
    ongoing_min,
)
from repro.core.timeline import MINUS_INF, PLUS_INF
from repro.core.timepoint import OngoingTimePoint

__all__ = [
    "before",
    "meets",
    "overlaps",
    "starts",
    "finishes",
    "during",
    "interval_equals",
    "intersect",
    "after",
    "met_by",
    "overlapped_by",
    "started_by",
    "finished_by",
    "contains",
    "contains_point",
    "interval_value_equals",
    "COMPOSED_REFERENCE",
]


def _non_empty(i: OngoingInterval) -> OngoingBoolean:
    """The ongoing boolean ``ts < te`` — true where *i* is non-empty."""
    return less_than(i.start, i.end)


# ----------------------------------------------------------------------
# Optimized evaluation (Section VIII: "we developed new algorithms ...
# the less-than predicate minimizes the number of value comparisons").
#
# The true-set of any ``a+b < c+d`` is the complement of a single fixed
# interval — its *gap*:
#
#   case 1 (always true)   gap = None
#   case 2 ((-inf, c))     gap = [c, inf)
#   case 3 ([b+1, inf))    gap = (-inf, b+1)
#   case 4 (two pieces)    gap = [c, b+1)
#   case 5 (always false)  gap = (-inf, inf)
#
# Dually, the true-set of ``t1 <= t2`` (= not(t2 < t1)) is a single fixed
# interval — the gap of ``t2 < t1``.  A conjunction of such predicates is
# therefore "one include-interval intersection minus a union of at most a
# handful of gaps", computable with a few comparisons and exactly one
# result allocation.  This is the fast path behind the public predicates;
# COMPOSED_REFERENCE keeps the definitional compositions for
# cross-validation (the test suite asserts both agree everywhere).
# ----------------------------------------------------------------------

_FULL_GAP = (MINUS_INF, PLUS_INF)


def _lt_gap(t1: OngoingTimePoint, t2: OngoingTimePoint):
    """The gap of ``t1 < t2``: ``St = T \\ [gap)``; ``None`` = no gap."""
    a, b = t1.components()
    c, d = t2.components()
    if b < d:
        if b < c:
            return None
        if a < c:
            return (c, b + 1)
        return (MINUS_INF, b + 1)
    if a < c:
        return (c, PLUS_INF)
    return _FULL_GAP


def _combine(includes, gaps) -> OngoingBoolean:
    """Intersect include-intervals, subtract gap-intervals, wrap the result.

    *includes* — fixed intervals whose intersection bounds the true-set
    (from ``<=``/``=`` conjuncts); *gaps* — fixed intervals excluded from
    it (from ``<`` conjuncts).  Both lists are tiny (at most 4 entries).
    """
    lo, hi = MINUS_INF, PLUS_INF
    for include_lo, include_hi in includes:
        if include_lo > lo:
            lo = include_lo
        if include_hi < hi:
            hi = include_hi
    if lo >= hi:
        return O_FALSE
    relevant = []
    for gap in gaps:
        if gap is None:
            continue
        gap_lo, gap_hi = gap
        if gap_lo < lo:
            gap_lo = lo
        if gap_hi > hi:
            gap_hi = hi
        if gap_lo < gap_hi:
            relevant.append((gap_lo, gap_hi))
    if not relevant:
        if lo == MINUS_INF and hi == PLUS_INF:
            return O_TRUE
        return OngoingBoolean(IntervalSet._from_normalized([(lo, hi)]))
    relevant.sort()
    pieces = []
    cursor = lo
    for gap_lo, gap_hi in relevant:
        if cursor < gap_lo:
            pieces.append((cursor, gap_lo))
        if gap_hi > cursor:
            cursor = gap_hi
    if cursor < hi:
        pieces.append((cursor, hi))
    if not pieces:
        return O_FALSE
    return OngoingBoolean(IntervalSet._from_normalized(pieces))


def before(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i before j  ==  te <= t̃s  and  ts < te  and  t̃s < t̃e``."""
    include = _lt_gap(j.start, i.end)  # St(te <= t̃s) is this single interval
    if include is None:
        return O_FALSE
    return _combine(
        (include,), (_lt_gap(i.start, i.end), _lt_gap(j.start, j.end))
    )


def meets(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i meets j  ==  te = t̃s  and  ts < te  and  t̃s < t̃e``."""
    le_gap = _lt_gap(j.start, i.end)   # St(te <= t̃s)
    ge_gap = _lt_gap(i.end, j.start)   # St(t̃s <= te)
    if le_gap is None or ge_gap is None:
        return O_FALSE
    return _combine(
        (le_gap, ge_gap), (_lt_gap(i.start, i.end), _lt_gap(j.start, j.end))
    )


def overlaps(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i overlaps j  ==  ts < t̃e  and  t̃s < te  and both non-empty``.

    This is the *symmetric* overlap of the paper's evaluation (the usual
    overlap check plus the per-reference-time non-emptiness checks), not
    Allen's strict ``overlaps``.
    """
    return _combine(
        (),
        (
            _lt_gap(i.start, j.end),
            _lt_gap(j.start, i.end),
            _lt_gap(i.start, i.end),
            _lt_gap(j.start, j.end),
        ),
    )


def starts(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i starts j  ==  ts = t̃s  and  ts < te  and  t̃s < t̃e``."""
    le_gap = _lt_gap(j.start, i.start)
    ge_gap = _lt_gap(i.start, j.start)
    if le_gap is None or ge_gap is None:
        return O_FALSE
    return _combine(
        (le_gap, ge_gap), (_lt_gap(i.start, i.end), _lt_gap(j.start, j.end))
    )


def finishes(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i finishes j  ==  te = t̃e  and  ts < te  and  t̃s < t̃e``."""
    le_gap = _lt_gap(j.end, i.end)
    ge_gap = _lt_gap(i.end, j.end)
    if le_gap is None or ge_gap is None:
        return O_FALSE
    return _combine(
        (le_gap, ge_gap), (_lt_gap(i.start, i.end), _lt_gap(j.start, j.end))
    )


def during(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i during j`` per Table II.

    ``(t̃s <= ts and te <= t̃e and both non-empty)
    or (te <= ts and t̃s < t̃e)`` — the second disjunct makes an empty
    interval count as during any non-empty interval.
    """
    contained = (
        less_equal(j.start, i.start)
        .conjunction(less_equal(i.end, j.end))
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )
    empty_in_non_empty = less_equal(i.end, i.start).conjunction(_non_empty(j))
    return contained.disjunction(empty_in_non_empty)


def interval_equals(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i equals j`` per Table II.

    ``(ts = t̃s and te = t̃e and both non-empty)
    or (te <= ts and t̃e <= t̃s)`` — two empty intervals are equal.
    """
    same = (
        equal(i.start, j.start)
        .conjunction(equal(i.end, j.end))
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )
    both_empty = less_equal(i.end, i.start).conjunction(less_equal(j.end, j.start))
    return same.disjunction(both_empty)


def intersect(i: OngoingInterval, j: OngoingInterval) -> OngoingInterval:
    """``i ∩ j  ==  [max(ts, t̃s), min(te, t̃e))`` (Table II).

    The result is again an ongoing interval of Ω × Ω: intersection never
    forces an instantiation — the property Torp's ``Tf`` has for ∩/− but
    loses for predicates, and that Anselma's domain only has for special
    cases.
    """
    return OngoingInterval(
        ongoing_max(i.start, j.start), ongoing_min(i.end, j.end)
    )


# ----------------------------------------------------------------------
# Inverse relations — completions of Table II used by the query front end.
# ----------------------------------------------------------------------


def after(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i after j  ==  j before i``."""
    return before(j, i)


def met_by(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i met_by j  ==  j meets i``."""
    return meets(j, i)


def overlapped_by(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i overlapped_by j  ==  j overlaps i`` (overlaps is symmetric)."""
    return overlaps(j, i)


def started_by(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i started_by j  ==  j starts i``."""
    return starts(j, i)


def finished_by(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i finished_by j  ==  j finishes i``."""
    return finishes(j, i)


def contains(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """``i contains j  ==  j during i``."""
    return during(j, i)


def contains_point(i: OngoingInterval, p: OngoingTimePoint) -> OngoingBoolean:
    """``p in [ts, te)  ==  ts <= p and p < te``.

    Emptiness needs no separate check: an empty interval can satisfy
    ``ts <= p < te`` at no reference time.
    """
    return less_equal(i.start, p).conjunction(less_than(p, i.end))


def interval_value_equals(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    """Raw endpoint-wise equality ``ts = t̃s and te = t̃e``.

    This is *instantiated-value* equality — the notion the difference
    operator of Theorem 2 needs (``‖r.A‖rt = ‖s.A‖rt``) — and deliberately
    differs from :func:`interval_equals`, which applies the Table II
    empty-interval conventions.
    """
    return equal(i.start, j.start).conjunction(equal(i.end, j.end))


# ----------------------------------------------------------------------
# Definitional (composed) reference implementations.
#
# These spell the Table II equivalences literally through the six core
# operations.  The optimized public predicates above must agree with them
# at every input — a property the test suite checks exhaustively and with
# hypothesis — and the ablation benchmark measures the speedup the paper's
# comparison-minimizing implementation buys.
# ----------------------------------------------------------------------


def _before_composed(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    return (
        less_equal(i.end, j.start)
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )


def _meets_composed(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    return (
        equal(i.end, j.start)
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )


def _overlaps_composed(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    return (
        less_than(i.start, j.end)
        .conjunction(less_than(j.start, i.end))
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )


def _starts_composed(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    return (
        equal(i.start, j.start)
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )


def _finishes_composed(i: OngoingInterval, j: OngoingInterval) -> OngoingBoolean:
    return (
        equal(i.end, j.end)
        .conjunction(_non_empty(i))
        .conjunction(_non_empty(j))
    )


#: predicate name -> definitional implementation (for tests and ablations).
COMPOSED_REFERENCE = {
    "before": _before_composed,
    "meets": _meets_composed,
    "overlaps": _overlaps_composed,
    "starts": _starts_composed,
    "finishes": _finishes_composed,
    "during": during,
    "interval_equals": interval_equals,
}
