"""The fixed time domain ``T`` (Section IV of the paper).

The paper assumes a linearly ordered, discrete time domain ``T`` with ``-inf``
as the lower limit and ``+inf`` as the upper limit.  We represent time points
as Python integers ("ticks"); two sentinel values stand for the two limits.
The meaning of one tick (a day, a microsecond, ...) is supplied by a
:class:`Chronology`, mirroring the two granularities the PostgreSQL prototype
supports (dates with day granularity, timestamps with microsecond
granularity).

Using plain integers keeps the core operations (min, max, comparisons,
successor) branch-free and fast, which matters because the benchmark harness
evaluates them hundreds of millions of times.

The paper renders example time points in the ``mm/dd`` format relative to
2019 (e.g. ``08/15`` is August 15, 2019).  :func:`mmdd` and :func:`fmt_point`
provide the same rendering so that the examples and golden tests read exactly
like the paper.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.errors import TimeDomainError

__all__ = [
    "MINUS_INF",
    "PLUS_INF",
    "TimePoint",
    "is_time_point",
    "is_finite",
    "check_time_point",
    "succ",
    "pred",
    "clamp",
    "Chronology",
    "DAYS",
    "MICROSECONDS",
    "mmdd",
    "from_mmdd",
    "fmt_point",
    "fmt_interval",
]

# Sentinels for the limits of T.  They are ordinary integers so that the
# builtin comparison operators order them correctly against every finite
# time point; finite points must stay strictly inside the open range
# (MINUS_INF, PLUS_INF).
MINUS_INF: int = -(2**60)
PLUS_INF: int = 2**60

# Type alias: a time point of T is an int within [MINUS_INF, PLUS_INF].
TimePoint = int


def is_time_point(value: object) -> bool:
    """Return ``True`` iff *value* is an element of the time domain ``T``."""
    return (
        isinstance(value, int)
        and not isinstance(value, bool)
        and MINUS_INF <= value <= PLUS_INF
    )


def is_finite(point: TimePoint) -> bool:
    """Return ``True`` iff *point* is a finite element of ``T``."""
    return MINUS_INF < point < PLUS_INF


def check_time_point(value: object, *, what: str = "time point") -> TimePoint:
    """Validate that *value* lies in ``T`` and return it.

    Raises :class:`~repro.errors.TimeDomainError` otherwise.  Booleans are
    rejected even though they are ``int`` subclasses, because a boolean in a
    time position is almost certainly a bug in the caller.
    """
    if not is_time_point(value):
        raise TimeDomainError(
            f"{what} must be an int in [-2**60, 2**60], got {value!r}"
        )
    return value  # type: ignore[return-value]


def succ(point: TimePoint) -> TimePoint:
    """Successor of a time point, saturating at the domain limits.

    The paper's equivalences use ``b + 1`` (e.g. the ongoing boolean
    ``b[{[b + 1, inf)}, ...]`` in Theorem 1).  At the limits the successor
    stays put: the domain has no element beyond ``+inf``.
    """
    if point >= PLUS_INF:
        return PLUS_INF
    if point <= MINUS_INF:
        return MINUS_INF + 1
    return point + 1


def pred(point: TimePoint) -> TimePoint:
    """Predecessor of a time point, saturating at the domain limits."""
    if point <= MINUS_INF:
        return MINUS_INF
    if point >= PLUS_INF:
        return PLUS_INF - 1
    return point - 1


def clamp(point: TimePoint) -> TimePoint:
    """Clamp an out-of-range integer into ``T``."""
    if point < MINUS_INF:
        return MINUS_INF
    if point > PLUS_INF:
        return PLUS_INF
    return point


@dataclass(frozen=True)
class Chronology:
    """Assigns calendar meaning to integer ticks.

    A chronology maps ticks to :class:`datetime.datetime` values and back.
    ``DAYS`` mirrors the PostgreSQL ``date`` type (one tick per day),
    ``MICROSECONDS`` mirrors ``timestamp`` (one tick per microsecond).  The
    epoch (tick 0) is 2019-01-01, matching the paper's convention that
    ``mm/dd`` denotes dates in 2019.
    """

    name: str
    ticks_per_second: float

    def to_datetime(self, tick: TimePoint) -> _dt.datetime:
        """Convert a finite tick to a timezone-naive datetime."""
        if not is_finite(tick):
            raise TimeDomainError(f"cannot convert limit {tick} to a datetime")
        epoch = _dt.datetime(2019, 1, 1)
        return epoch + _dt.timedelta(seconds=tick / self.ticks_per_second)

    def from_datetime(self, moment: _dt.datetime) -> TimePoint:
        """Convert a datetime to the nearest tick."""
        epoch = _dt.datetime(2019, 1, 1)
        delta = (moment - epoch).total_seconds()
        return clamp(round(delta * self.ticks_per_second))


#: Day granularity (PostgreSQL ``date``): tick 0 = 2019-01-01.
DAYS = Chronology(name="days", ticks_per_second=1.0 / 86_400.0)

#: Microsecond granularity (PostgreSQL ``timestamp``).
MICROSECONDS = Chronology(name="microseconds", ticks_per_second=1_000_000.0)


def mmdd(month: int, day: int, *, year: int = 2019) -> TimePoint:
    """Time point for the paper's ``mm/dd`` notation (relative to 2019).

    ``mmdd(8, 15)`` is the tick for August 15, 2019 — written ``08/15`` in
    the paper.
    """
    moment = _dt.date(year, month, day)
    return (moment - _dt.date(2019, 1, 1)).days


def from_mmdd(text: str) -> TimePoint:
    """Parse the paper's ``mm/dd`` rendering into a time point.

    Accepts an optional year prefix (``2019-08/15``) for points outside 2019.
    """
    try:
        year = 2019
        body = text
        if "-" in text:
            year_text, body = text.split("-", 1)
            year = int(year_text)
        month_text, day_text = body.split("/")
        return mmdd(int(month_text), int(day_text), year=year)
    except (ValueError, TypeError) as exc:
        raise TimeDomainError(f"cannot parse time point {text!r}") from exc


def fmt_point(point: TimePoint) -> str:
    """Render a time point the way the paper does.

    Finite points become ``mm/dd`` (with a year prefix when outside 2019);
    the limits become the conventional infinity symbols.
    """
    if point <= MINUS_INF:
        return "-inf"
    if point >= PLUS_INF:
        return "inf"
    moment = _dt.date(2019, 1, 1) + _dt.timedelta(days=point)
    if moment.year == 2019:
        return f"{moment.month:02d}/{moment.day:02d}"
    return f"{moment.year}-{moment.month:02d}/{moment.day:02d}"


def fmt_interval(start: TimePoint, end: TimePoint) -> str:
    """Render a fixed half-open interval ``[start, end)`` paper-style."""
    left = "(" if start <= MINUS_INF else "["
    return f"{left}{fmt_point(start)}, {fmt_point(end)})"
