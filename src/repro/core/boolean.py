"""Ongoing booleans ``b[St, Sf]`` (Definition 3 of the paper).

An ongoing boolean is a truth value that depends on the reference time: it is
true at the reference times in ``St`` and false at those in ``Sf``, where
``St`` and ``Sf`` partition all reference times.  Following the paper's
implementation section, we store only ``St`` (as a normalized
:class:`~repro.core.intervalset.IntervalSet`); ``Sf`` is its complement.

Storing ``St`` in the same representation as a tuple's reference time is the
key implementation trick of the paper: restricting a tuple's RT by a
predicate is then a single sweep-line conjunction
(``new_RT = RT ∧ St(predicate)``), with no conversions.

Ongoing booleans generalize fixed booleans: :data:`O_TRUE` is true at every
reference time and :data:`O_FALSE` at none, so predicates over fixed
attributes compose seamlessly with predicates over ongoing attributes in one
logical expression.
"""

from __future__ import annotations

from repro.core.intervalset import EMPTY_SET, UNIVERSAL_SET, IntervalSet
from repro.core.timeline import TimePoint

__all__ = ["OngoingBoolean", "O_TRUE", "O_FALSE", "from_bool"]


class OngoingBoolean:
    """An immutable ongoing boolean, represented by its true-set ``St``."""

    __slots__ = ("_true_set",)

    def __init__(self, true_set: IntervalSet):
        self._true_set = true_set

    # ------------------------------------------------------------------
    # The two sides of the partition
    # ------------------------------------------------------------------

    @property
    def true_set(self) -> IntervalSet:
        """``St`` — the reference times at which the boolean is true."""
        return self._true_set

    @property
    def false_set(self) -> IntervalSet:
        """``Sf`` — the reference times at which the boolean is false."""
        return self._true_set.complement()

    # ------------------------------------------------------------------
    # The bind operator (Definition 3)
    # ------------------------------------------------------------------

    def instantiate(self, rt: TimePoint) -> bool:
        """``‖b[St, Sf]‖rt`` — the fixed truth value at reference time rt."""
        return rt in self._true_set

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def is_always_true(self) -> bool:
        """``True`` iff this is the embedding of fixed ``true``."""
        return self._true_set.is_universal()

    def is_always_false(self) -> bool:
        """``True`` iff this is the embedding of fixed ``false``."""
        return self._true_set.is_empty()

    def is_contingent(self) -> bool:
        """``True`` iff the truth value changes at least once over time."""
        return not (self.is_always_true() or self.is_always_false())

    # ------------------------------------------------------------------
    # The logical connectives (Definition 4 / Theorem 1)
    # ------------------------------------------------------------------
    #
    # Conjunction:  b[St, Sf] ∧ b[S't, S'f] == b[St ∩ S't, Sf ∪ S'f]
    # Disjunction:  b[St, Sf] ∨ b[S't, S'f] == b[St ∪ S't, Sf ∩ S'f]
    # Negation:     ¬ b[St, Sf]             == b[Sf, St]
    #
    # Because only St is stored, each connective is a single IntervalSet
    # operation (the sweep-line of Algorithm 1 and its duals).

    def conjunction(self, other: "OngoingBoolean") -> "OngoingBoolean":
        """Logical AND — true where both operands are true."""
        return OngoingBoolean(self._true_set.intersection(other._true_set))

    def disjunction(self, other: "OngoingBoolean") -> "OngoingBoolean":
        """Logical OR — true where at least one operand is true."""
        return OngoingBoolean(self._true_set.union(other._true_set))

    def negation(self) -> "OngoingBoolean":
        """Logical NOT — swaps the true- and false-sets."""
        return OngoingBoolean(self._true_set.complement())

    def __and__(self, other: "OngoingBoolean") -> "OngoingBoolean":
        return self.conjunction(other)

    def __or__(self, other: "OngoingBoolean") -> "OngoingBoolean":
        return self.disjunction(other)

    def __invert__(self) -> "OngoingBoolean":
        return self.negation()

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OngoingBoolean):
            return NotImplemented
        return self._true_set == other._true_set

    def __hash__(self) -> int:
        return hash(self._true_set)

    def __repr__(self) -> str:
        return f"OngoingBoolean({self._true_set!r})"

    def format(self) -> str:
        """Paper-style rendering ``b[St, Sf]``."""
        return f"b[{self._true_set.format()}, {self.false_set.format()}]"

    def __str__(self) -> str:
        return self.format()


#: The embedding of fixed ``true``: true at every reference time.
O_TRUE = OngoingBoolean(UNIVERSAL_SET)

#: The embedding of fixed ``false``: false at every reference time.
O_FALSE = OngoingBoolean(EMPTY_SET)


def from_bool(value: bool) -> OngoingBoolean:
    """Embed a fixed boolean into the ongoing booleans."""
    return O_TRUE if value else O_FALSE
