"""Ongoing rationals — the value domain of the AVG aggregate.

The average of a group changes with the reference time twice over: the sum
of the contributing values changes as tuples enter and leave the group, and
so does the number of contributors.  Both are ongoing integers (piecewise
affine in rt), so their quotient is a **piecewise rational** function of the
reference time.  Rather than approximate it, :class:`OngoingRational` keeps
the exact ``(numerator, denominator)`` pair of :class:`~repro.core.integer.
OngoingInt` and reduces lazily: the canonical, gcd-reduced piecewise form is
computed only when value equality, hashing, or rendering first needs it.

As with every ongoing type the defining law is Definition 4's
``‖f op g‖rt == ‖f‖rt opF ‖g‖rt``; :meth:`instantiate` returns an exact
:class:`fractions.Fraction`.  Where the denominator is zero the value is
undefined — every comparison is false there, and :meth:`instantiate`
returns ``Fraction(0)`` by convention (aggregation only ever evaluates the
value inside the group's reference time, where at least one member exists).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Tuple

from repro.core.boolean import OngoingBoolean
from repro.core.integer import OngoingInt
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF, TimePoint
from repro.errors import TimeDomainError

__all__ = ["OngoingRational"]

#: One reduced piece: value(rt) = (bn + kn*rt) / (bd + kd*rt) on [start, end).
_Piece = Tuple[TimePoint, TimePoint, int, int, int, int]


class OngoingRational:
    """A rational-valued function of the reference time, kept exact.

    Stored as a quotient of two ongoing integers.  Equality, hashing, and
    rendering go through a lazily-computed canonical form, so ``2x/2y`` and
    ``x/y`` are one value — the delta path and a full re-evaluation may
    build the pair differently yet still compare (and hash) identical.
    """

    __slots__ = ("_numerator", "_denominator", "_reduced")

    def __init__(self, numerator: OngoingInt, denominator: OngoingInt):
        if not isinstance(numerator, OngoingInt) or not isinstance(
            denominator, OngoingInt
        ):
            raise TimeDomainError(
                "an ongoing rational needs two ongoing integers"
            )
        self._numerator = numerator
        self._denominator = denominator
        self._reduced: Tuple[_Piece, ...] | None = None

    # ------------------------------------------------------------------
    # Introspection and the bind operator
    # ------------------------------------------------------------------

    @property
    def numerator(self) -> OngoingInt:
        return self._numerator

    @property
    def denominator(self) -> OngoingInt:
        return self._denominator

    def instantiate(self, rt: TimePoint) -> Fraction:
        """``‖f‖rt`` — the exact fraction at reference time rt."""
        den = self._denominator.instantiate(rt)
        if den == 0:
            return Fraction(0)
        return Fraction(self._numerator.instantiate(rt), den)

    # ------------------------------------------------------------------
    # Lazy reduction to a canonical piecewise form
    # ------------------------------------------------------------------

    def _pieces(self) -> Tuple[_Piece, ...]:
        """The canonical form: co-refined, gcd-reduced, merged pieces."""
        if self._reduced is None:
            reduced: List[_Piece] = []
            for start, end, bn, kn, bd, kd in self._numerator._aligned(
                self._denominator
            ):
                if bd == 0 and kd == 0:
                    # Undefined piece — canonicalize to 0/0 so the raw
                    # numerator there cannot distinguish equal values.
                    bn = kn = 0
                else:
                    divisor = gcd(gcd(bn, kn), gcd(bd, kd))
                    if divisor > 1:
                        bn, kn = bn // divisor, kn // divisor
                        bd, kd = bd // divisor, kd // divisor
                    if kd < 0 or (kd == 0 and bd < 0):
                        bn, kn, bd, kd = -bn, -kn, -bd, -kd
                if reduced and reduced[-1][2:] == (bn, kn, bd, kd):
                    previous = reduced.pop()
                    reduced.append((previous[0], end, bn, kn, bd, kd))
                else:
                    reduced.append((start, end, bn, kn, bd, kd))
            self._reduced = tuple(reduced)
        return self._reduced

    def defined_set(self) -> IntervalSet:
        """The reference times at which the denominator is non-zero."""
        return self._denominator.not_equal(0).true_set

    def eventual_key(self) -> Tuple[Fraction, Fraction]:
        """``(growth, offset)`` describing the value as rt → ∞.

        Ordering by this key (then by any deterministic tie-break) is the
        *eventual order* used by ORDER BY: the order the instantiated
        values settle into for all sufficiently large reference times.
        An :class:`~repro.core.integer.OngoingInt` with final affine form
        ``b + k*rt`` has the same key shape ``(k, b)``, so mixed columns
        compare consistently.
        """
        start, end, bn, kn, bd, kd = self._pieces()[-1]
        if bd == 0 and kd == 0:
            return (Fraction(0), Fraction(0))
        if kd != 0:
            # (bn + kn*rt) / (bd + kd*rt) → kn/kd as rt → ∞.
            return (Fraction(0), Fraction(kn, kd))
        return (Fraction(kn, bd), Fraction(bn, bd))

    # ------------------------------------------------------------------
    # Comparisons — results are ongoing booleans
    # ------------------------------------------------------------------

    def _difference(self, other: object) -> OngoingInt:
        """``numerator*q - p*denominator`` for other ``p/q`` (q > 0).

        Within the defined region the denominator is positive (it counts
        group members), so the sign of this ongoing integer is the sign of
        ``self - other`` there.
        """
        p, q = _as_ratio(other)
        return self._numerator.scaled(q) - self._denominator.scaled(p)

    def _restrict(self, base: OngoingBoolean) -> OngoingBoolean:
        return OngoingBoolean(
            base.true_set.intersection(self.defined_set())
        )

    def less_than(self, other: object) -> OngoingBoolean:
        return self._restrict(self._difference(other).less_than(0))

    def less_equal(self, other: object) -> OngoingBoolean:
        return self._restrict(self._difference(other).less_equal(0))

    def equal(self, other: object) -> OngoingBoolean:
        return self._restrict(self._difference(other).equal(0))

    def not_equal(self, other: object) -> OngoingBoolean:
        return self._restrict(self._difference(other).not_equal(0))

    def greater_than(self, other: object) -> OngoingBoolean:
        return self._restrict(self._difference(other).greater_than(0))

    def greater_equal(self, other: object) -> OngoingBoolean:
        return self._restrict(self._difference(other).greater_equal(0))

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int) and not isinstance(other, bool):
            other = OngoingRational(
                OngoingInt.constant(other), OngoingInt.constant(1)
            )
        elif isinstance(other, Fraction):
            other = OngoingRational(
                OngoingInt.constant(other.numerator),
                OngoingInt.constant(other.denominator),
            )
        if not isinstance(other, OngoingRational):
            return NotImplemented
        return self._pieces() == other._pieces()

    def __hash__(self) -> int:
        return hash(self._pieces())

    def __repr__(self) -> str:
        # Repr of the *canonical* form: equal values render identically,
        # which the top-k tie-break relies on.
        return f"OngoingRational({list(self._pieces())!r})"

    def format(self) -> str:
        """Human rendering, e.g. ``{[5, inf): (rt + 1)/2}``."""
        from repro.core.timeline import fmt_point

        parts = []
        for start, end, bn, kn, bd, kd in self._pieces():
            left = "(" if start <= MINUS_INF else "["
            span = f"{left}{fmt_point(start)}, {fmt_point(end)})"
            parts.append(f"{span}: {_fmt_ratio(bn, kn, bd, kd)}")
        return "{" + ", ".join(parts) + "}"


def _affine_text(intercept: int, slope: int) -> str:
    if slope == 0:
        return str(intercept)
    slope_text = "rt" if slope == 1 else f"{slope}*rt"
    if intercept == 0:
        return slope_text
    if intercept > 0:
        return f"{slope_text} + {intercept}"
    return f"{slope_text} - {-intercept}"


def _fmt_ratio(bn: int, kn: int, bd: int, kd: int) -> str:
    if bd == 0 and kd == 0:
        return "undefined"
    if kd == 0 and bd == 1:
        return _affine_text(bn, kn)
    numerator = _affine_text(bn, kn)
    denominator = _affine_text(bd, kd)
    if kn != 0 and bn != 0:
        numerator = f"({numerator})"
    if kd != 0 and bd != 0:
        denominator = f"({denominator})"
    return f"{numerator}/{denominator}"


def _as_ratio(value: object) -> Tuple[int, int]:
    """*value* as an integer ratio ``p/q`` with q > 0."""
    if isinstance(value, bool):
        raise TimeDomainError(f"cannot compare an ongoing rational to {value!r}")
    if isinstance(value, int):
        return (value, 1)
    if isinstance(value, Fraction):
        return (value.numerator, value.denominator)
    if isinstance(value, OngoingInt) and value.is_constant():
        return (value.segments[0][2], 1)
    raise TimeDomainError(
        f"cannot compare an ongoing rational to {value!r}; only fixed "
        "numbers are supported"
    )
