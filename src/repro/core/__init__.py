"""Core ongoing data types and operations — the paper's primary contribution.

This subpackage is self-contained (no dependency on the relational layer or
the engine) and implements Sections IV–VI of the paper:

* :mod:`repro.core.timeline` — the fixed time domain ``T``;
* :mod:`repro.core.timepoint` — the ongoing time domain ``Ω`` of points
  ``a+b`` (Definitions 1–2);
* :mod:`repro.core.intervalset` — normalized sets of fixed intervals with
  sweep-line connectives (Algorithm 1);
* :mod:`repro.core.boolean` — ongoing booleans ``b[St, Sf]`` (Definition 3);
* :mod:`repro.core.interval` — ongoing time intervals ``[a+b, c+d)``;
* :mod:`repro.core.operations` — the six core operations and derived
  comparisons (Definition 4, Theorem 1, Fig. 6);
* :mod:`repro.core.allen` — interval predicates and ``∩`` (Table II);
* :mod:`repro.core.integer` / :mod:`repro.core.duration` — ongoing integers
  and the duration function (the paper's Section X future work).
"""

from repro.core.timeline import (
    DAYS,
    MICROSECONDS,
    MINUS_INF,
    PLUS_INF,
    Chronology,
    TimePoint,
    fmt_interval,
    fmt_point,
    from_mmdd,
    mmdd,
)
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited
from repro.core.intervalset import EMPTY_SET, UNIVERSAL_SET, IntervalSet
from repro.core.boolean import O_FALSE, O_TRUE, OngoingBoolean, from_bool
from repro.core.interval import (
    OngoingInterval,
    fixed_interval,
    interval,
    until_now,
)
from repro.core.operations import (
    conjunction,
    disjunction,
    equal,
    greater_equal,
    greater_than,
    less_equal,
    less_than,
    negation,
    not_equal,
    ongoing_max,
    ongoing_min,
)
from repro.core import allen
from repro.core.integer import OngoingInt
from repro.core.duration import duration, point_value

__all__ = [
    "OngoingInt",
    "duration",
    "point_value",
    "DAYS",
    "MICROSECONDS",
    "MINUS_INF",
    "PLUS_INF",
    "Chronology",
    "TimePoint",
    "fmt_interval",
    "fmt_point",
    "from_mmdd",
    "mmdd",
    "NOW",
    "OngoingTimePoint",
    "fixed",
    "growing",
    "limited",
    "EMPTY_SET",
    "UNIVERSAL_SET",
    "IntervalSet",
    "O_FALSE",
    "O_TRUE",
    "OngoingBoolean",
    "from_bool",
    "OngoingInterval",
    "fixed_interval",
    "interval",
    "until_now",
    "conjunction",
    "disjunction",
    "equal",
    "greater_equal",
    "greater_than",
    "less_equal",
    "less_than",
    "negation",
    "not_equal",
    "ongoing_max",
    "ongoing_min",
    "allen",
]
