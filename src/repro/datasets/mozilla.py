"""Synthetic MozillaBugs data set (Table III, Fig. 7 of the paper).

The real MozillaBugs export [32] records ~20 years of Mozilla bug history in
three relations.  The export itself is not shipped with this repository, so
this module generates a seeded synthetic twin that matches every published
characteristic the experiments depend on:

==============================  ====================================
characteristic                  value in the paper (full scale)
==============================  ====================================
BugInfo cardinality             394,878   (15 % ongoing)
BugAssignment cardinality       582,668   (11 % ongoing)  ≈ 1.48 / bug
BugSeverity cardinality         434,078   (14 % ongoing)  ≈ 1.10 / bug
history length                  20 years
ongoing interval shape          ``[a, now)``
ongoing start-point skew        50 % within the last two years (Fig. 7)
BugInfo avg tuple size          ≈ 968 B (long textual descriptions)
BugAssignment avg tuple size    ≈ 90 B
BugSeverity avg tuple size      ≈ 86 B
==============================  ====================================

The default scale is laptop-sized (``DEFAULT_BUGS`` bugs); every experiment
reports the scale it ran at.  Scaling for the "growing input" experiments
follows the paper: *the history grows backward* — smaller data sets are the
most recent slice of the full one, so the absolute number of ongoing tuples
stays constant and their percentage shrinks as the data grows
(Section IX-A).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.timeline import TimePoint
from repro.engine.database import Database
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema

__all__ = ["MozillaBugs", "generate_mozilla", "DEFAULT_BUGS", "HISTORY_DAYS"]

#: Default number of bugs at "full" scale for this reproduction.
DEFAULT_BUGS = 20_000

#: 20 years of history, in days.
HISTORY_DAYS = 20 * 365

#: History runs over ticks [HISTORY_START, HISTORY_END).
HISTORY_END: TimePoint = 0
HISTORY_START: TimePoint = HISTORY_END - HISTORY_DAYS

_PRODUCTS = [f"product-{i:02d}" for i in range(12)]
_COMPONENTS = [f"component-{i:02d}" for i in range(8)]
_SYSTEMS = ["Linux", "Windows", "macOS", "FreeBSD", "Android", "Solaris"]
_SEVERITIES = [
    "blocker",
    "critical",
    "major",
    "normal",
    "minor",
    "trivial",
    "enhancement",
]

BUG_INFO_SCHEMA = Schema.of(
    "ID", "Product", "Component", "OS", "Descr", ("VT", "interval")
)
BUG_ASSIGNMENT_SCHEMA = Schema.of("ID", "Email", ("VT", "interval"))
BUG_SEVERITY_SCHEMA = Schema.of("ID", "Severity", ("VT", "interval"))


@dataclass
class MozillaBugs:
    """The three relations of the MozillaBugs data set."""

    bug_info: OngoingRelation
    bug_assignment: OngoingRelation
    bug_severity: OngoingRelation

    def as_database(self) -> Database:
        """Load the three relations into a fresh engine database (B, A, S)."""
        database = Database("mozilla")
        database.register("B", self.bug_info)
        database.register("A", self.bug_assignment)
        database.register("S", self.bug_severity)
        return database

    def slice_recent(self, n_bugs: int) -> "MozillaBugs":
        """The *n_bugs* most recent bugs — the grow-backward scaling.

        Matching assignment and severity rows are kept (the paper: "use all
        records in the other two relations that match the bug ids in
        BugInfo").
        """
        by_start = sorted(
            self.bug_info.tuples,
            key=lambda item: item.values[5].start.a,
            reverse=True,
        )
        kept = by_start[:n_bugs]
        kept_ids = {item.values[0] for item in kept}
        return MozillaBugs(
            bug_info=OngoingRelation(BUG_INFO_SCHEMA, kept),
            bug_assignment=OngoingRelation(
                BUG_ASSIGNMENT_SCHEMA,
                (t for t in self.bug_assignment if t.values[0] in kept_ids),
            ),
            bug_severity=OngoingRelation(
                BUG_SEVERITY_SCHEMA,
                (t for t in self.bug_severity if t.values[0] in kept_ids),
            ),
        )

    def ongoing_fraction(self) -> float:
        """Share of BugInfo tuples with an ongoing valid time."""
        total = len(self.bug_info)
        if total == 0:
            return 0.0
        ongoing = sum(
            1 for item in self.bug_info if not item.values[5].is_fixed
        )
        return ongoing / total


def _skewed_ongoing_start(rng: random.Random) -> TimePoint:
    """Start point of an ongoing bug, matching Fig. 7's cumulative curve.

    50 % of ongoing intervals start within the last two years, 30 % within
    years 2–6 before the export, the remaining 20 % earlier.
    """
    dice = rng.random()
    two_years = 2 * 365
    if dice < 0.5:
        return HISTORY_END - rng.randrange(1, two_years)
    if dice < 0.8:
        return HISTORY_END - rng.randrange(two_years, 6 * 365)
    return HISTORY_END - rng.randrange(6 * 365, HISTORY_DAYS)


def _description(rng: random.Random) -> str:
    """A bug description sized so BugInfo tuples average ≈ 968 B."""
    length = max(40, int(rng.gauss(850, 220)))
    return "".join(
        rng.choices(string.ascii_lowercase + "     ", k=length)
    )


def _split_interval(
    rng: random.Random, interval: OngoingInterval, pieces: int
) -> List[OngoingInterval]:
    """Split a bug's valid time into sub-intervals for assignments/severity.

    The last piece inherits the (possibly ongoing) end point of the bug —
    "the last assignment and last severity of bugs with ongoing valid times
    have ongoing valid times as well".
    """
    start = interval.start.a
    end_envelope = interval.end.b if interval.is_fixed else HISTORY_END
    if pieces == 1 or end_envelope - start < 2 * pieces:
        return [interval]
    cuts = sorted(rng.sample(range(start + 1, end_envelope), pieces - 1))
    bounds = [start, *cuts]
    result: List[OngoingInterval] = []
    for index in range(pieces - 1):
        result.append(fixed_interval(bounds[index], bounds[index + 1]))
    result.append(OngoingInterval(bounds[-1], interval.end))
    return result


def generate_mozilla(
    n_bugs: int = DEFAULT_BUGS,
    *,
    seed: int = 2020,
    ongoing_fraction: float = 0.15,
) -> MozillaBugs:
    """Generate the synthetic MozillaBugs data set.

    ``n_bugs`` scales the whole data set; ratios (ongoing share, rows per
    bug) and distributions stay fixed, so shapes are comparable to the
    paper's at any scale.
    """
    rng = random.Random(seed)
    n_ongoing = round(n_bugs * ongoing_fraction)

    info_rows: List[Tuple[object, ...]] = []
    assignment_rows: List[Tuple[object, ...]] = []
    severity_rows: List[Tuple[object, ...]] = []

    for bug_id in range(n_bugs):
        is_ongoing = bug_id < n_ongoing
        if is_ongoing:
            start = _skewed_ongoing_start(rng)
            valid_time = until_now(start)
        else:
            start = HISTORY_START + rng.randrange(HISTORY_DAYS - 1)
            duration = max(1, int(rng.expovariate(1.0 / 90.0)))
            end = min(start + duration, HISTORY_END)
            if end <= start:
                end = start + 1
            valid_time = fixed_interval(start, end)
        info_rows.append(
            (
                bug_id,
                rng.choice(_PRODUCTS),
                rng.choice(_COMPONENTS),
                rng.choice(_SYSTEMS),
                _description(rng),
                valid_time,
            )
        )
        # ~1.48 assignments per bug.
        n_assignments = 1 + (1 if rng.random() < 0.48 else 0)
        for piece in _split_interval(rng, valid_time, n_assignments):
            assignment_rows.append(
                (bug_id, f"dev{rng.randrange(2000):04d}@mozilla.org", piece)
            )
        # ~1.10 severity records per bug.
        n_severities = 1 + (1 if rng.random() < 0.10 else 0)
        for piece in _split_interval(rng, valid_time, n_severities):
            severity_rows.append((bug_id, rng.choice(_SEVERITIES), piece))

    return MozillaBugs(
        bug_info=OngoingRelation.from_rows(BUG_INFO_SCHEMA, info_rows),
        bug_assignment=OngoingRelation.from_rows(
            BUG_ASSIGNMENT_SCHEMA, assignment_rows
        ),
        bug_severity=OngoingRelation.from_rows(BUG_SEVERITY_SCHEMA, severity_rows),
    )
