"""Data sets and workloads of the paper's evaluation (Section IX-A).

* :mod:`repro.datasets.mozilla` — synthetic MozillaBugs (B, A, S);
* :mod:`repro.datasets.incumbent` — synthetic Incumbent;
* :mod:`repro.datasets.synthetic` — D_ex, D_sh, D_sc with segment placement;
* :mod:`repro.datasets.workloads` — Qσ, Q⋈, and QC⋈ in ongoing and
  Clifford variants.
"""

from repro.datasets.mozilla import (
    BUG_ASSIGNMENT_SCHEMA,
    BUG_INFO_SCHEMA,
    BUG_SEVERITY_SCHEMA,
    DEFAULT_BUGS,
    MozillaBugs,
    generate_mozilla,
)
from repro.datasets.incumbent import (
    DEFAULT_INCUMBENT_ROWS,
    INCUMBENT_SCHEMA,
    generate_incumbent,
    incumbent_database,
)
from repro.datasets.synthetic import (
    SEGMENTS,
    SYNTHETIC_SCHEMA,
    generate_dex,
    generate_dsc,
    generate_dsh,
    strip_ongoing,
    synthetic_database,
)
from repro.datasets.workloads import (
    ComplexJoinWorkload,
    SelectionWorkload,
    SelfJoinWorkload,
    TemporalJoinWorkload,
    last_tenth,
)

__all__ = [
    "BUG_ASSIGNMENT_SCHEMA",
    "BUG_INFO_SCHEMA",
    "BUG_SEVERITY_SCHEMA",
    "DEFAULT_BUGS",
    "MozillaBugs",
    "generate_mozilla",
    "DEFAULT_INCUMBENT_ROWS",
    "INCUMBENT_SCHEMA",
    "generate_incumbent",
    "incumbent_database",
    "SEGMENTS",
    "SYNTHETIC_SCHEMA",
    "generate_dex",
    "generate_dsc",
    "generate_dsh",
    "strip_ongoing",
    "synthetic_database",
    "ComplexJoinWorkload",
    "SelectionWorkload",
    "SelfJoinWorkload",
    "TemporalJoinWorkload",
    "last_tenth",
]
