"""The synthetic data sets D_ex, D_sh, D_sc (Table III, Fig. 9, Fig. 10).

* ``D_ex`` — **expanding** ongoing intervals ``[a, now)``; 15 % ongoing;
  10-year history.  The *location* of the ongoing start points is
  controlled by a segment parameter: the history splits into five 2-year
  segments (segment 0 = the earliest), and all ongoing start points fall
  into the chosen segment — exactly the Fig. 9 experiment.  The earlier an
  expanding interval starts, the more partners it overlaps.
* ``D_sh`` — **shrinking** ongoing intervals ``[now, b)``; the segment
  places the fixed *end* points ``b``.  Durations are longer when the end
  points sit in later segments — Fig. 9b's opposite trend.
* ``D_sc`` — the scalability data set (Fig. 10): 20 % ongoing ``[a, now)``,
  uniform locations, scaled by a row-count parameter.

Schema: ``(ID, G, VT)`` — ``G`` is the non-temporal group attribute the
self-join workloads equi-join on (``θN``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.timeline import TimePoint
from repro.core.timepoint import NOW, fixed
from repro.engine.database import Database
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple

__all__ = [
    "SYNTHETIC_SCHEMA",
    "HISTORY_DAYS",
    "SEGMENTS",
    "generate_dex",
    "generate_dsh",
    "generate_dsc",
    "strip_ongoing",
    "synthetic_database",
]

SYNTHETIC_SCHEMA = Schema.of("ID", "G", ("VT", "interval"))

#: 10-year history ending at tick 0, divided into five 2-year segments.
HISTORY_DAYS = 10 * 365
HISTORY_END: TimePoint = 0
HISTORY_START: TimePoint = HISTORY_END - HISTORY_DAYS
SEGMENTS = 5
_SEGMENT_DAYS = HISTORY_DAYS // SEGMENTS


def _segment_range(segment: int) -> Tuple[TimePoint, TimePoint]:
    """The tick range of one of the five 2-year segments (0 = earliest)."""
    if not 0 <= segment < SEGMENTS:
        raise ValueError(f"segment must be in 0..{SEGMENTS - 1}, got {segment}")
    start = HISTORY_START + segment * _SEGMENT_DAYS
    return (start, start + _SEGMENT_DAYS)


def _fixed_row(rng: random.Random, identifier: int, n_groups: int) -> Tuple[object, ...]:
    start = HISTORY_START + rng.randrange(HISTORY_DAYS - 1)
    duration = max(1, int(rng.expovariate(1.0 / 60.0)))
    end = min(start + duration, HISTORY_END)
    if end <= start:
        end = start + 1
    return (identifier, rng.randrange(n_groups), fixed_interval(start, end))


def generate_dex(
    n_rows: int = 10_000,
    *,
    seed: int = 7,
    ongoing_fraction: float = 0.15,
    segment: Optional[int] = None,
    group_size: int = 5,
) -> OngoingRelation:
    """``D_ex``: expanding intervals ``[a, now)``.

    With ``segment=k`` every ongoing start point lies inside segment ``k``;
    with ``segment=None`` start points are uniform over the history.
    """
    rng = random.Random(seed)
    n_groups = max(1, n_rows // group_size)
    n_ongoing = round(n_rows * ongoing_fraction)
    rows: List[Tuple[object, ...]] = []
    for identifier in range(n_rows):
        if identifier < n_ongoing:
            if segment is None:
                start = HISTORY_START + rng.randrange(HISTORY_DAYS - 1)
            else:
                low, high = _segment_range(segment)
                start = rng.randrange(low, high)
            rows.append((identifier, rng.randrange(n_groups), until_now(start)))
        else:
            rows.append(_fixed_row(rng, identifier, n_groups))
    return OngoingRelation.from_rows(SYNTHETIC_SCHEMA, rows)


def generate_dsh(
    n_rows: int = 10_000,
    *,
    seed: int = 11,
    ongoing_fraction: float = 0.15,
    segment: Optional[int] = None,
    group_size: int = 5,
) -> OngoingRelation:
    """``D_sh``: shrinking intervals ``[now, b)``.

    With ``segment=k`` every ongoing *end* point lies inside segment ``k``;
    ends in later segments mean longer instantiated durations (the interval
    is ``[rt, b)`` for ``rt < b``), which is Fig. 9b's rising runtime.
    """
    rng = random.Random(seed)
    n_groups = max(1, n_rows // group_size)
    n_ongoing = round(n_rows * ongoing_fraction)
    rows: List[Tuple[object, ...]] = []
    for identifier in range(n_rows):
        if identifier < n_ongoing:
            if segment is None:
                end = HISTORY_START + rng.randrange(1, HISTORY_DAYS)
            else:
                low, high = _segment_range(segment)
                end = rng.randrange(max(low, HISTORY_START + 1), high)
            shrinking = OngoingInterval(NOW, fixed(end))
            rows.append((identifier, rng.randrange(n_groups), shrinking))
        else:
            rows.append(_fixed_row(rng, identifier, n_groups))
    return OngoingRelation.from_rows(SYNTHETIC_SCHEMA, rows)


def generate_dsc(
    n_rows: int = 10_000,
    *,
    seed: int = 13,
    ongoing_fraction: float = 0.20,
    group_size: int = 5,
) -> OngoingRelation:
    """``D_sc``: the scalability data set — 20 % ongoing ``[a, now)``."""
    return generate_dex(
        n_rows,
        seed=seed,
        ongoing_fraction=ongoing_fraction,
        segment=None,
        group_size=group_size,
    )


def strip_ongoing(
    relation: OngoingRelation,
    *,
    clip_start: TimePoint = HISTORY_START,
    clip_end: TimePoint = HISTORY_END,
) -> OngoingRelation:
    """Replace every ongoing interval with a comparable *fixed* interval.

    This produces the "without ongoing intervals" baseline relation of
    Fig. 9: identical data volume and join workload, but purely fixed
    intervals, isolating the cost of ongoing-interval processing.  The
    fixed substitute is the interval's envelope clipped to the history —
    ``[a, now)`` becomes ``[a, history end)`` and ``[now, b)`` becomes
    ``[history start, b)`` — so each tuple keeps roughly the same set of
    join partners it has under the ongoing semantics across all reference
    times.
    """
    position = relation.schema.index_of("VT")
    rows: List[OngoingTuple] = []
    for item in relation:
        value = item.values[position]
        if isinstance(value, OngoingInterval) and not value.is_fixed:
            start = max(value.start.a, clip_start)
            end = min(value.end.b, clip_end)
            if end <= start:
                end = start + 1
            values = list(item.values)
            values[position] = fixed_interval(start, end)
            rows.append(OngoingTuple(tuple(values), item.rt))
        else:
            rows.append(item)
    return OngoingRelation(relation.schema, rows)


def synthetic_database(relation: OngoingRelation, name: str = "R") -> Database:
    """A database with *relation* under table name *name* (default ``R``)."""
    database = Database("synthetic")
    database.register(name, relation)
    return database
