"""The evaluation workloads of Section IX-A.

Three query families, each runnable on the ongoing engine *and* via
Clifford's instantiate-then-evaluate baseline from one specification:

* ``Qσ_pred``  — :class:`SelectionWorkload`:
  ``σ_{VT pred [ts, te)}(R)`` with a temporal predicate against a fixed
  interval spanning the last 10 % of the data history;
* ``Q⋈_pred``  — :class:`SelfJoinWorkload`:
  ``R ⋈_{θN ∧ R.VT pred S.VT} S`` — a self join with a non-temporal
  equality ``θN`` plus the temporal predicate;
* ``QC⋈_pred`` — :class:`ComplexJoinWorkload` on MozillaBugs:
  for every person, the similar bugs open while the person works on a bug
  with severity *major*::

      A ⋈_{A.ID=S.ID ∧ A.VT overlaps S.VT ∧ Severity='major'} S
        ⋈_{A.ID=B.ID} B
        ⋈_{θsim ∧ A.VT pred B'.VT} B'

  where ``θsim`` equates product, component, and operating system.

The temporal predicates used throughout the evaluation are ``overlaps`` and
``before`` — representative of the most commonly used temporal predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines import clifford as _clifford
from repro.baselines.fixed_algebra import FIXED_PREDICATES, FixedInterval
from repro.core.interval import fixed_interval
from repro.core.timeline import TimePoint
from repro.engine.database import Database
from repro.engine.plan import PlanNode, scan
from repro.relational.predicates import col, lit
from repro.relational.relation import OngoingRelation
from repro.relational.tuples import FixedTuple

__all__ = [
    "last_tenth",
    "SelectionWorkload",
    "SelfJoinWorkload",
    "TemporalJoinWorkload",
    "ComplexJoinWorkload",
]


def last_tenth(history_start: TimePoint, history_end: TimePoint) -> FixedInterval:
    """The fixed interval spanning the last 10 % of the data history.

    This is the selection interval of the ``Qσ`` workloads ("the fixed time
    interval [ts, te) in the selection predicate spans the last 10 % of the
    data history").
    """
    span = history_end - history_start
    return (history_end - span // 10, history_end)


@dataclass(frozen=True)
class SelectionWorkload:
    """``Qσ_pred = σ_{VT pred [ts, te)}(R)``."""

    table: str
    predicate: str
    argument: FixedInterval
    vt: str = "VT"

    def plan(self) -> PlanNode:
        """The logical plan for the ongoing engine."""
        literal = lit(fixed_interval(*self.argument))
        predicate = getattr(col(self.vt), self.predicate)(literal)
        return scan(self.table).where(predicate)

    def run_ongoing(self, database: Database) -> OngoingRelation:
        """Evaluate once; the result remains valid as time passes by."""
        return database.query(self.plan())

    def run_clifford(self, database: Database, rt: TimePoint) -> List[FixedTuple]:
        """Instantiate at *rt*, then evaluate with fixed predicates."""
        relation = database.relation(self.table)
        vt_position = relation.schema.index_of(self.vt)
        rows = _clifford.bind_relation(relation, rt)
        return _clifford.selection(rows, vt_position, self.predicate, self.argument)


@dataclass(frozen=True)
class SelfJoinWorkload:
    """``Q⋈_pred = R ⋈_{R.G = S.G ∧ R.VT pred S.VT} S`` (self join)."""

    table: str
    predicate: str
    group: str = "G"
    vt: str = "VT"

    def plan(self) -> PlanNode:
        temporal = getattr(col(f"R.{self.vt}"), self.predicate)(col(f"S.{self.vt}"))
        predicate = (col(f"R.{self.group}") == col(f"S.{self.group}")) & temporal
        return scan(self.table).join(
            scan(self.table), on=predicate, left_name="R", right_name="S"
        )

    def run_ongoing(self, database: Database) -> OngoingRelation:
        return database.query(self.plan())

    def run_clifford(self, database: Database, rt: TimePoint) -> List[FixedTuple]:
        relation = database.relation(self.table)
        group_position = relation.schema.index_of(self.group)
        vt_position = relation.schema.index_of(self.vt)
        rows = _clifford.bind_relation(relation, rt)
        fixed_predicate = FIXED_PREDICATES[self.predicate]
        width = len(relation.schema)

        def residual(left_row: FixedTuple, right_row: FixedTuple) -> bool:
            return fixed_predicate(left_row[vt_position], right_row[vt_position])

        return _clifford.hash_join(
            rows, rows, [group_position], [group_position], residual
        )


@dataclass(frozen=True)
class TemporalJoinWorkload:
    """``R ⋈_{R.VT pred S.VT} S`` — a *pure* temporal self join.

    Without a non-temporal equality the join's candidate structure is
    governed entirely by the interval envelopes: the ongoing engine uses
    the merge (plane-sweep) interval join, Clifford's baseline the fixed
    plane sweep.  This exposes the *location* effect of Fig. 9: expanding
    intervals starting early (and shrinking intervals ending late) pair
    with many more partners.
    """

    table: str
    predicate: str
    vt: str = "VT"

    def plan(self) -> PlanNode:
        temporal = getattr(col(f"R.{self.vt}"), self.predicate)(col(f"S.{self.vt}"))
        return scan(self.table).join(
            scan(self.table), on=temporal, left_name="R", right_name="S"
        )

    def run_ongoing(self, database: Database) -> OngoingRelation:
        return database.query(self.plan())

    def run_clifford(self, database: Database, rt: TimePoint) -> List[FixedTuple]:
        relation = database.relation(self.table)
        vt_position = relation.schema.index_of(self.vt)
        rows = _clifford.bind_relation(relation, rt)
        if self.predicate == "overlaps":
            # Overlapping pairs are exactly the envelope-overlapping pairs
            # on fixed data — the plane sweep is both exact and fast.
            return _clifford.sweep_join(
                rows, rows, vt_position, vt_position, self.predicate
            )
        fixed_predicate = FIXED_PREDICATES[self.predicate]
        return [
            left + right
            for left in rows
            for right in rows
            if fixed_predicate(left[vt_position], right[vt_position])
        ]


@dataclass(frozen=True)
class ComplexJoinWorkload:
    """``QC⋈_pred`` — the complex four-way join on MozillaBugs.

    Expects a database with tables ``A`` (ID, Email, VT), ``S``
    (ID, Severity, VT), and ``B`` (ID, Product, Component, OS, Descr, VT),
    as produced by :meth:`repro.datasets.mozilla.MozillaBugs.as_database`.
    """

    predicate: str
    severity: str = "major"

    def plan(self) -> PlanNode:
        step1 = scan("A").join(
            scan("S"),
            on=(col("A.ID") == col("S.ID"))
            & (col("S.Severity") == lit(self.severity))
            & col("A.VT").overlaps(col("S.VT")),
            left_name="A",
            right_name="S",
        )
        step2 = step1.join(scan("B"), on=col("A.ID") == col("B.ID"), right_name="B")
        similar = (
            (col("B.Product") == col("B2.Product"))
            & (col("B.Component") == col("B2.Component"))
            & (col("B.OS") == col("B2.OS"))
        )
        temporal = getattr(col("A.VT"), self.predicate)(col("B2.VT"))
        return step2.join(scan("B"), on=similar & temporal, right_name="B2")

    def run_ongoing(self, database: Database) -> OngoingRelation:
        return database.query(self.plan())

    def run_clifford(self, database: Database, rt: TimePoint) -> List[FixedTuple]:
        """The same pipeline on instantiated rows with fixed predicates.

        Hash joins throughout — the paper notes the optimizer picks a
        linear-time hash join for Clifford's approach on this query.
        """
        assignments = _clifford.bind_relation(database.relation("A"), rt)
        severities = _clifford.bind_relation(database.relation("S"), rt)
        bugs = _clifford.bind_relation(database.relation("B"), rt)
        overlaps_f = FIXED_PREDICATES["overlaps"]
        temporal_f = FIXED_PREDICATES[self.predicate]
        wanted_severity = self.severity

        # A ⋈ S on ID, residual: severity + overlaps.  A=(ID, Email, VT),
        # S appended at positions 3.. => Severity at 4, S.VT at 5.
        def residual_as(left_row: FixedTuple, right_row: FixedTuple) -> bool:
            return right_row[1] == wanted_severity and overlaps_f(
                left_row[2], right_row[2]
            )

        step1 = _clifford.hash_join(assignments, severities, [0], [0], residual_as)
        # (A+S) ⋈ B on ID.  B appended at 6..11.
        step2 = _clifford.hash_join(step1, bugs, [0], [0], None)

        # (A+S+B) ⋈ B' on (Product, Component, OS), residual: A.VT pred B'.VT.
        def residual_sim(left_row: FixedTuple, right_row: FixedTuple) -> bool:
            return temporal_f(left_row[2], right_row[5])

        return _clifford.hash_join(step2, bugs, [7, 8, 9], [1, 2, 3], residual_sim)
