"""Synthetic Incumbent data set (Table III of the paper).

The Incumbent relation of the University Information System data set [33]
records which projects are assigned to which university employees over a
16-year history.  The published characteristics this generator matches:

* 83,852 tuples at full scale — scaled down by default;
* 19 % ongoing tuples of shape ``[a, now)``;
* all ongoing assignments start within the **last year** of the history
  (Fig. 7's Incumbent panel: the cumulative curve is a step at the end);
* fixed assignments have start points across the whole history.

Schema: ``(EmpID, PCN, VT)`` — employee, project code number, valid time.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import TimePoint
from repro.engine.database import Database
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema

__all__ = [
    "INCUMBENT_SCHEMA",
    "DEFAULT_INCUMBENT_ROWS",
    "generate_incumbent",
    "incumbent_database",
]

INCUMBENT_SCHEMA = Schema.of("EmpID", "PCN", ("VT", "interval"))

#: Default scaled-down cardinality (full scale in the paper: 83,852).
DEFAULT_INCUMBENT_ROWS = 8_000

#: 16 years of history, ending at tick 0.
HISTORY_DAYS = 16 * 365
HISTORY_END: TimePoint = 0
HISTORY_START: TimePoint = HISTORY_END - HISTORY_DAYS


def generate_incumbent(
    n_rows: int = DEFAULT_INCUMBENT_ROWS,
    *,
    seed: int = 1998,
    ongoing_fraction: float = 0.19,
) -> OngoingRelation:
    """Generate the synthetic Incumbent relation."""
    rng = random.Random(seed)
    n_ongoing = round(n_rows * ongoing_fraction)
    n_employees = max(1, n_rows // 4)
    rows: List[Tuple[object, ...]] = []
    for index in range(n_rows):
        employee = rng.randrange(n_employees)
        project = f"PCN-{rng.randrange(max(1, n_rows // 8)):05d}"
        if index < n_ongoing:
            # Ongoing project assignments all started within the last year.
            start = HISTORY_END - rng.randrange(1, 365)
            rows.append((employee, project, until_now(start)))
        else:
            start = HISTORY_START + rng.randrange(HISTORY_DAYS - 1)
            duration = max(1, int(rng.expovariate(1.0 / 180.0)))
            end = min(start + duration, HISTORY_END)
            if end <= start:
                end = start + 1
            rows.append((employee, project, fixed_interval(start, end)))
    return OngoingRelation.from_rows(INCUMBENT_SCHEMA, rows)


def incumbent_database(
    n_rows: int = DEFAULT_INCUMBENT_ROWS, *, seed: int = 1998
) -> Database:
    """The Incumbent relation loaded into a database as table ``I``."""
    database = Database("incumbent")
    database.register("I", generate_incumbent(n_rows, seed=seed))
    return database
