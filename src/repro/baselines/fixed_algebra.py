"""Fixed-type interval operations — the ``opF`` side of every equivalence.

These are the classical operations on fixed half-open intervals
``(start, end)`` that every instantiating approach (Clifford, Torp for
predicates, Forever) evaluates, and that Definition 4 compares the ongoing
operations against:  for each ongoing operation ``op`` the library
guarantees ``‖op(x, y)‖rt == opF(‖x‖rt, ‖y‖rt)`` at every reference time.

The empty-interval conventions mirror Table II exactly (an instantiated
ongoing interval can be empty):

* all predicates except ``during``/``equals`` require both operands
  non-empty;
* an empty interval is ``during`` any non-empty interval;
* two empty intervals are ``equals``.

The module also provides the fixed min/max/comparison wrappers used by the
property tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

__all__ = [
    "FixedInterval",
    "is_empty",
    "before_f",
    "after_f",
    "meets_f",
    "met_by_f",
    "overlaps_f",
    "starts_f",
    "started_by_f",
    "finishes_f",
    "finished_by_f",
    "during_f",
    "contains_f",
    "equals_f",
    "intersect_f",
    "contains_point_f",
    "FIXED_PREDICATES",
]

FixedInterval = Tuple[int, int]


def is_empty(i: FixedInterval) -> bool:
    """A fixed half-open interval ``[s, e)`` is empty iff ``s >= e``."""
    return i[0] >= i[1]


def before_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i before j``: i ends at or before j starts; both non-empty."""
    return i[1] <= j[0] and i[0] < i[1] and j[0] < j[1]


def after_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i after j  ==  j before i``."""
    return before_f(j, i)


def meets_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i meets j``: i ends exactly where j starts; both non-empty."""
    return i[1] == j[0] and i[0] < i[1] and j[0] < j[1]


def met_by_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i met_by j  ==  j meets i``."""
    return meets_f(j, i)


def overlaps_f(i: FixedInterval, j: FixedInterval) -> bool:
    """Symmetric overlap: the intervals share a time point (both non-empty)."""
    return i[0] < j[1] and j[0] < i[1] and i[0] < i[1] and j[0] < j[1]


def starts_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i starts j``: same start; both non-empty."""
    return i[0] == j[0] and i[0] < i[1] and j[0] < j[1]


def started_by_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i started_by j  ==  j starts i``."""
    return starts_f(j, i)


def finishes_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i finishes j``: same end; both non-empty."""
    return i[1] == j[1] and i[0] < i[1] and j[0] < j[1]


def finished_by_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i finished_by j  ==  j finishes i``."""
    return finishes_f(j, i)


def during_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i during j`` with the Table II convention: empty ⊆ non-empty."""
    if i[0] >= i[1]:
        return j[0] < j[1]
    return j[0] <= i[0] and i[1] <= j[1] and j[0] < j[1]


def contains_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i contains j  ==  j during i``."""
    return during_f(j, i)


def equals_f(i: FixedInterval, j: FixedInterval) -> bool:
    """``i equals j`` with the Table II convention: empty == empty."""
    i_empty = i[0] >= i[1]
    j_empty = j[0] >= j[1]
    if i_empty or j_empty:
        return i_empty and j_empty
    return i == j


def intersect_f(i: FixedInterval, j: FixedInterval) -> FixedInterval:
    """``i ∩ j = [max(s, s̃), min(e, ẽ))`` (possibly empty)."""
    return (max(i[0], j[0]), min(i[1], j[1]))


def contains_point_f(i: FixedInterval, p: int) -> bool:
    """``p ∈ [s, e)``."""
    return i[0] <= p < i[1]


#: Name -> fixed predicate, keyed like the ongoing Allen registry so
#: workloads can run both variants from one specification.
FIXED_PREDICATES: Dict[str, Callable[[FixedInterval, FixedInterval], bool]] = {
    "before": before_f,
    "after": after_f,
    "meets": meets_f,
    "met_by": met_by_f,
    "overlaps": overlaps_f,
    "starts": starts_f,
    "started_by": started_by_f,
    "finishes": finishes_f,
    "finished_by": finished_by_f,
    "during": during_f,
    "contains": contains_f,
    "interval_equals": equals_f,
}
