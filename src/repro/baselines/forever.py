"""Snodgrass' *Forever* baseline [22] — and why it is wrong.

TQuel replaces the ongoing end point *now* with **Forever**, the largest
time point of the domain.  Queries then run on purely fixed data with the
classical machinery — but the results are incorrect: a bug that is open
``[01/25, now)`` is *not* open until the end of time, it is open until the
reference time.  The paper's counter-example (Section III): at reference
time 05/14, the query "which bugs might be resolved before patch 201 goes
live?" must contain bug 500 (its instantiated valid time ``[01/25, 05/14)``
is before the patch interval ``[08/15, 08/24)``) — with Forever as the end
point the bug is missing.

:func:`forever_relation` performs the substitution; the example and test
suite demonstrate the incorrectness against the ongoing approach.
"""

from __future__ import annotations

from typing import List

from repro.core.interval import OngoingInterval
from repro.core.timeline import PLUS_INF, TimePoint
from repro.core.timepoint import OngoingTimePoint, fixed
from repro.relational.relation import OngoingRelation
from repro.relational.tuples import OngoingTuple

__all__ = ["FOREVER", "forever_point", "forever_value", "forever_relation"]

#: The largest time point of the domain, as a fixed value.
FOREVER: TimePoint = PLUS_INF


def forever_point(point: OngoingTimePoint) -> OngoingTimePoint:
    """Replace an ongoing point by the fixed point *Forever*.

    Fixed points pass through; every genuinely ongoing point (now, growing,
    limited, general) collapses to Forever — this is precisely the
    information loss that makes the approach incorrect.
    """
    if point.is_fixed:
        return point
    return fixed(FOREVER)


def forever_value(value: object) -> object:
    """Apply the Forever substitution to one attribute value."""
    if isinstance(value, OngoingTimePoint):
        return forever_point(value)
    if isinstance(value, OngoingInterval):
        return OngoingInterval(forever_point(value.start), forever_point(value.end))
    return value


def forever_relation(relation: OngoingRelation) -> OngoingRelation:
    """A copy of *relation* with every ongoing point replaced by Forever.

    The result contains only fixed values (wrapped in the ongoing types for
    schema compatibility), so classical evaluation applies — and produces
    the incorrect results the paper's counter-example exhibits.
    """
    tuples: List[OngoingTuple] = []
    for item in relation:
        tuples.append(
            OngoingTuple(
                tuple(forever_value(value) for value in item.values), item.rt
            )
        )
    return OngoingRelation(relation.schema, tuples)
