"""Torp et al. [4] — the ``Tf`` time domain baseline.

Torp, Jensen, and Snodgrass handle now-relative data with the domain::

    Tf = T ∪ { min(a, now) | a ∈ T } ∪ { max(a, now) | a ∈ T }

``Tf`` supports intersection and difference without instantiating *now*
(enough for correct temporal *modifications*), but it is **not closed under
min/max** (Table I): e.g. ``max(min(a, now), b)`` with ``b < a`` denotes
"not earlier than b, not later than a" — an ongoing point that only Ω can
represent.  And **predicates** over uninstantiated attributes are not
supported at all; queries fall back to Clifford's instantiation, so Torp's
query results still get invalidated by time passing by.

Every ``Tf`` point embeds into Ω (:meth:`TfTimePoint.to_omega`), which is
how the paper positions Ω as the strict generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.timeline import MINUS_INF, PLUS_INF, TimePoint
from repro.core.timepoint import OngoingTimePoint
from repro.errors import TimeDomainError

__all__ = ["NotRepresentableError", "TfTimePoint", "TfInterval"]


class NotRepresentableError(TimeDomainError):
    """The exact result exists in Ω but not in ``Tf`` (non-closure)."""


@dataclass(frozen=True)
class TfTimePoint:
    """An element of ``Tf``: fixed ``a``, ``min(a, now)``, or ``max(a, now)``.

    ``now`` itself is ``min(+inf, now)`` (equivalently ``max(-inf, now)``).
    """

    kind: str  # "fixed" | "min_now" | "max_now"
    anchor: TimePoint

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def fixed(cls, a: TimePoint) -> "TfTimePoint":
        return cls("fixed", a)

    @classmethod
    def min_now(cls, a: TimePoint) -> "TfTimePoint":
        """``min(a, now)`` — at rt: the earlier of a and rt."""
        return cls("min_now", a)

    @classmethod
    def max_now(cls, a: TimePoint) -> "TfTimePoint":
        """``max(a, now)`` — at rt: the later of a and rt."""
        return cls("max_now", a)

    @classmethod
    def now(cls) -> "TfTimePoint":
        return cls("min_now", PLUS_INF)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def instantiate(self, rt: TimePoint) -> TimePoint:
        """The fixed value at reference time *rt*."""
        if self.kind == "fixed":
            return self.anchor
        if self.kind == "min_now":
            return min(self.anchor, rt)
        return max(self.anchor, rt)

    def to_omega(self) -> OngoingTimePoint:
        """The Ω point with the same instantiation at every rt.

        * fixed ``a``       -> ``a+a``
        * ``min(a, now)``   -> ``-inf+a`` (the limited point ``+a``)
        * ``max(a, now)``   -> ``a+inf`` (the growing point ``a+``)
        """
        if self.kind == "fixed":
            return OngoingTimePoint(self.anchor, self.anchor)
        if self.kind == "min_now":
            return OngoingTimePoint(MINUS_INF, self.anchor)
        return OngoingTimePoint(self.anchor, PLUS_INF)

    @classmethod
    def from_omega(cls, point: OngoingTimePoint) -> "TfTimePoint":
        """The ``Tf`` element equal to *point*, if one exists.

        Raises :class:`NotRepresentableError` for general ongoing points
        ``a+b`` with finite ``a < b`` — the witnesses of ``Tf``'s
        non-closure.
        """
        if point.is_fixed:
            return cls.fixed(point.a)
        if point.a == MINUS_INF:
            return cls.min_now(point.b)
        if point.b == PLUS_INF:
            return cls.max_now(point.a)
        raise NotRepresentableError(
            f"ongoing point {point.format()} is not representable in Tf"
        )

    # ------------------------------------------------------------------
    # min/max — closed only partially (the point of Table I)
    # ------------------------------------------------------------------

    def minimum(self, other: "TfTimePoint") -> "TfTimePoint":
        """``min`` in ``Tf``; raises when the result leaves the domain."""
        result = _omega_min(self.to_omega(), other.to_omega())
        return TfTimePoint.from_omega(result)

    def maximum(self, other: "TfTimePoint") -> "TfTimePoint":
        """``max`` in ``Tf``; raises when the result leaves the domain."""
        result = _omega_max(self.to_omega(), other.to_omega())
        return TfTimePoint.from_omega(result)

    def format(self) -> str:
        if self.kind == "fixed":
            return str(self.anchor)
        if self.kind == "min_now":
            return f"min({self.anchor}, now)" if self.anchor < PLUS_INF else "now"
        return f"max({self.anchor}, now)"


def _omega_min(x: OngoingTimePoint, y: OngoingTimePoint) -> OngoingTimePoint:
    return OngoingTimePoint(min(x.a, y.a), min(x.b, y.b))


def _omega_max(x: OngoingTimePoint, y: OngoingTimePoint) -> OngoingTimePoint:
    return OngoingTimePoint(max(x.a, y.a), max(x.b, y.b))


@dataclass(frozen=True)
class TfInterval:
    """A half-open interval over ``Tf`` — supports ∩ and − uninstantiated.

    These two functions are what Torp et al. need to express temporal
    modifications that remain valid as time passes by.  Anything beyond
    them (predicates!) requires instantiation.
    """

    start: TfTimePoint
    end: TfTimePoint

    def instantiate(self, rt: TimePoint) -> Tuple[TimePoint, TimePoint]:
        return (self.start.instantiate(rt), self.end.instantiate(rt))

    def intersect(self, other: "TfInterval") -> "TfInterval":
        """``[max(s, s̃), min(e, ẽ))`` — stays in ``Tf`` or raises."""
        return TfInterval(
            self.start.maximum(other.start), self.end.minimum(other.end)
        )

    def difference(self, other: "TfInterval") -> List["TfInterval"]:
        """``self − other`` as up to two ``Tf`` intervals (or raises).

        The left remainder is ``[s, min(e, s̃))``, the right remainder
        ``[max(s, ẽ), e)`` — both expressed with min/max so *now* never
        instantiates (the construction from Torp's modification semantics).
        """
        remainders = [
            TfInterval(self.start, self.end.minimum(other.start)),
            TfInterval(self.start.maximum(other.end), self.end),
        ]
        return remainders

    def format(self) -> str:
        return f"[{self.start.format()}, {self.end.format()})"
