"""Anselma et al. [5] — the ``T ∪ {now}`` baseline.

Anselma, Stantic, Terenziani, and Sattar cope with the four common *now*
representations over the domain ``Tnow = T ∪ {now}``.  Their intersection
and difference *may* keep *now* uninstantiated — namely when the result end
point is again *now*::

    [10/14, now) ∩ [10/17, now)  =  [10/17, now)        (kept ongoing)

but must instantiate for anything more complex::

    [10/17, 10/22) ∩ [10/17, now)  =  [10/17, 10/20)    at rt = 10/20

because ``min(10/22, now)`` has no representation in ``Tnow`` (it needs
the limited point ``+10/22`` of Ω, or Torp's ``min(a, now)``).  Once
instantiated, the result is only valid at the chosen reference time — it
gets invalidated by time passing by, which is what the comparison
experiments quantify.  Predicates on ongoing attributes are not worked out
in their approach (Section III) and fall back to instantiation as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.timeline import MINUS_INF, PLUS_INF, TimePoint
from repro.core.timepoint import NOW, OngoingTimePoint, fixed
from repro.errors import InstantiationError

__all__ = ["AnselmaPoint", "AnselmaInterval", "AnselmaResult"]


@dataclass(frozen=True)
class AnselmaPoint:
    """An element of ``Tnow``: a fixed point or the symbol *now*."""

    value: Optional[TimePoint]  # None encodes now

    @classmethod
    def now(cls) -> "AnselmaPoint":
        return cls(None)

    @classmethod
    def at(cls, point: TimePoint) -> "AnselmaPoint":
        return cls(point)

    @property
    def is_now(self) -> bool:
        return self.value is None

    def instantiate(self, rt: TimePoint) -> TimePoint:
        return rt if self.value is None else self.value

    def to_omega(self) -> OngoingTimePoint:
        """Embed into Ω (``now`` becomes ``-inf+inf``)."""
        if self.value is None:
            return NOW
        return fixed(self.value)

    def format(self) -> str:
        return "now" if self.value is None else str(self.value)


@dataclass(frozen=True)
class AnselmaResult:
    """The outcome of an Anselma operation.

    ``instantiated`` records whether the operation had to bind *now* to a
    concrete reference time — the event after which the result no longer
    remains valid as time passes by.  The re-evaluation experiments count
    these events.
    """

    interval: "AnselmaInterval"
    instantiated: bool
    reference_time: Optional[TimePoint] = None


@dataclass(frozen=True)
class AnselmaInterval:
    """A half-open interval over ``Tnow``."""

    start: AnselmaPoint
    end: AnselmaPoint

    @classmethod
    def make(
        cls, start: Optional[TimePoint], end: Optional[TimePoint]
    ) -> "AnselmaInterval":
        """``None`` encodes *now* on either side."""
        return cls(AnselmaPoint(start), AnselmaPoint(end))

    def instantiate(self, rt: TimePoint) -> Tuple[TimePoint, TimePoint]:
        return (self.start.instantiate(rt), self.end.instantiate(rt))

    def intersect(
        self, other: "AnselmaInterval", rt: Optional[TimePoint] = None
    ) -> AnselmaResult:
        """``self ∩ other`` — ongoing when representable, else instantiated.

        The representable cases keep *now*: both end points *now* (the
        paper's ``[10/14, now) ∩ [10/17, now)`` example), or both fixed.
        A mix of a fixed and a *now* end point requires ``min(e, now)``,
        which leaves ``Tnow``: the operation must instantiate at *rt*
        (raising :class:`~repro.errors.InstantiationError` when no
        reference time was supplied).
        """
        start = _max_point(self.start, other.start, rt)
        end, needed_rt = _min_point(self.end, other.end, rt)
        if needed_rt:
            # The start may also involve now; bind everything at rt.
            return AnselmaResult(
                AnselmaInterval(
                    AnselmaPoint(self.start.instantiate(rt)).__class__(
                        max(self.start.instantiate(rt), other.start.instantiate(rt))
                    ),
                    end,
                ),
                instantiated=True,
                reference_time=rt,
            )
        return AnselmaResult(AnselmaInterval(start, end), instantiated=False)


def _max_point(
    left: AnselmaPoint, right: AnselmaPoint, rt: Optional[TimePoint]
) -> AnselmaPoint:
    """max of two start points; ``max(a, now)`` is kept as *now* only when
    exact, which for start points of the supported interval shapes means
    both operands are *now* or both fixed."""
    if left.is_now and right.is_now:
        return AnselmaPoint.now()
    if not left.is_now and not right.is_now:
        return AnselmaPoint(max(left.value, right.value))
    # Mixed: max(a, now) is not in Tnow; Anselma instantiates.
    if rt is None:
        raise InstantiationError(
            "Anselma intersection of mixed start points requires a "
            "reference time to instantiate now"
        )
    return AnselmaPoint(max(left.instantiate(rt), right.instantiate(rt)))


def _min_point(
    left: AnselmaPoint, right: AnselmaPoint, rt: Optional[TimePoint]
) -> Tuple[AnselmaPoint, bool]:
    """min of two end points; returns (point, had_to_instantiate)."""
    if left.is_now and right.is_now:
        return AnselmaPoint.now(), False
    if not left.is_now and not right.is_now:
        return AnselmaPoint(min(left.value, right.value)), False
    if rt is None:
        raise InstantiationError(
            "Anselma intersection of a fixed and an ongoing end point "
            "requires a reference time to instantiate now"
        )
    return AnselmaPoint(min(left.instantiate(rt), right.instantiate(rt))), True
