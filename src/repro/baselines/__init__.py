"""The comparison approaches discussed in Section III of the paper.

* :mod:`repro.baselines.fixed_algebra` — classical fixed-interval
  operations (the ``opF`` side of every Definition 4 equivalence);
* :mod:`repro.baselines.clifford` — instantiate *now* when accessed [3];
  the main runtime comparator (``Cliff_max``) of the evaluation;
* :mod:`repro.baselines.torp` — the ``Tf`` domain [4]: uninstantiated
  ∩/− for modifications, no predicates, not closed under min/max;
* :mod:`repro.baselines.forever` — TQuel's *Forever* substitution [22],
  demonstrably incorrect;
* :mod:`repro.baselines.anselma` — ``T ∪ {now}`` [5]: keeps *now* in easy
  intersections, must instantiate otherwise.
"""

from repro.baselines import fixed_algebra
from repro.baselines.clifford import (
    bind_relation,
    cliff_max_reference_time,
    hash_join,
    selection,
    sweep_join,
)
from repro.baselines.torp import NotRepresentableError, TfInterval, TfTimePoint
from repro.baselines.forever import (
    FOREVER,
    forever_point,
    forever_relation,
    forever_value,
)
from repro.baselines.anselma import AnselmaInterval, AnselmaPoint, AnselmaResult

__all__ = [
    "fixed_algebra",
    "bind_relation",
    "cliff_max_reference_time",
    "hash_join",
    "selection",
    "sweep_join",
    "NotRepresentableError",
    "TfInterval",
    "TfTimePoint",
    "FOREVER",
    "forever_point",
    "forever_relation",
    "forever_value",
    "AnselmaInterval",
    "AnselmaPoint",
    "AnselmaResult",
]
