"""Clifford et al. [3] — the instantiate-when-accessed baseline.

Clifford's framework replaces *now* with the reference time whenever an
ongoing value is accessed, so queries run entirely on fixed data with the
classical operations.  The price: the result is **only valid at the chosen
reference time** and gets outdated as time passes by — the application must
re-evaluate the query to stay correct.  The evaluation section of the paper
measures exactly this trade-off (Figs. 8, 10, 11, 12).

This module provides:

* :func:`bind_relation` — instantiate a whole ongoing relation at ``rt``
  (the scan-time bind the paper implemented as a C function in the
  PostgreSQL kernel);
* a small fixed-relation executor (:func:`selection`, :func:`hash_join`,
  :func:`sweep_join`) so Clifford's runs use the same algorithmic toolbox
  as the ongoing engine — only on instantiated data with fixed predicates;
* :func:`cliff_max_reference_time` — the ``Cliff_max`` convention of the
  evaluation: a reference time greater than the latest fixed end point in
  the data, representing the typical "query at the current time" use.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.baselines.fixed_algebra import FIXED_PREDICATES, FixedInterval
from repro.core.interval import OngoingInterval
from repro.core.timeline import MINUS_INF, PLUS_INF, TimePoint, is_finite
from repro.core.timepoint import OngoingTimePoint
from repro.relational.relation import OngoingRelation
from repro.relational.tuples import FixedTuple

__all__ = [
    "bind_relation",
    "selection",
    "hash_join",
    "sweep_join",
    "cliff_max_reference_time",
]


def bind_relation(relation: OngoingRelation, rt: TimePoint) -> List[FixedTuple]:
    """Instantiate every tuple of *relation* at *rt* (omitting RT misses).

    Returns a list (not a set): the instantiating baselines pay the bind
    cost per access, which is what the runtime experiments measure; callers
    needing set semantics wrap the result themselves.
    """
    result: List[FixedTuple] = []
    for item in relation.tuples:
        bound = item.instantiate(rt)
        if bound is not None:
            result.append(bound)
    return result


def selection(
    rows: Sequence[FixedTuple],
    vt_position: int,
    predicate_name: str,
    argument: FixedInterval,
) -> List[FixedTuple]:
    """``σ_{VT pred argument}`` on instantiated rows with fixed predicates."""
    predicate = FIXED_PREDICATES[predicate_name]
    return [row for row in rows if predicate(row[vt_position], argument)]


def hash_join(
    left: Sequence[FixedTuple],
    right: Sequence[FixedTuple],
    left_keys: Sequence[int],
    right_keys: Sequence[int],
    residual: Callable[[FixedTuple, FixedTuple], bool] | None = None,
) -> List[FixedTuple]:
    """Classical hash join on instantiated rows (concatenating matches)."""
    table: Dict[Tuple[object, ...], List[FixedTuple]] = {}
    for row in right:
        key = tuple(row[position] for position in right_keys)
        table.setdefault(key, []).append(row)
    output: List[FixedTuple] = []
    for row in left:
        key = tuple(row[position] for position in left_keys)
        bucket = table.get(key)
        if not bucket:
            continue
        for match in bucket:
            if residual is None or residual(row, match):
                output.append(row + match)
    return output


def sweep_join(
    left: Sequence[FixedTuple],
    right: Sequence[FixedTuple],
    left_vt: int,
    right_vt: int,
    predicate_name: str = "overlaps",
    residual: Callable[[FixedTuple, FixedTuple], bool] | None = None,
) -> List[FixedTuple]:
    """Plane-sweep interval join on instantiated rows.

    For ``overlaps`` the sweep is exact; for other temporal predicates the
    envelope candidates are post-filtered with the fixed predicate.
    """
    predicate = FIXED_PREDICATES[predicate_name]
    left_sorted = sorted(
        ((row[left_vt], row) for row in left), key=lambda pair: pair[0][0]
    )
    right_sorted = sorted(
        ((row[right_vt], row) for row in right), key=lambda pair: pair[0][0]
    )
    output: List[FixedTuple] = []

    def emit(left_row: FixedTuple, right_row: FixedTuple) -> None:
        if predicate(left_row[left_vt], right_row[right_vt]) and (
            residual is None or residual(left_row, right_row)
        ):
            output.append(left_row + right_row)

    i, j = 0, 0
    n_left, n_right = len(left_sorted), len(right_sorted)
    while i < n_left and j < n_right:
        left_interval, left_row = left_sorted[i]
        right_interval, right_row = right_sorted[j]
        if left_interval[0] <= right_interval[0]:
            end = left_interval[1]
            k = j
            while k < n_right and right_sorted[k][0][0] < end:
                emit(left_row, right_sorted[k][1])
                k += 1
            i += 1
        else:
            end = right_interval[1]
            k = i
            while k < n_left and left_sorted[k][0][0] < end:
                emit(left_sorted[k][1], right_row)
                k += 1
            j += 1
    return output


def cliff_max_reference_time(*relations: OngoingRelation) -> TimePoint:
    """A reference time greater than the latest finite end point in the data.

    ``Cliff_max`` in the evaluation: instantiating at this time represents
    the common case of querying close to the current time (all expanding
    intervals have reached their largest extent relative to the fixed data).
    """
    latest = MINUS_INF
    for relation in relations:
        for item in relation.tuples:
            for value in item.values:
                if isinstance(value, OngoingInterval):
                    for component in value.components():
                        if is_finite(component) and component > latest:
                            latest = component
                elif isinstance(value, OngoingTimePoint):
                    for component in value.components():
                        if is_finite(component) and component > latest:
                            latest = component
    if latest == MINUS_INF:
        raise ValueError("relations contain no finite time points")
    return latest + 1
