"""Golden tests: every worked example of the paper, verbatim.

If one of these fails, the library no longer reproduces the paper.
Covered: the running example (Section II, Figs. 1-2), Example 1 (Fig. 5),
Example 2, Example 3, Table II's example column, Fig. 3's time point
taxonomy, Fig. 4's interval taxonomy, and the correctness invariant on the
running example's full query.
"""

from repro import (
    IntervalSet,
    NOW,
    OngoingInterval,
    OngoingTimePoint,
    allen,
    equal,
    fixed,
    fixed_interval,
    growing,
    less_equal,
    limited,
    mmdd,
    not_equal,
    ongoing_min,
    until_now,
)
from repro.engine import Database, scan
from repro.relational import Schema, col, lit


def d(month, day):
    return mmdd(month, day)


class TestFig3TimePointTaxonomy:
    def test_fixed_point(self):
        point = OngoingTimePoint(d(10, 17), d(10, 19))
        assert point.format() == "10/17+10/19"
        assert point.instantiate(d(10, 16)) == d(10, 17)
        assert point.instantiate(d(10, 18)) == d(10, 18)
        assert point.instantiate(d(10, 20)) == d(10, 19)

    def test_all_four_kinds_are_a_plus_b(self):
        assert fixed(d(10, 17)).components() == (d(10, 17), d(10, 17))
        assert NOW.kind == "now"
        assert growing(d(10, 17)).kind == "growing"
        assert limited(d(10, 17)).kind == "limited"


class TestExample1MinRemainsValid:
    """min(10/17, now) = +10/17 and Fig. 5's two instantiation columns."""

    def test_result_is_limited_point(self):
        assert ongoing_min(fixed(d(10, 17)), NOW) == limited(d(10, 17))

    def test_fig5_left_column(self):
        result = ongoing_min(fixed(d(10, 17)), NOW)
        rt = d(10, 15)
        assert result.instantiate(rt) == d(10, 15)
        assert result.instantiate(rt) == min(d(10, 17), rt)

    def test_fig5_right_column(self):
        result = ongoing_min(fixed(d(10, 17)), NOW)
        rt = d(10, 19)
        assert result.instantiate(rt) == d(10, 17)
        assert result.instantiate(rt) == min(d(10, 17), rt)


class TestTableTwoExampleColumn:
    def test_le(self):
        result = less_equal(NOW, fixed(d(10, 17)))
        assert result.true_set == IntervalSet.below(d(10, 18))

    def test_eq(self):
        result = equal(fixed(d(10, 17)), NOW)
        assert result.true_set == IntervalSet.point(d(10, 17))

    def test_ne(self):
        result = not_equal(fixed(d(10, 17)), NOW)
        assert result.true_set == IntervalSet.point(d(10, 17)).complement()

    def test_before(self):
        result = allen.before(
            until_now(d(10, 17)), fixed_interval(d(10, 20), d(10, 25))
        )
        assert result.true_set == IntervalSet([(d(10, 18), d(10, 21))])

    def test_meets(self):
        result = allen.meets(
            until_now(d(10, 17)), fixed_interval(d(10, 20), d(10, 25))
        )
        assert result.true_set == IntervalSet([(d(10, 20), d(10, 21))])

    def test_overlaps(self):
        result = allen.overlaps(
            until_now(d(10, 17)), fixed_interval(d(10, 14), d(10, 20))
        )
        assert result.true_set == IntervalSet.at_least(d(10, 18))

    def test_starts(self):
        result = allen.starts(
            until_now(d(10, 17)), fixed_interval(d(10, 17), d(10, 20))
        )
        assert result.true_set == IntervalSet.at_least(d(10, 18))

    def test_finishes(self):
        result = allen.finishes(
            until_now(d(10, 17)), fixed_interval(d(10, 20), d(10, 25))
        )
        assert result.true_set == IntervalSet.point(d(10, 25))

    def test_during(self):
        result = allen.during(
            fixed_interval(d(10, 20), d(10, 25)), until_now(d(10, 17))
        )
        assert result.true_set == IntervalSet.at_least(d(10, 25))

    def test_equals(self):
        result = allen.interval_equals(
            until_now(d(10, 17)), fixed_interval(d(10, 17), d(10, 20))
        )
        assert result.true_set == IntervalSet.point(d(10, 20))

    def test_intersection(self):
        result = allen.intersect(
            until_now(d(10, 17)), fixed_interval(d(10, 14), d(10, 20))
        )
        assert result == OngoingInterval(fixed(d(10, 17)), limited(d(10, 20)))
        assert result.format() == "[10/17, +10/20)"


class TestExample2OverlapsEmptiness:
    def test_empty_at_10_16_true_at_10_18(self):
        result = allen.overlaps(
            until_now(d(10, 17)), fixed_interval(d(10, 14), d(10, 20))
        )
        assert result.instantiate(d(10, 16)) is False
        assert result.instantiate(d(10, 18)) is True


def _running_example_database() -> Database:
    db = Database("email-service")
    bugs = db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(d(3, 30), d(8, 21)))
    patches = db.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(d(8, 15), d(8, 24)))
    patches.insert(202, "Spam filter", fixed_interval(d(8, 24), d(8, 27)))
    leads = db.create_table("L", Schema.of("Name", "C", ("VT", "interval")))
    leads.insert("Ann", "Spam filter", fixed_interval(d(1, 20), d(8, 18)))
    leads.insert("Bob", "Spam filter", until_now(d(8, 18)))
    return db


def _running_example_plan():
    return (
        scan("B")
        .where(col("C") == lit("Spam filter"))
        .join(
            scan("P"),
            on=(col("B.C") == col("P.C")) & col("B.VT").before(col("P.VT")),
            left_name="B",
            right_name="P",
        )
        .join(
            scan("L"),
            on=(col("B.C") == col("L.C")) & col("B.VT").overlaps(col("L.VT")),
            right_name="L",
        )
        .select_columns(
            ("BID", col("B.BID")),
            ("B.VT", col("B.VT")),
            ("PID", col("P.PID")),
            ("Name", col("L.Name")),
            ("Resp", col("B.VT").intersect(col("L.VT"))),
        )
    )


class TestRunningExample:
    """Section II: query V over B, P, L reproduces Fig. 2 exactly."""

    def test_fig2_rows(self):
        result = _running_example_database().query(_running_example_plan())
        rows = {
            (
                row.values[0],
                row.values[1].format(),
                row.values[2],
                row.values[3],
                row.values[4].format(),
                row.rt.format(),
            )
            for row in result
        }
        assert rows == {
            (500, "[01/25, now)", 201, "Ann", "[01/25, +08/18)", "{[01/26, 08/16)}"),
            (500, "[01/25, now)", 202, "Ann", "[01/25, +08/18)", "{[01/26, 08/25)}"),
            (500, "[01/25, now)", 202, "Bob", "[08/18, now)", "{[08/19, 08/25)}"),
            (501, "[03/30, 08/21)", 202, "Ann", "[03/30, 08/18)", "{(-inf, inf)}"),
            (501, "[03/30, 08/21)", 202, "Bob", "[08/18, +08/21)", "{[08/19, inf)}"),
        }

    def test_b1_join_p1_reference_time(self):
        """The worked RT computation: RT(b1 ⋈ p1) = {[01/26, 08/16)}."""
        db = _running_example_database()
        plan = (
            scan("B")
            .where(col("C") == lit("Spam filter"))
            .join(
                scan("P"),
                on=(col("B.C") == col("P.C")) & col("B.VT").before(col("P.VT")),
                left_name="B",
                right_name="P",
            )
        )
        result = db.query(plan)
        for row in result:
            if row.values[0] == 500 and row.values[3] == 201:
                assert row.rt == IntervalSet([(d(1, 26), d(8, 16))])
                return
        raise AssertionError("b1 x p1 missing from the join result")

    def test_correctness_invariant_on_v(self):
        """∀rt: ‖V‖rt == evaluating the instantiated query at rt."""
        db = _running_example_database()
        result = db.query(_running_example_plan())
        bugs = db.relation("B")
        patches = db.relation("P")
        leads = db.relation("L")
        for rt in range(d(1, 1), d(12, 31), 5):
            expected = set()
            for bid, bc, bvt in bugs.instantiate(rt):
                if bc != "Spam filter":
                    continue
                for pid, pc, pvt in patches.instantiate(rt):
                    if not (bvt[1] <= pvt[0] and bvt[0] < bvt[1] and pvt[0] < pvt[1]):
                        continue
                    for name, lc, lvt in leads.instantiate(rt):
                        if (
                            bvt[0] < lvt[1]
                            and lvt[0] < bvt[1]
                            and bvt[0] < bvt[1]
                            and lvt[0] < lvt[1]
                        ):
                            expected.add(
                                (
                                    bid,
                                    bvt,
                                    pid,
                                    name,
                                    (max(bvt[0], lvt[0]), min(bvt[1], lvt[1])),
                                )
                            )
            assert result.instantiate(rt) == expected, rt


class TestExample3SelectionRestriction:
    def test_reference_time_restriction(self):
        from repro.relational import OngoingTuple, OngoingRelation
        from repro.relational.algebra import select

        relation = OngoingRelation(
            Schema.of("BID", "C", ("VT", "interval")),
            [
                OngoingTuple(
                    (500, "Spam filter", until_now(d(1, 25))),
                    IntervalSet.below(d(8, 16)),
                )
            ],
        )
        window = lit(fixed_interval(d(1, 20), d(8, 18)))
        result = select(relation, col("VT").overlaps(window))
        (row,) = result.tuples
        assert row.rt == IntervalSet([(d(1, 26), d(8, 16))])


class TestFig4IntervalTaxonomy:
    def test_expanding_unbounded(self):
        assert until_now(d(10, 17)).kind == "expanding"

    def test_expanding_bounded_duration_growth(self):
        interval = OngoingInterval(
            fixed(d(10, 17)), OngoingTimePoint(d(10, 19), d(10, 21))
        )
        assert interval.is_expanding
        # duration grows up to rt=10/21, then freezes at [10/17, 10/21)
        assert interval.instantiate(d(10, 25)) == (d(10, 17), d(10, 21))

    def test_shrinking(self):
        interval = OngoingInterval(growing(d(10, 16)), fixed(d(10, 19)))
        assert interval.is_shrinking

    def test_partially_empty_example(self):
        assert until_now(d(10, 17)).is_partially_empty()
        assert until_now(d(10, 17)).is_empty_at(d(10, 16))
        assert not until_now(d(10, 17)).is_empty_at(d(10, 18))
