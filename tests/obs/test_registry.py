"""The metrics registry: families, labels, collectors, rendering."""

import json
import math

import pytest

from repro.obs.promtext import validate_prometheus_text
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Sample,
)


class TestFamilies:
    def test_counter_increments(self):
        registry = Registry()
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_gauge_moves_both_ways(self):
        registry = Registry()
        gauge = registry.gauge("repro_depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == pytest.approx(8)

    def test_labeled_children_are_independent(self):
        registry = Registry()
        counter = registry.counter(
            "repro_labeled_total", "", labelnames=("table",)
        )
        counter.labels("R").inc()
        counter.labels("S").inc(4)
        counter.labels(table="R").inc()
        assert counter.labels("R").value == 2
        assert counter.labels("S").value == 4
        assert counter.value == 6

    def test_unlabeled_use_of_labeled_family_raises(self):
        registry = Registry()
        counter = registry.counter("repro_x_total", "", labelnames=("t",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.labels("a", "b")

    def test_get_or_create_is_idempotent(self):
        registry = Registry()
        first = registry.counter("repro_same_total", "h", ("a",))
        second = registry.counter("repro_same_total", "h", ("a",))
        assert first is second

    def test_get_or_create_rejects_kind_and_label_mismatch(self):
        registry = Registry()
        registry.counter("repro_kind_total", "", ("a",))
        with pytest.raises(ValueError):
            registry.gauge("repro_kind_total", "", ("a",))
        with pytest.raises(ValueError):
            registry.counter("repro_kind_total", "", ("b",))

    def test_invalid_metric_name_rejected(self):
        registry = Registry()
        for bad in ("", "9leading", "has space", "has-dash"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_histogram_buckets_partition_observations(self):
        registry = Registry()
        histogram = registry.histogram(
            "repro_lat_seconds", "", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.labels().snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}

    def test_histogram_needs_buckets(self):
        registry = Registry()
        with pytest.raises(ValueError):
            registry.histogram("repro_empty_seconds", buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestCollectors:
    def test_collector_samples_appear_in_snapshot(self):
        registry = Registry()
        registry.register_collector(
            lambda: [
                Sample("repro_pull_total", {"t": "R"}, 7.0, "counter", "x")
            ]
        )
        snap = registry.snapshot()
        assert snap["repro_pull_total"]["samples"] == [
            {"labels": {"t": "R"}, "value": 7.0}
        ]
        assert snap["repro_pull_total"]["kind"] == "counter"

    def test_unregister_thunk_removes_collector(self):
        registry = Registry()
        unregister = registry.register_collector(
            lambda: [Sample("repro_gone_total", {}, 1.0)]
        )
        unregister()
        assert "repro_gone_total" not in registry.snapshot()
        unregister()  # idempotent

    def test_raising_collector_is_skipped_not_fatal(self):
        registry = Registry()

        def boom():
            raise RuntimeError("scrape me not")

        registry.register_collector(boom)
        registry.counter("repro_alive_total").inc()
        snap = registry.snapshot()
        assert snap["repro_alive_total"]["samples"][0]["value"] == 1.0


class TestFallbackLog:
    def test_record_fallback_logs_and_counts(self):
        registry = Registry()
        registry.record_fallback(
            fingerprint="abc123",
            operator="NestedLoopJoin",
            table="R",
            cause="delta propagation failed: full-flagged",
            delta_shape="full",
        )
        (record,) = registry.fallbacks()
        assert record.fingerprint == "abc123"
        assert record.operator == "NestedLoopJoin"
        assert record.table == "R"
        assert record.delta_shape == "full"
        snap = registry.snapshot()
        (sample,) = snap[Registry.FALLBACK_METRIC]["samples"]
        assert sample["labels"] == {
            "fingerprint": "abc123",
            "operator": "NestedLoopJoin",
            "table": "R",
        }
        assert sample["value"] == 1.0

    def test_fallback_log_is_bounded(self):
        registry = Registry()
        for index in range(Registry.MAX_FALLBACKS + 10):
            registry.record_fallback(
                fingerprint=f"fp{index}", operator="Op", table="T",
                cause="c",
            )
        records = registry.fallbacks()
        assert len(records) == Registry.MAX_FALLBACKS
        assert records[0].fingerprint == "fp10"  # oldest were evicted

    def test_overflow_is_counted_not_silent(self):
        # 300 records into a 256-slot log: 256 kept, 44 drops counted.
        registry = Registry()
        assert Registry.MAX_FALLBACKS == 256
        for index in range(300):
            registry.record_fallback(
                fingerprint=f"fp{index}", operator="Op", table="T",
                cause="c",
            )
        assert len(registry.fallbacks()) == 256
        assert registry.fallbacks_dropped == 44
        snap = registry.snapshot()
        (sample,) = snap[Registry.FALLBACK_DROPPED_METRIC]["samples"]
        assert sample["value"] == 44.0

    def test_no_overflow_means_no_drop_series(self):
        # The drop counter materializes lazily: a registry that never
        # overflowed keeps rendering exactly what it did before.
        registry = Registry()
        registry.record_fallback(
            fingerprint="fp", operator="Op", table="T", cause="c"
        )
        assert registry.fallbacks_dropped == 0
        assert Registry.FALLBACK_DROPPED_METRIC not in registry.snapshot()


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        registry = Registry()
        hist = registry.histogram("repro_q_empty_seconds", buckets=(0.1, 1.0))
        assert math.isnan(hist.quantile(0.5))
        hist.labels()  # even with a child, zero observations stay nan
        assert math.isnan(hist.quantile(0.99))

    def test_interpolates_within_bucket(self):
        registry = Registry()
        hist = registry.histogram("repro_q_one_seconds", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(0.5)
        # All mass in (0, 1]: rank q*10 interpolates linearly to q*1.0.
        assert hist.quantile(0.5) == pytest.approx(0.5)
        assert hist.quantile(1.0) == pytest.approx(1.0)

    def test_interpolates_across_buckets(self):
        registry = Registry()
        hist = registry.histogram(
            "repro_q_multi_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 0.5, 1.5, 1.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            hist.observe(value)
        # Counts 2/4/4; p50 rank 5 lands 3/4 into (1, 2] → 1.75.
        assert hist.quantile(0.5) == pytest.approx(1.75)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        registry = Registry()
        hist = registry.histogram("repro_q_inf_seconds", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_family_quantile_merges_labeled_children(self):
        registry = Registry()
        hist = registry.histogram(
            "repro_q_labeled_seconds", "", ("sub",), buckets=(1.0, 2.0)
        )
        hist.labels("a").observe(0.5)
        hist.labels("a").observe(0.5)
        hist.labels("b").observe(1.5)
        hist.labels("b").observe(1.5)
        # Per-child p100 stays within each child's own bucket...
        assert hist.labels("a").quantile(1.0) <= 1.0
        # ...while the family-level estimate sees all four observations.
        assert hist.quantile(1.0) == pytest.approx(2.0)
        assert hist.quantile(0.25) == pytest.approx(0.5)

    def test_quantile_rejects_out_of_range(self):
        registry = Registry()
        hist = registry.histogram("repro_q_range_seconds", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.labels().quantile(-0.1)


class TestRendering:
    def _populated(self):
        registry = Registry()
        registry.counter(
            "repro_live_events_total", "Change events", ("table",)
        ).labels('we"ird\ntable\\').inc(3)
        registry.gauge("repro_live_dirty_plans", "Dirty plans").set(2)
        registry.histogram(
            "repro_flush_seconds", "Flush latency", buckets=(0.1, 1.0)
        ).observe(0.05)
        registry.register_collector(
            lambda: [
                Sample(
                    "repro_store_snapshots_taken_total", {}, 5.0,
                    "counter", "Snapshots",
                )
            ]
        )
        return registry

    def test_render_prometheus_validates(self):
        text = self._populated().render_prometheus()
        assert validate_prometheus_text(text) >= 6
        assert "# TYPE repro_live_events_total counter" in text
        assert "# HELP repro_live_events_total Change events" in text
        assert 'le="+Inf"' in text

    def test_label_escaping_round_trips(self):
        text = self._populated().render_prometheus()
        assert 'table="we\\"ird\\ntable\\\\"' in text

    def test_render_json_round_trips(self):
        registry = self._populated()
        data = json.loads(registry.render_json())
        assert data == registry.snapshot()
        assert data["repro_live_events_total"]["kind"] == "counter"
        histogram = data["repro_flush_seconds"]["samples"][0]["value"]
        assert histogram["count"] == 1

    def test_empty_registry_renders_empty_string(self):
        assert Registry().render_prometheus() == ""

    def test_infinite_values_render(self):
        registry = Registry()
        registry.gauge("repro_inf").set(math.inf)
        text = registry.render_prometheus()
        assert "repro_inf +Inf" in text
        validate_prometheus_text(text)


class TestPromtextValidator:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("this is not prometheus\n")

    def test_rejects_empty_exposition(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("")

    def test_rejects_duplicate_type_lines(self):
        text = (
            "# TYPE repro_x counter\nrepro_x 1\n"
            "# TYPE repro_x counter\nrepro_x 2\n"
        )
        with pytest.raises(ValueError):
            validate_prometheus_text(text)

    def test_rejects_bare_histogram_sample(self):
        text = "# TYPE repro_h histogram\nrepro_h 1\n"
        with pytest.raises(ValueError):
            validate_prometheus_text(text)

    def test_accepts_well_formed_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1.5\n"
            "repro_h_count 2\n"
        )
        assert validate_prometheus_text(text) == 4
