"""EXPLAIN ANALYZE on live plans and the fallback telemetry."""

import json

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import scan
from repro.errors import QueryError
from repro.live import LiveSession
from repro.obs.explain import format_bytes, format_seconds, render_explain_analyze
from repro.obs.promtext import validate_prometheus_text
from repro.relational.predicates import col
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _database():
    db = Database("obs")
    r = db.create_table("R", Schema.of("K", ("VT", "interval")))
    s = db.create_table("S", Schema.of("K", ("VT", "interval")))
    for k in range(4):
        r.insert(k % 2, until_now(d(1, 1 + k)))
        s.insert(k % 2, fixed_interval(d(1, 1), d(9, 1)))
    return db


def _joined_aggregated_plan():
    return (
        scan("R")
        .join(
            scan("S"),
            on=col("R.K") == col("S.K"),
            left_name="R",
            right_name="S",
        )
        .group_by(("R.K",), "count", output_name="N")
    )


class TestFormatters:
    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(1536) == "1.5KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500s"
        assert format_seconds(0.0025) == "2.50ms"
        assert format_seconds(0.0000325) == "32.5µs"


class TestSubscriptionExplainAnalyze:
    def test_live_joined_aggregated_plan_shows_per_operator_counters(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_joined_aggregated_plan())
        db.table("R").insert(0, until_now(d(2, 1)))
        session.flush()
        text = sub.explain_analyze()
        # Header: totals of the maintainer.
        assert f"fingerprint={sub.fingerprint[:12]}" in text
        assert "delta_refreshes=1" in text
        assert "full_refreshes=1" in text  # the subscribe-time evaluation
        # One annotated line per physical operator, tree-indented.
        assert "Aggregate" in text
        assert "Join" in text
        assert "SeqScan R" in text and "SeqScan S" in text
        for fragment in (
            "rows=", "bytes=", "applies=", "time=", "Δin=", "Δout=",
            "fallbacks=",
        ):
            assert fragment in text
        # The delta actually flowed through the touched operators.
        report = sub.node_report()
        by_operator = {entry["operator"]: entry for entry in report}
        assert by_operator["AggregateOp"]["applies"] == 1
        assert by_operator["AggregateOp"]["apply_seconds"] > 0
        assert by_operator["AggregateOp"]["state_rows"] > 0
        assert by_operator["AggregateOp"]["state_bytes"] > 0
        scans = [e for e in report if e["operator"] == "SeqScan"]
        assert sum(e["applies"] for e in scans) == 1  # only R was touched
        session.close()

    def test_closed_subscription_raises(self):
        session = LiveSession(_database())
        sub = session.subscribe(scan("R"))
        sub.close()
        with pytest.raises(QueryError, match="closed"):
            sub.explain_analyze()
        session.close()

    def test_per_operator_metrics_reach_the_registry(self):
        db = _database()
        session = LiveSession(db)
        session.subscribe(_joined_aggregated_plan())
        db.table("R").insert(1, until_now(d(2, 2)))
        session.flush()
        text = session.metrics.render_prometheus()
        validate_prometheus_text(text)
        assert 'operator="AggregateOp"' in text
        assert "repro_delta_apply_seconds_total" in text
        assert "repro_operator_state_rows" in text
        assert "repro_operator_state_bytes" in text
        assert "repro_operator_fallbacks_total" in text
        snapshot = session.metrics.snapshot()
        labels = {
            sample["labels"]["path"]
            for sample in snapshot["repro_delta_applies_total"]["samples"]
        }
        assert "0" in labels  # stable tree paths as labels
        session.close()


class TestDatabaseExplainAnalyze:
    def test_accepts_sql(self):
        db = _database()
        text = db.explain_analyze("SELECT K FROM R")
        assert text.startswith("EXPLAIN ANALYZE SELECT K FROM R")
        assert "SeqScan R" in text
        assert "rows=" in text and "bytes=" in text

    def test_accepts_plan_nodes(self):
        db = _database()
        text = db.explain_analyze(_joined_aggregated_plan())
        assert "Aggregate" in text
        assert "Join" in text


class TestFallbackTelemetry:
    def test_fallback_records_carry_fingerprint_operator_table(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(scan("R"))
        # A full-flagged delta (replace_all without a row delta) forces
        # the logged fallback path.
        db.table("R").replace_all(db.table("R").rows())
        session.flush()
        records = session.metrics.fallbacks()
        assert records, "full-flagged delta must record a fallback"
        record = records[-1]
        assert record.fingerprint == sub.fingerprint
        assert record.table == "R"
        assert record.delta_shape == "full"
        assert record.operator  # never empty — "(plan)" when unattributed
        text = session.metrics.render_prometheus()
        assert "repro_delta_fallbacks_total" in text
        assert f'fingerprint="{sub.fingerprint}"' in text
        assert 'table="R"' in text
        validate_prometheus_text(text)
        session.close()

    def test_stats_agree_with_fallback_counter(self):
        db = _database()
        session = LiveSession(db)
        session.subscribe(scan("R"))
        for _ in range(3):
            db.table("R").replace_all(db.table("R").rows())
            session.flush()
        snapshot = session.metrics.snapshot()
        total = sum(
            sample["value"]
            for sample in snapshot["repro_delta_fallbacks_total"]["samples"]
        )
        assert total == len(session.metrics.fallbacks()) == 3
        session.close()


class TestRenderer:
    def test_cold_report_renders_reason(self):
        text = render_explain_analyze(
            [],
            label="plan abc",
            fingerprint="abcdef012345",
            totals={"evaluations": 4, "state_bytes": 0},
            cold_reason="operator state evicted by the memory budget",
        )
        assert "no warm operator state" in text
        assert "evicted by the memory budget" in text
        assert "evaluations=4" in text

    def test_shared_registry_can_serve_two_sessions(self):
        from repro.obs.registry import Registry

        registry = Registry()
        db_a, db_b = _database(), _database()
        session_a = LiveSession(db_a, registry=registry)
        session_b = LiveSession(db_b, registry=registry)
        session_a.subscribe(scan("R"))
        session_b.subscribe(scan("S"))
        db_a.table("R").insert(9, until_now(d(3, 1)))
        db_b.table("S").insert(9, until_now(d(3, 1)))
        session_a.flush()
        session_b.flush()
        snapshot = registry.snapshot()
        events = snapshot["repro_live_events_total"]["samples"]
        assert sum(s["value"] for s in events) == 2  # both sessions report
        session_a.close()
        session_b.close()
        # Closed sessions unregistered their collectors.
        assert registry.snapshot().get("repro_live_events_total") is None


class TestSessionTraceOption:
    def test_trace_true_records_full_pipeline(self):
        db = _database()
        session = LiveSession(db, trace=True)
        session.subscribe(_joined_aggregated_plan())
        db.table("R").insert(0, until_now(d(2, 1)))
        session.flush()
        names = {event["name"] for event in session.tracer.events()}
        assert {"write", "flush", "refresh", "store-commit"} <= names
        assert any(name.startswith("apply:") for name in names)
        data = json.loads(session.tracer.dump_json())
        assert any(e["ph"] == "X" for e in data["traceEvents"])
        session.close()

    def test_trace_off_by_default(self):
        session = LiveSession(_database())
        assert session.tracer is None
        session.subscribe(scan("R"))
        session.close()

    def test_trace_accepts_capacity_and_recorder(self):
        from repro.obs.trace import TraceRecorder

        session = LiveSession(_database(), trace=128)
        assert session.tracer.capacity == 128
        session.close()
        recorder = TraceRecorder(capacity=16)
        session = LiveSession(_database(), trace=recorder)
        assert session.tracer is recorder
        session.close()
