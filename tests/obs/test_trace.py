"""The span recorder and its Chrome trace-event export."""

import json
import threading
import time

import pytest

from repro.obs.trace import NULL_TRACER, TraceRecorder


class TestRecording:
    def test_span_records_on_exit(self):
        tracer = TraceRecorder()
        with tracer.span("flush", fingerprint="abc"):
            time.sleep(0.001)
        (event,) = tracer.events()
        assert event["name"] == "flush"
        assert event["duration"] >= 0.001
        assert event["args"] == {"fingerprint": "abc"}
        assert event["thread_id"] == threading.get_ident()

    def test_span_records_even_on_exception(self):
        tracer = TraceRecorder()
        with pytest.raises(RuntimeError):
            with tracer.span("refresh"):
                raise RuntimeError("boom")
        assert len(tracer) == 1

    def test_add_records_pretimed_events(self):
        tracer = TraceRecorder()
        started = time.perf_counter()
        tracer.add("apply:FilterOp", started, 0.002, path="0.1", rows_in=3)
        (event,) = tracer.events()
        assert event["name"] == "apply:FilterOp"
        assert event["duration"] == pytest.approx(0.002)
        assert event["args"] == {"path": "0.1", "rows_in": 3}

    def test_ring_buffer_keeps_newest(self):
        tracer = TraceRecorder(capacity=4)
        for index in range(10):
            tracer.add(f"e{index}", 0.0, 0.0)
        names = [event["name"] for event in tracer.events()]
        assert names == ["e6", "e7", "e8", "e9"]

    def test_disabled_recorder_records_nothing(self):
        tracer = TraceRecorder(enabled=False)
        with tracer.span("flush"):
            pass
        tracer.add("x", 0.0, 0.0)
        assert len(tracer) == 0
        assert tracer.events() == []

    def test_disabled_span_is_shared_noop(self):
        tracer = TraceRecorder(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x"):
            pass
        assert len(NULL_TRACER) == 0

    def test_clear_and_capacity_validation(self):
        tracer = TraceRecorder()
        tracer.add("x", 0.0, 0.0)
        tracer.clear()
        assert len(tracer) == 0
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestChromeExport:
    def _traced(self):
        tracer = TraceRecorder()
        with tracer.span("flush", plans=2):
            with tracer.span("refresh", fingerprint="abc", tables={"R"}):
                pass
        return tracer

    def test_round_trips_through_json(self):
        tracer = self._traced()
        data = json.loads(tracer.dump_json())
        assert data["displayTimeUnit"] == "ms"
        assert data == tracer.to_chrome()

    def test_complete_events_have_chrome_fields(self):
        data = self._traced().to_chrome()
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"flush", "refresh"}
        for event in complete:
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_thread_metadata_emitted_once_per_thread(self):
        tracer = TraceRecorder()
        tracer.add("a", 0.0, 0.0)
        tracer.add("b", 0.0, 0.0)

        def other():
            tracer.add("c", 0.0, 0.0)

        thread = threading.Thread(target=other, name="other-thread")
        thread.start()
        thread.join()
        metadata = [
            e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "M"
        ]
        assert len(metadata) == 2
        assert {m["args"]["name"] for m in metadata} >= {"other-thread"}

    def test_exotic_args_become_json_safe(self):
        tracer = TraceRecorder()
        tracer.add(
            "x", 0.0, 0.0,
            tables=frozenset({"S", "R"}),
            shape=(1, 2),
            obj=object(),
        )
        data = json.loads(tracer.dump_json())
        (event,) = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["tables"] == ["R", "S"]
        assert event["args"]["shape"] == [1, 2]
        assert isinstance(event["args"]["obj"], str)

    def test_dump_json_writes_file(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().dump_json(str(path))
        data = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in data["traceEvents"])
