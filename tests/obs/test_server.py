"""The live HTTP scrape surface: every endpoint over a real session."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.engine.modifications import current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.obs.promtext import validate_prometheus_text
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObsServer
from repro.obs.slo import FreshnessSLO
from repro.relational.schema import Schema


def _get(url):
    """(status, content_type, body) — errors returned, not raised."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (
                response.status,
                response.headers["Content-Type"],
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.headers["Content-Type"],
            error.read().decode("utf-8"),
        )


@pytest.fixture
def session():
    db = Database("obs-server")
    db.create_table("T", Schema.of("K", ("VT", "interval")))
    db.table("T").insert(1, until_now(5))
    session = LiveSession(db, delivery_workers=2)
    received = []
    session.subscribe(
        scan("T"), on_refresh=received.append, name="watcher"
    )
    current_insert(db.table("T"), (2,), at=100)
    session.flush()
    assert session.bus.drain(timeout=10)
    yield session
    session.close()


class TestEndpoints:
    def test_metrics_is_valid_prometheus_text(self, session):
        with ObsServer(session) as obs:
            status, content_type, body = _get(obs.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        validate_prometheus_text(body)
        assert "repro_freshness_seconds_bucket" in body
        assert "repro_subscription_staleness_seconds" in body
        assert "repro_live_events_total" in body

    def test_metrics_json_round_trips(self, session):
        with ObsServer(session) as obs:
            status, content_type, body = _get(obs.url + "/metrics.json")
        assert status == 200
        assert content_type == "application/json"
        snapshot = json.loads(body)
        assert "repro_live_events_total" in snapshot

    def test_health_without_slo_is_ok(self, session):
        with ObsServer(session) as obs:
            status, _, body = _get(obs.url + "/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["slo"] is None
        assert health["staleness_seconds"] == {"watcher": 0.0}
        assert health["freshness"]["p99"] is not None

    def test_health_degrades_to_503_when_budget_burns(self, session):
        slo = FreshnessSLO(0.001, objective=0.5, window=2)
        session.freshness_slo = slo
        for _ in range(2):
            slo.observe(1.0)  # burn = 2.0
        with ObsServer(session) as obs:
            status, _, body = _get(obs.url + "/health")
        assert status == 503
        health = json.loads(body)
        assert health["status"] == "degraded"
        assert health["slo"]["error_budget_burn"] == pytest.approx(2.0)
        assert health["slo"]["healthy"] is False

    def test_subscriptions_reports_delivery_counters(self, session):
        with ObsServer(session) as obs:
            status, _, body = _get(obs.url + "/subscriptions")
        assert status == 200
        (entry,) = json.loads(body)
        assert entry["name"] == "watcher"
        assert entry["active"] is True
        assert entry["refreshes"] == 1
        assert entry["notifications"] == 1
        assert entry["staleness_seconds"] == 0.0

    def test_explain_text_and_json_by_prefix(self, session):
        fingerprint = session.subscriptions[0].fingerprint
        with ObsServer(session) as obs:
            status, content_type, body = _get(
                obs.url + f"/explain/{fingerprint[:8]}"
            )
            assert status == 200
            assert content_type.startswith("text/plain")
            assert "EXPLAIN ANALYZE" in body
            status, content_type, body = _get(
                obs.url + f"/explain/{fingerprint[:8]}?format=json"
            )
        assert status == 200
        assert content_type == "application/json"
        (report,) = json.loads(body)
        assert report["fingerprint"] == fingerprint
        assert report["totals"]["evaluations"] >= 1
        assert isinstance(report["nodes"], list)

    def test_explain_unknown_prefix_is_404(self, session):
        with ObsServer(session) as obs:
            status, _, body = _get(obs.url + "/explain/deadbeef")
        assert status == 404
        assert "no shared result" in json.loads(body)["error"]

    def test_explain_bad_format_is_400(self, session):
        with ObsServer(session) as obs:
            status, _, _ = _get(obs.url + "/explain?format=xml")
        assert status == 400

    def test_unknown_path_is_404_with_directory(self, session):
        with ObsServer(session) as obs:
            status, _, body = _get(obs.url + "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]


class TestLifecycle:
    def test_port_zero_binds_ephemeral(self, session):
        with ObsServer(session) as obs:
            assert obs.port > 0
            assert obs.url.startswith("http://127.0.0.1:")

    def test_close_is_idempotent_and_releases_port(self, session):
        obs = ObsServer(session).start()
        url = obs.url
        obs.close()
        obs.close()  # idempotent
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(url + "/metrics", timeout=2)

    def test_address_before_start_raises(self, session):
        obs = ObsServer(session)
        with pytest.raises(RuntimeError):
            obs.port  # noqa: B018 — the property raises

    def test_start_is_idempotent(self, session):
        obs = ObsServer(session).start()
        try:
            assert obs.start() is obs
        finally:
            obs.close()

    def test_concurrent_scrapes_under_writes(self, session):
        import threading

        db = session.database
        errors = []

        def scrape(url):
            for _ in range(10):
                status, _, body = _get(url + "/metrics")
                if status != 200:
                    errors.append(status)
                    return
                try:
                    validate_prometheus_text(body)
                except Exception as exc:  # noqa: BLE001 — collected
                    errors.append(exc)
                    return

        with ObsServer(session) as obs:
            threads = [
                threading.Thread(target=scrape, args=(obs.url,))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for offset in range(20):
                current_insert(db.table("T"), (offset,), at=200 + offset)
                session.flush()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
        assert not errors
