"""Freshness SLOs: the error-budget math and its serve-loop coupling."""

import pytest

from repro.engine.database import Database
from repro.live import LiveSession
from repro.obs.slo import FreshnessSLO
from repro.relational.schema import Schema


class TestBudgetMath:
    def test_empty_window_is_healthy(self):
        slo = FreshnessSLO(0.1)
        assert slo.compliance() == 1.0
        assert slo.error_budget_burn() == 0.0
        assert slo.healthy()

    def test_validation(self):
        with pytest.raises(ValueError):
            FreshnessSLO(0.0)
        with pytest.raises(ValueError):
            FreshnessSLO(0.1, objective=1.0)
        with pytest.raises(ValueError):
            FreshnessSLO(0.1, objective=0.0)
        with pytest.raises(ValueError):
            FreshnessSLO(0.1, window=0)

    def test_compliance_counts_violations(self):
        slo = FreshnessSLO(0.1, objective=0.9, window=10)
        for _ in range(9):
            slo.observe(0.05)  # within target
        slo.observe(0.5)  # one violation: exactly at the 10% budget
        assert slo.compliance() == pytest.approx(0.9)
        assert slo.error_budget_burn() == pytest.approx(1.0)
        assert slo.healthy()  # burn == 1.0 is *at* budget, not over
        slo.observe(0.5)  # second violation evicts a compliant one
        assert slo.error_budget_burn() == pytest.approx(2.0)
        assert not slo.healthy()

    def test_window_eviction_forgets_old_violations(self):
        slo = FreshnessSLO(0.1, objective=0.5, window=4)
        for _ in range(4):
            slo.observe(1.0)  # all violations
        assert slo.error_budget_burn() == pytest.approx(2.0)
        for _ in range(4):
            slo.observe(0.01)  # window rolls over entirely
        assert slo.compliance() == 1.0
        assert slo.healthy()

    def test_boundary_is_compliant(self):
        slo = FreshnessSLO(0.1, window=4)
        slo.observe(0.1)  # exactly the target: meets it
        assert slo.compliance() == 1.0

    def test_snapshot_carries_totals_across_eviction(self):
        slo = FreshnessSLO(0.1, objective=0.5, window=2)
        for _ in range(5):
            slo.observe(1.0)
        snap = slo.snapshot()
        assert snap["window_filled"] == 2
        assert snap["window_violations"] == 2
        assert snap["observed_total"] == 5
        assert snap["violated_total"] == 5
        assert snap["healthy"] is False
        assert snap["error_budget_burn"] == pytest.approx(2.0)


class TestServeLoopCoupling:
    """A burning budget tightens the adaptive debounce toward its floor."""

    def _session(self, slo):
        db = Database("slo-debounce")
        db.create_table("T", Schema.of("K", ("VT", "interval")))
        return LiveSession(db, freshness_slo=slo)

    def test_burning_budget_tightens_band_window(self):
        slo = FreshnessSLO(0.001, objective=0.5, window=4)
        session = self._session(slo)
        try:
            session.serve(debounce_min=0.001, debounce_max=0.1)
            saturated = session._debounce_scale()
            relaxed = session._debounce_for_depth(saturated)
            assert relaxed == pytest.approx(0.1)
            for _ in range(4):
                slo.observe(1.0)  # burn = 2.0
            tightened = session._debounce_for_depth(saturated)
            # window = low + (high - low) / burn
            assert tightened == pytest.approx(0.001 + (0.1 - 0.001) / 2.0)
            assert tightened < relaxed
        finally:
            session.close()

    def test_healthy_budget_leaves_band_untouched(self):
        slo = FreshnessSLO(10.0, window=4)
        session = self._session(slo)
        try:
            session.serve(debounce_min=0.001, debounce_max=0.1)
            for _ in range(4):
                slo.observe(0.001)
            saturated = session._debounce_scale()
            assert session._debounce_for_depth(saturated) == pytest.approx(0.1)
        finally:
            session.close()

    def test_fixed_debounce_ignores_slo(self):
        slo = FreshnessSLO(0.001, objective=0.5, window=2)
        session = self._session(slo)
        try:
            session.serve(debounce=0.02)
            for _ in range(2):
                slo.observe(1.0)
            assert session.current_debounce() == pytest.approx(0.02)
        finally:
            session.close()
