"""Metric correctness under concurrency.

The registry must not lose increments under thread contention, and the
collector-backed session metrics must equal the ground-truth event counts
after a writer/subscriber churn — not merely be "close".
"""

import threading

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.engine.modifications import current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.obs.registry import Registry
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _total(snapshot, name):
    family = snapshot.get(name)
    if family is None:
        return 0.0
    return sum(sample["value"] for sample in family["samples"])


class TestRegistryPrimitives:
    N_THREADS = 8
    INCS_PER_THREAD = 10_000

    def test_counter_increments_are_not_lost(self):
        registry = Registry()
        counter = registry.counter("repro_contended_total")
        barrier = threading.Barrier(self.N_THREADS)

        def hammer():
            barrier.wait()
            for _ in range(self.INCS_PER_THREAD):
                counter.inc()

        threads = [
            threading.Thread(target=hammer) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert counter.value == self.N_THREADS * self.INCS_PER_THREAD

    def test_labeled_children_are_exact_under_contention(self):
        registry = Registry()
        counter = registry.counter("repro_labeled_total", "", ("table",))
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(label):
            barrier.wait()
            for _ in range(self.INCS_PER_THREAD):
                counter.labels(label).inc()

        threads = [
            threading.Thread(target=hammer, args=(f"t{index % 2}",))
            for index in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert counter.labels("t0").value == 4 * self.INCS_PER_THREAD
        assert counter.labels("t1").value == 4 * self.INCS_PER_THREAD
        assert counter.value == self.N_THREADS * self.INCS_PER_THREAD


class TestChurnGroundTruth:
    """8 writers × 32 subscribers; counters equal ground-truth counts."""

    N_WRITERS = 8
    N_SUBSCRIBERS = 32
    WRITES_PER_WRITER = 40

    def _database(self):
        db = Database("metrics-churn")
        r = db.create_table("R", Schema.of("K", ("VT", "interval")))
        s = db.create_table("S", Schema.of("K", ("VT", "interval")))
        for i in range(24):
            r.insert(i % 6, until_now(i % 10))
            s.insert(i % 6, until_now(i % 10 + 1))
        return db

    def _plans(self):
        return [
            scan("R").where(col("K") == lit(1)),
            scan("R").select_columns("K"),
            scan("R").join(
                scan("S"),
                on=col("R.K") == col("S.K"),
                left_name="R",
                right_name="S",
            ),
            scan("R").union(scan("S")),
        ]

    def test_registry_totals_equal_ground_truth(self):
        db = self._database()
        session = LiveSession(
            db,
            delivery_workers=4,
            flush_shards=4,
            backpressure="block",
            queue_capacity=256,
        )
        plans = self._plans()
        subscriptions = [
            session.subscribe(
                plans[index % len(plans)],
                on_refresh=lambda event: None,
                name=f"churn-{index}",
            )
            for index in range(self.N_SUBSCRIBERS)
        ]
        session.serve(debounce=0.001)

        # current_insert only: every write is exactly one change event.
        def writer(seed: int) -> None:
            for i in range(self.WRITES_PER_WRITER):
                key = (seed + i) % 6
                at = 100 + seed * self.WRITES_PER_WRITER + i
                table = "R" if i % 2 == 0 else "S"
                current_insert(db.table(table), (key,), at=at)

        threads = [
            threading.Thread(target=writer, args=(seed,))
            for seed in range(self.N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "writer thread hung"
        session.stop_serving()
        session.flush()
        assert session.bus.drain(timeout=30)

        snapshot = session.metrics.snapshot()
        ground_truth_events = self.N_WRITERS * self.WRITES_PER_WRITER
        assert _total(snapshot, "repro_live_events_total") == (
            ground_truth_events
        )
        # The registry series must equal the stats() values under the
        # same canonical names — one snapshot, no drift between the two
        # surfaces.
        stats = session.stats()
        for name in (
            "repro_live_events_total",
            "repro_live_flushes_total",
            "repro_live_delta_refreshes_total",
            "repro_live_refresh_errors_total",
            "repro_serve_queued_notifications_total",
            "repro_serve_delivered_notifications_total",
            "repro_serve_dropped_notifications_total",
        ):
            assert _total(snapshot, name) == stats[name], name
        assert stats["repro_live_refresh_errors_total"] == 0
        assert stats["repro_serve_dropped_notifications_total"] == 0
        # Lossless pipeline: everything queued was delivered.
        assert _total(
            snapshot, "repro_serve_delivered_notifications_total"
        ) == _total(snapshot, "repro_serve_queued_notifications_total")
        assert _total(snapshot, "repro_serve_delivery_backlog") == 0
        # Per-shard flushes sum to at least the number of flush rounds.
        assert _total(
            snapshot, "repro_serve_shard_flushes_total"
        ) >= stats["repro_live_flushes_total"]
        assert _total(snapshot, "repro_live_subscriptions") == (
            self.N_SUBSCRIBERS
        )
        # Freshness accounting is exact: one histogram observation per
        # completed delivery — every delivered notification carried its
        # oldest coalesced commit stamp through the whole pipeline.
        freshness = snapshot["repro_freshness_seconds"]
        freshness_count = sum(
            sample["value"]["count"] for sample in freshness["samples"]
        )
        assert freshness_count == stats[
            "repro_serve_delivered_notifications_total"
        ]
        observed_subscriptions = {
            sample["labels"]["subscription"]
            for sample in freshness["samples"]
        }
        assert observed_subscriptions <= {
            f"churn-{index}" for index in range(self.N_SUBSCRIBERS)
        }
        # Drained pipeline: no commit is pending anywhere, so every
        # staleness gauge is back to zero.
        staleness = session.subscription_staleness()
        assert set(staleness) == {
            f"churn-{index}" for index in range(self.N_SUBSCRIBERS)
        }
        assert all(age == 0.0 for age in staleness.values()), staleness
        staleness_samples = snapshot[
            "repro_subscription_staleness_seconds"
        ]["samples"]
        assert len(staleness_samples) == self.N_SUBSCRIBERS
        assert all(
            sample["value"] == 0.0 for sample in staleness_samples
        )
        for subscription in subscriptions:
            subscription.close()
        session.close()
