"""The acceptance gate: kill -9 a writer mid-burst, reopen, compare.

A child process opens a durable database, attaches a live SQL
subscription whose delivery worker is deliberately stuck (so a
notification stays queued across the checkpoint), then inserts one row
per batch in a tight loop, acknowledging each committed batch on
stdout.  The parent SIGKILLs it between two acknowledgements, reopens
the directory, and asserts:

* the recovered table is an exact prefix of the child's inserts —
  every WAL record applied all-or-nothing, never a torn half-batch;
* under ``fsync="always"`` every acknowledged batch survived;
* the live subscription resumed with its pending notification
  re-enqueued exactly once and a result identical to re-evaluating
  the recovered table from scratch.
"""

import sys
import textwrap

import pytest

from repro.durable import faults
from repro.engine.database import Database
from repro.engine.storage import pack_tuple

CHILD = textwrap.dedent(
    """
    import sys
    import threading

    from repro.core.interval import until_now
    from repro.engine.database import Database

    path, fsync = sys.argv[1], sys.argv[2]
    db = Database.open(path, fsync=fsync, sync_every=1)
    table = db.create_table("R", __import__(
        "repro.relational.schema", fromlist=["Schema"]
    ).Schema.of("K", ("VT", "interval")))

    stuck = threading.Event()

    def listener(event):
        stuck.wait(timeout=120)  # block forever; keeps later items queued

    session = db.live_session(delivery_workers=1)
    session.subscribe_sql(
        "SELECT * FROM R",
        on_refresh=listener,
        name="crash-sub",
        backpressure="coalesce",
    )
    for key in (1, 2):
        table.insert(key, until_now(key + 10))
        session.flush()
    db.checkpoint()
    print("CKPT", flush=True)
    key = 2
    while True:
        key += 1
        table.insert(key, until_now(key + 10))
        session.flush()
        print(f"ACK {key}", flush=True)
    """
)


def _packed(rows):
    return sorted(pack_tuple(row) for row in rows)


@pytest.mark.timeout(120)
@pytest.mark.parametrize("fsync", ["always", "batch", "off"])
def test_kill_nine_mid_burst_recovers_consistently(tmp_path, fsync):
    script = tmp_path / "writer.py"
    script.write_text(CHILD)
    root = tmp_path / "db"
    result = faults.run_until_marker_then_kill(
        [sys.executable, str(script), str(root), fsync],
        marker="ACK",
        count=30,
        timeout=90.0,
        env={"PYTHONPATH": "src"},
        cwd="/root/repo",
    )
    assert result.killed, f"child exited on its own: {result.lines[-5:]}"
    assert result.returncode == -9
    assert result.markers_seen >= 30
    acked = max(
        int(line.split()[1]) for line in result.lines if line.startswith("ACK")
    )

    received = []
    db = Database.open(
        root,
        fsync=fsync,
        session={"delivery_workers": 0},
        on_refresh={"crash-sub": received.append},
    )
    try:
        keys = sorted(row.values[0] for row in db.table("R").rows())
        # All-or-nothing per record: the survivors are a dense prefix.
        assert keys == list(range(1, len(keys) + 1))
        # The checkpoint published before any ACK; batches 1-2 are durable
        # under every policy.
        assert len(keys) >= 2
        if fsync == "always":
            # Strictest policy: an acknowledged batch can never be lost.
            assert len(keys) >= acked
        report = db._durability.last_recovery
        assert report.resumed_subscriptions == 1
        # The stuck worker left exactly one coalesced notification queued
        # at checkpoint time; resume re-enqueues it exactly once.  The
        # suffix-replay flush may add one more delivery.
        assert db._durability.reenqueued_notifications == 1
        assert 1 <= len(received) <= 2
        resumed = db._live_session.subscriptions
        assert [s.name for s in resumed] == ["crash-sub"]
        # Byte-identical to evaluating SELECT * FROM R from scratch.
        assert _packed(resumed[0].result.tuples) == _packed(
            db.table("R").rows()
        )
    finally:
        db.close()
