"""Unit tests for atomic checkpoints (heaps, manifest, capture, crashes)."""

import pytest

from repro.core.interval import until_now
from repro.durable import faults
from repro.durable.snapshot import (
    _read_heap,
    _write_heap,
    capture_subscriptions,
    load_latest_checkpoint,
    prune_checkpoints,
    serialize_notification,
    write_checkpoint,
)
from repro.durable.wal import WalPosition
from repro.engine.database import Database
from repro.engine.delta import Delta
from repro.engine.storage import pack_tuple
from repro.errors import DurabilityError
from repro.live.events import RefreshNotification
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


@pytest.fixture(autouse=True)
def _clean_crashpoints():
    faults.reset()
    yield
    faults.reset()


def _database() -> Database:
    db = Database("ckpt")
    table = db.create_table("R", Schema.of("K", ("VT", "interval")))
    for key in range(5):
        table.insert(key, until_now(10 + key))
    return db


def _packed(rows):
    return sorted(pack_tuple(row) for row in rows)


class TestHeapFiles:
    def test_roundtrip(self, tmp_path):
        rows = tuple(OngoingTuple((k, until_now(k))) for k in range(4))
        path = tmp_path / "0000.heap"
        _write_heap(path, rows)
        assert _read_heap(path) == rows

    def test_corruption_detected(self, tmp_path):
        rows = (OngoingTuple((1, until_now(2))),)
        path = tmp_path / "0000.heap"
        _write_heap(path, rows)
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(DurabilityError):
            _read_heap(path)


class TestWriteLoad:
    def test_checkpoint_roundtrip(self, tmp_path):
        db = _database()
        write_checkpoint(
            tmp_path,
            database=db,
            wal_position=WalPosition(1, 123),
            subscriptions=[],
            tick=db.last_commit.tick,
        )
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded is not None
        assert loaded.manifest["database"] == "ckpt"
        assert loaded.manifest["wal_position"] == [1, 123]
        entry = loaded.tables["R"]
        assert _packed(entry.rows) == _packed(db.table("R").rows())
        assert entry.version == db.table("R").version
        assert [a.name for a in entry.schema] == ["K", "VT"]

    def test_latest_wins(self, tmp_path):
        db = _database()
        for tick in (1, 2):
            write_checkpoint(
                tmp_path,
                database=db,
                wal_position=WalPosition(1, tick),
                subscriptions=[],
                tick=tick,
            )
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded.manifest["tick"] == 2

    def test_empty_root_loads_none(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) is None

    def test_prune_keeps_newest(self, tmp_path):
        db = _database()
        for tick in (1, 2, 3):
            write_checkpoint(
                tmp_path,
                database=db,
                wal_position=WalPosition(1, 0),
                subscriptions=[],
                tick=tick,
            )
        removed = prune_checkpoints(tmp_path, keep=1)
        assert removed == 2
        assert load_latest_checkpoint(tmp_path).manifest["tick"] == 3


class TestCrashpoints:
    def test_mid_heap_crash_preserves_previous_checkpoint(self, tmp_path):
        db = _database()
        write_checkpoint(
            tmp_path,
            database=db,
            wal_position=WalPosition(1, 0),
            subscriptions=[],
            tick=1,
        )
        with faults.armed("checkpoint.mid_heap"):
            with pytest.raises(faults.InjectedCrash):
                write_checkpoint(
                    tmp_path,
                    database=db,
                    wal_position=WalPosition(1, 99),
                    subscriptions=[],
                    tick=2,
                )
        # The half-written attempt never published; the old one loads.
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded.manifest["tick"] == 1
        # Temp litter exists until pruned.
        litter = [
            p
            for p in (tmp_path / "checkpoints").iterdir()
            if p.name.startswith(".tmp-")
        ]
        assert litter
        prune_checkpoints(tmp_path, keep=1)
        assert not any(
            p.name.startswith(".tmp-")
            for p in (tmp_path / "checkpoints").iterdir()
        )

    def test_pre_publish_crash_preserves_previous_checkpoint(self, tmp_path):
        db = _database()
        write_checkpoint(
            tmp_path,
            database=db,
            wal_position=WalPosition(1, 0),
            subscriptions=[],
            tick=1,
        )
        with faults.armed("checkpoint.pre_publish"):
            with pytest.raises(faults.InjectedCrash):
                write_checkpoint(
                    tmp_path,
                    database=db,
                    wal_position=WalPosition(1, 99),
                    subscriptions=[],
                    tick=2,
                )
        assert load_latest_checkpoint(tmp_path).manifest["tick"] == 1

    def test_retry_after_crash_succeeds(self, tmp_path):
        db = _database()
        with faults.armed("checkpoint.pre_publish"):
            with pytest.raises(faults.InjectedCrash):
                write_checkpoint(
                    tmp_path,
                    database=db,
                    wal_position=WalPosition(1, 0),
                    subscriptions=[],
                    tick=1,
                )
        write_checkpoint(
            tmp_path,
            database=db,
            wal_position=WalPosition(1, 0),
            subscriptions=[],
            tick=2,
        )
        assert load_latest_checkpoint(tmp_path).manifest["tick"] == 2


class TestSubscriptionCapture:
    def test_sql_subscription_captured(self):
        db = _database()
        session = db.live_session()
        session.subscribe_sql(
            "SELECT * FROM R",
            on_refresh=lambda event: None,
            name="audit",
            reference_time=15,
        )
        entries = capture_subscriptions(session)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["name"] == "audit"
        assert entry["statement"] == "SELECT * FROM R"
        assert entry["plan_pickle"] is None
        assert entry["reference_time"] == 15
        # Synchronous bus: delivery is inline, nothing can be pending.
        assert entry["pending"] is None
        session.close()

    def test_pending_notification_captured_from_async_mailbox(self):
        db = _database()
        import threading

        plug = threading.Event()
        session = db.live_session(delivery_workers=1)
        first_delivery = threading.Event()

        def listener(event):
            first_delivery.set()
            plug.wait(timeout=30)

        sub = session.subscribe_sql(
            "SELECT * FROM R", on_refresh=listener, name="slow"
        )
        try:
            db.table("R").insert(100, until_now(50))
            session.flush()
            assert first_delivery.wait(timeout=10)
            # Worker is stuck in the listener; a second notification
            # stays queued in the mailbox.
            db.table("R").insert(101, until_now(51))
            session.flush()
            entries = capture_subscriptions(session)
            pending = entries[0]["pending"]
            assert pending is not None
            assert pending["changed_tables"] == ["R"]
            assert pending["commit"] is not None
            # Non-destructive: still queued after the capture.
            assert capture_subscriptions(session)[0]["pending"] == pending
        finally:
            plug.set()
            session.close()

    def test_serialize_notification_shapes(self):
        delta = Delta(
            inserted=(OngoingTuple((1, until_now(2))),),
            deleted=(),
        )
        notification = RefreshNotification(
            subscription=None,
            result=None,
            changed_tables=("R",),
            delta=delta,
            commit=None,
        )
        entry = serialize_notification(notification)
        assert entry["changed_tables"] == ["R"]
        assert entry["delta_full"] is False
        assert len(entry["delta"]["inserted"]) == 1
        assert entry["delta"]["deleted"] == []
