"""End-to-end recovery: checkpoint + WAL replay + subscription resume."""

import json
import logging
import threading
import urllib.request

import pytest

from repro.core.interval import until_now
from repro.durable import faults
from repro.engine.database import Database
from repro.engine.storage import pack_tuple
from repro.errors import DurabilityError, QueryError
from repro.obs.server import ObsServer
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


@pytest.fixture(autouse=True)
def _clean_crashpoints():
    faults.reset()
    yield
    faults.reset()


def _packed(rows):
    return sorted(pack_tuple(row) for row in rows)


def _seed(db, rows=5):
    table = db.create_table("R", Schema.of("K", ("VT", "interval")))
    for key in range(rows):
        table.insert(key, until_now(10 + key))
    return table


class TestPlainReopen:
    def test_empty_database_roundtrip(self, tmp_path):
        db = Database.open(tmp_path, name="mine")
        db.close()
        reopened = Database.open(tmp_path)
        assert reopened.name == "mine"
        assert reopened.tables() == {}
        reopened.close()

    def test_wal_only_recovery(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        table.delete_where(lambda row: row.values[0] != 2)
        before = _packed(table.rows())
        db.close()
        reopened = Database.open(tmp_path)
        assert _packed(reopened.table("R").rows()) == before
        report = reopened._durability.last_recovery
        assert report.replayed_records > 0
        assert report.checkpoint_tick == 0
        reopened.close()

    def test_checkpoint_plus_suffix_recovery(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        db.checkpoint()
        table.insert(99, until_now(50))  # the WAL suffix
        before = _packed(table.rows())
        db.close()
        reopened = Database.open(tmp_path)
        assert _packed(reopened.table("R").rows()) == before
        report = reopened._durability.last_recovery
        assert report.checkpoint_tick > 0
        assert report.replayed_records == 1
        reopened.close()

    def test_commit_ticks_continue_after_reopen(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        last = db.last_commit.tick
        db.close()
        reopened = Database.open(tmp_path)
        reopened.table("R").insert(99, until_now(50))
        assert reopened.last_commit.tick == last + 1
        assert reopened._durability.tick_mismatches == 0
        reopened.close()

    def test_create_and_drop_replay(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        other = db.create_table("S", Schema.of("X"))
        other.insert(1)
        db.drop_table("R")
        db.close()
        reopened = Database.open(tmp_path)
        assert set(reopened.tables()) == {"S"}
        assert len(reopened.table("S").rows()) == 1
        reopened.close()

    def test_checkpoint_requires_durable_database(self):
        db = Database("plain")
        with pytest.raises(QueryError, match="durable"):
            db.checkpoint()
        db.close()  # close() is safe on a plain database

    def test_mid_replay_crash_then_clean_retry(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        before = _packed(table.rows())
        db.close()
        with faults.armed("recovery.mid_replay"):
            with pytest.raises(faults.InjectedCrash):
                Database.open(tmp_path)
        # The crash during replay wrote nothing; a retry recovers fully.
        reopened = Database.open(tmp_path)
        assert _packed(reopened.table("R").rows()) == before
        reopened.close()


class TestFullDeltaReplay:
    def test_replace_all_replays_via_snapshot_record(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        replacement = [
            OngoingTuple((100 + k, until_now(60 + k))) for k in range(3)
        ]
        table.replace_all(replacement)
        before = _packed(table.rows())
        db.close()
        reopened = Database.open(tmp_path)
        assert _packed(reopened.table("R").rows()) == before
        reopened.close()

    def test_snapshot_replay_triggers_logged_fallback(self, tmp_path, caplog):
        """The satellite regression: an untyped full-flagged delta
        (replace_all) must recover through the logged full-refresh
        fallback, not by corrupting the counting state."""
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        events = []
        session = db.live_session()
        session.subscribe_sql(
            "SELECT * FROM R", on_refresh=events.append, name="s1"
        )
        session.flush()
        db.checkpoint()  # manifest + warm-state baseline
        table.replace_all([OngoingTuple((7, until_now(70)))])
        session.flush()
        expected = _packed(session.subscriptions[0].result.tuples)
        db.close()
        with caplog.at_level(logging.INFO, logger="repro.engine.delta"):
            reopened = Database.open(
                tmp_path,
                session={},
                on_refresh={"s1": (lambda event: None)},
            )
        assert any(
            "fell back to full re-evaluation" in record.getMessage()
            for record in caplog.records
        )
        resumed = reopened._live_session.subscriptions[0]
        assert _packed(resumed.result.tuples) == expected
        reopened.close()

    def test_drop_table_replay_keeps_results_consistent(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        db.create_table("S", Schema.of("X")).insert(1)
        db.drop_table("R")
        db.close()
        reopened = Database.open(tmp_path, session={})
        assert set(reopened.tables()) == {"S"}
        reopened.close()


class TestSessionResume:
    def test_subscription_results_identical_after_reopen(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        events = []
        session = db.live_session()
        sub = session.subscribe_sql(
            "SELECT * FROM R WHERE K >= 2",
            on_refresh=events.append,
            name="filtered",
        )
        table.insert(9, until_now(40))
        session.flush()
        db.checkpoint()
        table.insert(11, until_now(41))  # suffix replays into warm state
        session.flush()
        expected = _packed(sub.result.tuples)
        db.close()
        reopened = Database.open(
            tmp_path, session={}, on_refresh={"filtered": events.append}
        )
        resumed = reopened._live_session.subscriptions
        assert [s.name for s in resumed] == ["filtered"]
        assert _packed(resumed[0].result.tuples) == expected
        assert resumed[0].statement == "SELECT * FROM R WHERE K >= 2"
        assert reopened._durability.resumed_subscriptions == 1
        reopened.close()

    def test_suffix_replay_is_incremental_for_resumed_plans(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        session = db.live_session()
        session.subscribe_sql(
            "SELECT * FROM R", on_refresh=lambda event: None, name="s1"
        )
        session.flush()
        db.checkpoint()
        for key in range(100, 104):
            table.insert(key, until_now(key))
        db.close()
        reopened = Database.open(
            tmp_path, session={}, on_refresh={"s1": (lambda event: None)}
        )
        stats = reopened._live_session.stats()
        # Recovery is one batched flush: the replayed suffix propagated
        # as deltas through the warm state, not one full re-evaluation
        # per record.  (The single evaluation is the resume-subscribe.)
        assert stats["repro_live_delta_refreshes_total"] >= 1
        assert stats["repro_live_flushes_total"] == 1
        reopened.close()

    def test_pending_notification_reenqueued_exactly_once(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        table = _seed(db)
        plug = threading.Event()
        first_delivery = threading.Event()

        def stuck(event):
            first_delivery.set()
            plug.wait(timeout=30)

        session = db.live_session(delivery_workers=1)
        session.subscribe_sql("SELECT * FROM R", on_refresh=stuck, name="s1")
        table.insert(100, until_now(50))
        session.flush()
        assert first_delivery.wait(timeout=10)
        table.insert(101, until_now(51))
        session.flush()  # queued behind the stuck delivery
        db.checkpoint()  # captures the undelivered notification
        db.close()
        plug.set()

        received = []
        reopened = Database.open(
            tmp_path, session={}, on_refresh={"s1": received.append}
        )
        assert reopened._durability.reenqueued_notifications == 1
        assert len(received) == 1
        assert received[0].changed_tables == ("R",)
        assert received[0].commit is not None
        # The manifest was consumed: resuming again attaches nothing and
        # re-enqueues nothing.
        assert reopened._live_session.resume() == []
        assert reopened._durability.reenqueued_notifications == 1
        assert len(received) == 1
        reopened.close()

    def test_resume_without_durability_requires_manifest(self):
        db = Database("plain")
        _seed(db)
        session = db.live_session()
        with pytest.raises(QueryError, match="durable"):
            session.resume()
        session.close()

    def test_resume_skips_unreadable_entries(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        session = db.live_session()
        resumed = session.resume(
            manifest=[
                {"name": "bad", "statement": "SELECT * FROM NOPE"},
                {"name": "empty"},
                {"name": "good", "statement": "SELECT * FROM R"},
            ]
        )
        assert [s.name for s in resumed] == ["good"]
        db.close()


class TestObservability:
    def test_health_snapshot_shape(self, tmp_path):
        db = Database.open(tmp_path, fsync="batch")
        _seed(db)
        snapshot = db._durability.health_snapshot()
        assert snapshot["fsync"] == "batch"
        assert snapshot["appended_records"] > 0
        assert snapshot["records_since_checkpoint"] > 0
        db.checkpoint()
        snapshot = db._durability.health_snapshot()
        assert snapshot["records_since_checkpoint"] == 0
        assert snapshot["last_checkpoint_tick"] > 0
        db.close()

    def test_session_registry_scrapes_wal_counters(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        session = db.live_session()
        rendered = session.metrics.render_prometheus()
        assert "repro_wal_appends_total" in rendered
        assert "repro_checkpoints_total" in rendered
        db.close()

    def test_health_endpoint_reports_wal(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        session = db.live_session()
        with ObsServer(session) as obs:
            with urllib.request.urlopen(obs.url + "/health", timeout=10) as r:
                body = json.loads(r.read().decode("utf-8"))
        assert body["wal"] is not None
        assert body["wal"]["fsync"] == "off"
        assert body["wal"]["appended_records"] > 0
        db.close()

    def test_plain_session_health_has_null_wal(self):
        db = Database("plain")
        _seed(db)
        session = db.live_session()
        with ObsServer(session) as obs:
            with urllib.request.urlopen(obs.url + "/health", timeout=10) as r:
                body = json.loads(r.read().decode("utf-8"))
        assert body["wal"] is None
        session.close()

    def test_stats_merge_wal_prefix(self, tmp_path):
        db = Database.open(tmp_path, fsync="off")
        _seed(db)
        stats = db._durability.stats()
        assert stats["wal_appends"] > 0
        assert stats["checkpoints"] == 0
        db.checkpoint()
        assert db._durability.stats()["checkpoints"] == 1
        db.close()
