"""Unit tests for the segmented write-ahead log."""

import os

import pytest

from repro.core.interval import until_now
from repro.durable import faults
from repro.durable.wal import (
    KIND_BATCH,
    KIND_CREATE,
    KIND_DROP,
    KIND_SNAPSHOT,
    SEGMENT_MAGIC,
    WalPosition,
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
)
from repro.errors import DurabilityError
from repro.relational.tuples import OngoingTuple


@pytest.fixture(autouse=True)
def _clean_crashpoints():
    faults.reset()
    yield
    faults.reset()


def _row(key: int) -> OngoingTuple:
    return OngoingTuple((key, until_now(key + 10)))


def _batch(tick: int, inserted=(), deleted=()) -> WalRecord:
    return WalRecord(
        KIND_BATCH, "R", tick, float(tick), inserted=inserted, deleted=deleted
    )


class TestRecordCodec:
    def test_batch_roundtrip(self):
        record = _batch(7, inserted=(_row(1), _row(2)), deleted=(_row(3),))
        decoded = decode_record(encode_record(record))
        assert decoded == record

    def test_snapshot_roundtrip(self):
        record = WalRecord(
            KIND_SNAPSHOT, "R", 9, 1.5, rows=(_row(1), _row(2), _row(3))
        )
        assert decode_record(encode_record(record)) == record

    def test_create_roundtrip(self):
        record = WalRecord(
            KIND_CREATE,
            "bugs",
            0,
            0.0,
            schema_spec=(("BID", "fixed"), ("VT", "interval")),
        )
        assert decode_record(encode_record(record)) == record

    def test_drop_roundtrip(self):
        record = WalRecord(KIND_DROP, "R", 4, 2.0)
        assert decode_record(encode_record(record)) == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(DurabilityError, match="kind"):
            encode_record(WalRecord(99, "R", 1, 0.0))


class TestAppendScan:
    def test_appended_records_scan_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        records = [_batch(tick, inserted=(_row(tick),)) for tick in range(1, 6)]
        for record in records:
            wal.append(record)
        wal.close()
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert [r for _, r in reopened.records()] == records
        reopened.close()

    def test_scan_from_position(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(_batch(1))
        start = wal.position()
        wal.append(_batch(2))
        wal.append(_batch(3))
        suffix = [r.tick for _, r in wal.records(start)]
        assert suffix == [2, 3]
        wal.close()

    def test_rotation_at_segment_boundary(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=256)
        for tick in range(1, 30):
            wal.append(_batch(tick, inserted=(_row(tick),)))
        assert len(wal.segments()) > 1
        assert [r.tick for _, r in wal.records()] == list(range(1, 30))
        wal.close()

    def test_prune_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=256)
        for tick in range(1, 30):
            wal.append(_batch(tick, inserted=(_row(tick),)))
        current = wal.position().segment
        removed = wal.prune_segments(current)
        assert removed > 0
        assert wal.segments()[0] == current
        wal.close()

    def test_alien_file_rejected(self, tmp_path):
        (tmp_path / "wal-junk.log").write_bytes(b"nope")
        with pytest.raises(DurabilityError, match="alien"):
            WriteAheadLog(tmp_path)

    def test_closed_append_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.close()
        with pytest.raises(DurabilityError, match="closed"):
            wal.append(_batch(1))


class TestFsyncPolicies:
    def test_policy_validated(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync policy"):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_always_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        for tick in range(1, 4):
            wal.append(_batch(tick))
        assert wal.fsyncs >= 3
        assert wal.lag_records() == 0
        wal.close()

    def test_batch_fsyncs_every_sync_every(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch", sync_every=4)
        for tick in range(1, 4):
            wal.append(_batch(tick))
        assert wal.fsyncs == 0
        assert wal.lag_records() == 3
        wal.append(_batch(4))
        assert wal.fsyncs == 1
        assert wal.lag_records() == 0
        wal.close()

    def test_off_never_fsyncs_automatically(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", sync_every=1)
        for tick in range(1, 10):
            wal.append(_batch(tick))
        assert wal.fsyncs == 0
        wal.sync()  # explicit sync works regardless of policy
        assert wal.fsyncs == 1
        wal.close()

    def test_stats_shape(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch")
        wal.append(_batch(1))
        stats = wal.stats()
        assert stats["appends"] == 1
        assert stats["fsync"] == "batch"
        assert stats["segments"] == 1
        assert stats["bytes_written"] > 0
        wal.close()


class TestTornTails:
    def _segment(self, tmp_path):
        return tmp_path / "wal-00000001.log"

    def test_mid_frame_tear_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(_batch(1, inserted=(_row(1),)))
        wal.append(_batch(2, inserted=(_row(2),)))
        wal.close()
        path = self._segment(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # tear the final frame
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert [r.tick for _, r in reopened.records()] == [1]
        assert reopened.truncated_bytes > 0
        # The torn bytes are gone from disk, not just skipped.
        assert os.path.getsize(path) < len(data)
        reopened.close()

    def test_partial_frame_header_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(_batch(1))
        end = wal.position().offset
        wal.close()
        path = self._segment(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00")  # 2 bytes of a frame header
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert [r.tick for _, r in reopened.records()] == [1]
        assert os.path.getsize(path) == end
        reopened.close()

    def test_corrupt_crc_truncates_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(_batch(1))
        tail = wal.position().offset
        wal.append(_batch(2))
        wal.close()
        path = self._segment(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last frame
        path.write_bytes(bytes(data))
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert [r.tick for _, r in reopened.records()] == [1]
        assert os.path.getsize(path) == tail
        reopened.close()

    def test_segment_shorter_than_magic_reset(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.close()
        path = self._segment(tmp_path)
        path.write_bytes(SEGMENT_MAGIC[:3])  # crash before magic completed
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert list(reopened.records()) == []
        reopened.append(_batch(1))
        assert [r.tick for _, r in reopened.records()] == [1]
        reopened.close()

    def test_bad_magic_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.close()
        path = self._segment(tmp_path)
        path.write_bytes(b"XXXXXXXX" + b"junk")
        with pytest.raises(DurabilityError, match="magic"):
            WriteAheadLog(tmp_path, fsync="off")

    def test_corruption_in_non_final_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=256)
        for tick in range(1, 30):
            wal.append(_batch(tick, inserted=(_row(tick),)))
        first = wal.segments()[0]
        wal.close()
        path = tmp_path / f"wal-{first:08d}.log"
        data = bytearray(path.read_bytes())
        data[len(SEGMENT_MAGIC) + 10] ^= 0xFF
        path.write_bytes(bytes(data))
        reopened = WriteAheadLog(tmp_path, fsync="off")
        with pytest.raises(DurabilityError, match="non-final"):
            list(reopened.records())
        reopened.close()


class TestCrashpoints:
    def test_pre_append_crash_leaves_no_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(_batch(1))
        with faults.armed("wal.pre_append"):
            with pytest.raises(faults.InjectedCrash):
                wal.append(_batch(2))
        assert [r.tick for _, r in wal.records()] == [1]
        wal.close()

    def test_post_append_crash_keeps_the_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        with faults.armed("wal.post_append"):
            with pytest.raises(faults.InjectedCrash):
                wal.append(_batch(1))
        assert [r.tick for _, r in wal.records()] == [1]
        wal.close()

    def test_pre_fsync_crash_with_always_keeps_the_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        with faults.armed("wal.pre_fsync"):
            with pytest.raises(faults.InjectedCrash):
                wal.append(_batch(1))
        # The write itself landed (single write() before the fsync); a
        # reopen sees the intact frame.
        wal.close()
        reopened = WriteAheadLog(tmp_path, fsync="always")
        assert [r.tick for _, r in reopened.records()] == [1]
        reopened.close()
