"""Unit tests for the crashpoint registry (``repro.durable.faults``)."""

import os
import subprocess
import sys

import pytest

from repro.durable import faults
from repro.durable.faults import CRASHPOINTS, InjectedCrash


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.reset()
    yield
    faults.reset()


class TestArming:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown crashpoint"):
            faults.arm("wal.no_such_point")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            faults.arm("wal.pre_append", action="explode")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            faults.arm("wal.pre_append", after=-1)

    def test_every_crashpoint_is_armable(self):
        for name in CRASHPOINTS:
            faults.arm(name)
            faults.disarm(name)

    def test_unarmed_fire_is_a_noop(self):
        for name in CRASHPOINTS:
            faults.fire(name)
        assert faults.fire_counts() == {}


class TestFiring:
    def test_armed_fire_raises_and_disarms(self):
        faults.arm("wal.pre_append")
        with pytest.raises(InjectedCrash, match="wal.pre_append"):
            faults.fire("wal.pre_append")
        # One-shot: the second fire passes.
        faults.fire("wal.pre_append")
        assert faults.fire_counts() == {"wal.pre_append": 1}

    def test_after_skips_the_first_firings(self):
        faults.arm("checkpoint.mid_heap", after=2)
        faults.fire("checkpoint.mid_heap")
        faults.fire("checkpoint.mid_heap")
        with pytest.raises(InjectedCrash):
            faults.fire("checkpoint.mid_heap")

    def test_other_points_unaffected(self):
        faults.arm("wal.pre_append")
        faults.fire("wal.post_append")  # different point: no crash

    def test_armed_contextmanager_disarms_on_exit(self):
        with faults.armed("recovery.mid_replay"):
            with pytest.raises(InjectedCrash):
                faults.fire("recovery.mid_replay")
        faults.fire("recovery.mid_replay")

    def test_reset_clears_armed_and_counts(self):
        faults.arm("wal.pre_fsync")
        faults.reset()
        faults.fire("wal.pre_fsync")
        assert faults.fire_counts() == {}


class TestEnvArming:
    def test_env_spec_arms_at_import(self, tmp_path):
        script = tmp_path / "child.py"
        script.write_text(
            "from repro.durable import faults\n"
            "try:\n"
            "    faults.fire('wal.pre_append')\n"
            "except faults.InjectedCrash:\n"
            "    print('CRASHED')\n"
        )
        env = dict(os.environ)
        env["REPRO_CRASHPOINT"] = "wal.pre_append"
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            cwd="/root/repo",
            timeout=60,
        )
        assert "CRASHED" in out.stdout

    def test_env_spec_exit_action(self, tmp_path):
        script = tmp_path / "child.py"
        script.write_text(
            "from repro.durable import faults\n"
            "faults.fire('wal.post_append')\n"
            "print('UNREACHABLE')\n"
        )
        env = dict(os.environ)
        env["REPRO_CRASHPOINT"] = "wal.post_append:exit"
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            cwd="/root/repo",
            timeout=60,
        )
        assert out.returncode == faults.KILLED_STATUS
        assert "UNREACHABLE" not in out.stdout


class TestHarness:
    def test_kills_after_marker_count(self, tmp_path):
        script = tmp_path / "writer.py"
        script.write_text(
            "import sys, time\n"
            "for i in range(1000):\n"
            "    print(f'ACK {i}', flush=True)\n"
            "    time.sleep(0.005)\n"
        )
        result = faults.run_until_marker_then_kill(
            [sys.executable, str(script)], marker="ACK", count=3
        )
        assert result.killed
        assert result.returncode == -9
        assert result.markers_seen >= 3
        assert any("ACK 2" in line for line in result.lines)

    def test_clean_exit_before_marker(self, tmp_path):
        script = tmp_path / "writer.py"
        script.write_text("print('done')\n")
        result = faults.run_until_marker_then_kill(
            [sys.executable, str(script)], marker="ACK", count=1
        )
        assert not result.killed
        assert result.returncode == 0
        assert result.markers_seen == 0
