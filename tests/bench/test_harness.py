"""Unit tests for the benchmark harness arithmetic."""

import math

from repro.bench.harness import (
    ExperimentResult,
    amortization_instantiations,
    breakeven_reevaluations,
    default_scale,
    measure,
)


class TestMeasure:
    def test_returns_positive_median(self):
        result = measure(lambda: sum(range(1000)), repeat=3, warmup=1)
        assert result.seconds > 0
        assert result.runs == 3
        assert result.millis == result.seconds * 1e3


class TestBreakeven:
    def test_equal_costs_break_even_immediately(self):
        assert breakeven_reevaluations(1.0, 1.0) == 0

    def test_double_cost_breaks_even_after_one(self):
        assert breakeven_reevaluations(2.0, 1.0) == 1

    def test_paper_shape(self):
        # ongoing 2.4x clifford -> wins from the 2nd re-evaluation on.
        assert breakeven_reevaluations(2.4, 1.0) == 2

    def test_zero_clifford_cost(self):
        assert breakeven_reevaluations(1.0, 0.0) == 0


class TestAmortization:
    def test_simple_crossover(self):
        # ongoing=10, instantiate=1, clifford=6 -> 10 / 5 = 2 instantiations
        assert amortization_instantiations(10.0, 1.0, 6.0) == 2.0

    def test_never_amortizes_when_instantiation_dominates(self):
        assert math.isinf(amortization_instantiations(10.0, 7.0, 6.0))


class TestExperimentResult:
    def test_format_and_checks(self):
        result = ExperimentResult(experiment="X", title="t")
        result.add_row("row one")
        result.add_check("shape holds", True)
        result.add_check("other shape", False)
        text = result.format()
        assert "row one" in text
        assert "[PASS] shape holds" in text
        assert "[FAIL] other shape" in text
        assert not result.all_passed()

    def test_all_passed_with_no_checks(self):
        assert ExperimentResult(experiment="X", title="t").all_passed()


class TestDefaultScale:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert default_scale() == 2.5

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert default_scale() == 1.0

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert default_scale() == 0.01
