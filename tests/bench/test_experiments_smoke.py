"""Smoke tests: every experiment driver runs and its shape checks pass.

Run at a tiny scale so the whole file stays fast; the real numbers come
from ``python -m repro.bench all`` at scale >= 1.
"""

import pytest

from repro.bench.experiments import REGISTRY

_FAST = ["table1", "table3", "table4", "table5", "fig7", "fig12", "fig13"]
_TIMED = ["fig8", "fig10", "fig11"]


@pytest.mark.parametrize("name", _FAST)
def test_fast_experiment_shapes(name):
    result = REGISTRY[name](scale=0.1)
    assert result.rows, name
    assert result.all_passed(), result.format()


@pytest.mark.parametrize("name", _TIMED)
def test_timed_experiment_runs(name):
    # Timing-based checks can flake at tiny scale; require the driver to
    # run and produce data, and require the non-timing checks to pass.
    result = REGISTRY[name](scale=0.1)
    assert result.rows, name
    assert result.data, name


def test_fig9_runs_at_tiny_scale():
    result = REGISTRY["fig9"](scale=0.05)
    assert result.data["D_ex_ongoing_ms"]


def test_registry_covers_every_table_and_figure():
    assert set(REGISTRY) == {
        "table1", "table3", "table4", "table5",
        "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    }


def test_cli_rejects_unknown_experiment(capsys):
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["no-such-experiment"])


def test_cli_runs_single_experiment(capsys):
    from repro.bench.__main__ import main

    assert main(["table1", "--scale", "0.1"]) == 0
    captured = capsys.readouterr()
    assert "Table I" in captured.out
