"""Unit tests for schemas of ongoing relations (Definition 5)."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, AttributeKind, Schema


class TestConstruction:
    def test_of_with_mixed_specs(self):
        schema = Schema.of("BID", ("VT", "interval"), ("T", "point"), ("X", "fixed"))
        assert schema.names == ("BID", "VT", "T", "X")
        assert schema.attribute("BID").kind is AttributeKind.FIXED
        assert schema.attribute("VT").kind is AttributeKind.ONGOING_INTERVAL
        assert schema.attribute("T").kind is AttributeKind.ONGOING_POINT

    def test_of_accepts_attribute_instances(self):
        attribute = Attribute("VT", AttributeKind.ONGOING_INTERVAL)
        assert Schema.of(attribute).attribute("VT") == attribute

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of("A", "A")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown attribute kind"):
            Schema.of(("VT", "wibble"))

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_bad_spec_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(42)


class TestLookup:
    def test_index_of(self):
        schema = Schema.of("A", "B", "C")
        assert schema.index_of("B") == 1

    def test_index_of_unknown_lists_known_names(self):
        schema = Schema.of("A", "B")
        with pytest.raises(SchemaError, match=r"unknown attribute 'Z'.*'A', 'B'"):
            schema.index_of("Z")

    def test_contains_and_iter(self):
        schema = Schema.of("A", ("VT", "interval"))
        assert "A" in schema and "VT" in schema and "Z" not in schema
        assert [a.name for a in schema] == ["A", "VT"]

    def test_ongoing_names(self):
        schema = Schema.of("A", ("VT", "interval"), ("T", "point"))
        assert schema.ongoing_names() == ("VT", "T")


class TestDerivedSchemas:
    def test_project_reorders(self):
        schema = Schema.of("A", "B", "C")
        assert schema.project(["C", "A"]).names == ("C", "A")

    def test_rename(self):
        schema = Schema.of("A", ("VT", "interval"))
        renamed = schema.rename({"A": "X"})
        assert renamed.names == ("X", "VT")
        assert renamed.attribute("VT").kind is AttributeKind.ONGOING_INTERVAL

    def test_qualify(self):
        schema = Schema.of("A", "B").qualify("R")
        assert schema.names == ("R.A", "R.B")

    def test_concat_rejects_clashes(self):
        with pytest.raises(SchemaError):
            Schema.of("A").concat(Schema.of("A"))

    def test_concat_after_qualify(self):
        left = Schema.of("A").qualify("R")
        right = Schema.of("A").qualify("S")
        assert left.concat(right).names == ("R.A", "S.A")


class TestCompatibility:
    def test_compatible_ignores_names(self):
        left = Schema.of("A", ("VT", "interval"))
        right = Schema.of("X", ("W", "interval"))
        assert left.compatible_with(right)

    def test_incompatible_kinds(self):
        left = Schema.of("A", ("VT", "interval"))
        right = Schema.of("A", "VT")
        assert not left.compatible_with(right)

    def test_incompatible_arity(self):
        assert not Schema.of("A").compatible_with(Schema.of("A", "B"))

    def test_require_compatible_raises(self):
        with pytest.raises(SchemaError, match="union"):
            Schema.of("A").require_compatible(Schema.of("A", "B"), "union")

    def test_equality_and_hash(self):
        assert Schema.of("A", "B") == Schema.of("A", "B")
        assert len({Schema.of("A"), Schema.of("A")}) == 1
