"""Unit tests for the predicate/expression tree and its evaluation."""

import pytest

from repro.core.boolean import O_FALSE, O_TRUE
from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed
from repro.errors import PredicateError
from repro.relational.predicates import (
    And,
    Comparison,
    Not,
    Or,
    TRUE_PREDICATE,
    col,
    lit,
)
from repro.relational.schema import Schema

_SCHEMA = Schema.of("BID", "C", ("VT", "interval"), ("T", "point"))
_ROW = (500, "Spam filter", until_now(mmdd(1, 25)), NOW)


class TestExpressions:
    def test_column_reads_by_name(self):
        assert col("BID").evaluate(_ROW, _SCHEMA) == 500

    def test_column_caches_per_schema(self):
        column = col("C")
        assert column.evaluate(_ROW, _SCHEMA) == "Spam filter"
        other = Schema.of("C", "BID")
        assert column.evaluate(("x", 1), other) == "x"

    def test_literal(self):
        assert lit(7).evaluate(_ROW, _SCHEMA) == 7

    def test_references(self):
        predicate = (col("BID") == lit(1)) & col("VT").overlaps(col("T2"))
        assert predicate.references() == {"BID", "VT", "T2"}

    def test_intersect_expression(self):
        expression = col("VT").intersect(lit(fixed_interval(mmdd(1, 1), mmdd(2, 1))))
        value = expression.evaluate(_ROW, _SCHEMA)
        assert value.start == fixed(mmdd(1, 25))

    def test_intersect_rejects_non_interval(self):
        expression = col("BID").intersect(col("VT"))
        with pytest.raises(PredicateError, match="interval"):
            expression.evaluate(_ROW, _SCHEMA)


class TestComparisons:
    def test_fixed_comparison_yields_constant_boolean(self):
        assert (col("BID") == lit(500)).evaluate(_ROW, _SCHEMA) is O_TRUE
        assert (col("BID") == lit(1)).evaluate(_ROW, _SCHEMA) is O_FALSE

    def test_string_comparison(self):
        assert (col("C") == lit("Spam filter")).evaluate(_ROW, _SCHEMA) is O_TRUE

    def test_ongoing_point_comparison(self):
        result = (col("T") < lit(fixed(mmdd(8, 15)))).evaluate(_ROW, _SCHEMA)
        assert result.true_set == IntervalSet.below(mmdd(8, 15))

    def test_int_coerces_to_fixed_point_against_ongoing(self):
        result = (col("T") < lit(mmdd(8, 15))).evaluate(_ROW, _SCHEMA)
        assert result.true_set == IntervalSet.below(mmdd(8, 15))

    def test_mixing_ongoing_with_string_raises(self):
        with pytest.raises(PredicateError, match="mixes"):
            (col("T") < lit("tomorrow")).evaluate(_ROW, _SCHEMA)

    def test_incomparable_fixed_values_raise(self):
        with pytest.raises(PredicateError, match="cannot compare"):
            (col("C") < lit(5)).evaluate(_ROW, _SCHEMA)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("<>", col("A"), col("B"))

    def test_all_six_operators(self):
        row = (3, "x", until_now(0), fixed(5))
        for op, expected in [("<", True), ("<=", True), ("=", False),
                             ("!=", True), (">", False), (">=", False)]:
            predicate = Comparison(op, col("BID"), lit(4))
            assert predicate.evaluate(row, _SCHEMA).is_always_true() == expected


class TestAllenPredicateNode:
    def test_known_predicates_evaluate(self):
        # [01/25, now) overlaps [08/15, 08/24) once now passes 08/15.
        window = lit(fixed_interval(mmdd(8, 15), mmdd(8, 24)))
        result = col("VT").overlaps(window).evaluate(_ROW, _SCHEMA)
        assert result.true_set == IntervalSet.at_least(mmdd(8, 16))

    def test_operand_type_checked(self):
        with pytest.raises(PredicateError, match="operand"):
            col("BID").overlaps(col("VT")).evaluate(_ROW, _SCHEMA)

    def test_unknown_name_rejected(self):
        from repro.relational.predicates import AllenPredicate

        with pytest.raises(PredicateError, match="unknown interval predicate"):
            AllenPredicate("touches", col("VT"), col("VT"))

    def test_pair_tuple_coerces_to_interval(self):
        result = col("VT").overlaps(lit((mmdd(8, 15), mmdd(8, 24))))
        assert result.evaluate(_ROW, _SCHEMA).true_set == IntervalSet.at_least(
            mmdd(8, 16)
        )


class TestConnectives:
    def test_and_flattens(self):
        predicate = (col("A") == lit(1)) & (col("B") == lit(2)) & (col("C") == lit(3))
        assert len(predicate.conjuncts()) == 3

    def test_or_flattens(self):
        predicate = Or([Or([TRUE_PREDICATE, TRUE_PREDICATE]), TRUE_PREDICATE])
        assert len(predicate.parts) == 3

    def test_empty_connectives_rejected(self):
        with pytest.raises(PredicateError):
            And([])
        with pytest.raises(PredicateError):
            Or([])

    def test_and_short_circuits_on_false(self):
        class Exploding:
            def evaluate(self, row, schema):
                raise AssertionError("must not be evaluated")

            def conjuncts(self):
                return [self]

        predicate = And([col("BID") == lit(-1), Exploding()])
        assert predicate.evaluate(_ROW, _SCHEMA) is O_FALSE

    def test_not(self):
        assert Not(TRUE_PREDICATE).evaluate(_ROW, _SCHEMA) == O_FALSE

    def test_mixing_fixed_and_ongoing_conjuncts(self):
        window = lit(fixed_interval(mmdd(8, 15), mmdd(8, 24)))
        predicate = (col("C") == lit("Spam filter")) & col("VT").before(window)
        result = predicate.evaluate(_ROW, _SCHEMA)
        # fixed part true -> result equals the ongoing part's truth set
        assert result == col("VT").before(window).evaluate(_ROW, _SCHEMA)


class TestPlannerSupport:
    def test_is_fixed_only_on_fixed_columns(self):
        assert (col("BID") == lit(1)).is_fixed_only(_SCHEMA)
        assert not (col("VT").overlaps(col("VT"))).is_fixed_only(_SCHEMA)

    def test_ongoing_literal_is_not_fixed_only(self):
        predicate = col("BID") == lit(NOW)
        assert not predicate.is_fixed_only(_SCHEMA)

    def test_fixed_interval_literal_predicate_is_fixed_only(self):
        window = lit(fixed_interval(1, 5))
        other = lit(fixed_interval(2, 6))
        from repro.relational.predicates import AllenPredicate

        predicate = AllenPredicate("overlaps", window, other)
        assert predicate.is_fixed_only(_SCHEMA)

    def test_evaluate_fixed_fast_path(self):
        assert (col("BID") == lit(500)).evaluate_fixed(_ROW, _SCHEMA) is True
        predicate = (col("BID") == lit(500)) & (col("C") == lit("nope"))
        assert predicate.evaluate_fixed(_ROW, _SCHEMA) is False

    def test_evaluate_fixed_raises_on_contingent_result(self):
        predicate = col("T") < lit(fixed(mmdd(8, 15)))
        with pytest.raises(PredicateError, match="reference time"):
            predicate.evaluate_fixed(_ROW, _SCHEMA)
