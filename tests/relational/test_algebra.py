"""Unit tests for the relational algebra on ongoing relations (Theorem 2)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed
from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.predicates import col, lit
from repro.relational.relation import OngoingRelation
from repro.relational.schema import AttributeKind, Schema
from repro.relational.tuples import OngoingTuple


def d(month, day):
    return mmdd(month, day)


_BUGS = Schema.of("BID", "C", ("VT", "interval"))


def _bugs() -> OngoingRelation:
    return OngoingRelation.from_rows(
        _BUGS,
        [
            (500, "Spam filter", until_now(d(1, 25))),
            (501, "Spam filter", fixed_interval(d(3, 30), d(8, 21))),
            (502, "Dashboard", until_now(d(7, 1))),
        ],
    )


class TestSelection:
    def test_example3_of_the_paper(self):
        relation = OngoingRelation(
            _BUGS,
            [
                OngoingTuple(
                    (500, "Spam filter", until_now(d(1, 25))),
                    IntervalSet.below(d(8, 16)),
                )
            ],
        )
        window = lit(fixed_interval(d(1, 20), d(8, 18)))
        result = algebra.select(relation, col("VT").overlaps(window))
        (row,) = result.tuples
        assert row.rt == IntervalSet([(d(1, 26), d(8, 16))])

    def test_fixed_predicate_keeps_or_drops(self):
        result = algebra.select(_bugs(), col("C") == lit("Spam filter"))
        assert sorted(result.column("BID")) == [500, 501]
        assert all(item.rt.is_universal() for item in result)

    def test_tuples_with_empty_rt_are_dropped(self):
        window = lit(fixed_interval(d(1, 1), d(1, 10)))
        result = algebra.select(_bugs(), col("VT").overlaps(window))
        assert len(result) == 0


class TestProjection:
    def test_plain_columns(self):
        result = algebra.project(_bugs(), ["BID"])
        assert result.schema.names == ("BID",)
        assert sorted(result.column("BID")) == [500, 501, 502]

    def test_computed_intersection_column(self):
        window = fixed_interval(d(1, 20), d(8, 18))
        result = algebra.project(
            _bugs(), ["BID", ("Resp", col("VT").intersect(lit(window)))]
        )
        assert result.schema.attribute("Resp").kind is AttributeKind.ONGOING_INTERVAL
        by_bid = {row.values[0]: row.values[1] for row in result}
        assert by_bid[500].format() == "[01/25, +08/18)"

    def test_explicit_kind_override(self):
        result = algebra.project(
            _bugs(), [("N", lit(NOW), AttributeKind.ONGOING_POINT)]
        )
        assert result.schema.attribute("N").kind is AttributeKind.ONGOING_POINT

    def test_duplicates_merge_by_set_semantics(self):
        result = algebra.project(_bugs(), [("one", lit(1))])
        assert len(result) == 1


class TestProductAndJoin:
    def test_product_requires_qualification_on_clash(self):
        with pytest.raises(SchemaError, match="qualify"):
            algebra.product(_bugs(), _bugs())

    def test_product_intersects_rts(self):
        left = OngoingRelation(
            Schema.of("A"), [OngoingTuple((1,), IntervalSet([(0, 10)]))]
        )
        right = OngoingRelation(
            Schema.of("B"), [OngoingTuple((2,), IntervalSet([(5, 20)]))]
        )
        result = algebra.product(left, right)
        (row,) = result.tuples
        assert row.rt == IntervalSet([(5, 10)])

    def test_product_drops_disjoint_rts(self):
        left = OngoingRelation(
            Schema.of("A"), [OngoingTuple((1,), IntervalSet([(0, 5)]))]
        )
        right = OngoingRelation(
            Schema.of("B"), [OngoingTuple((2,), IntervalSet([(8, 20)]))]
        )
        assert len(algebra.product(left, right)) == 0

    def test_join_is_selection_over_product(self):
        bugs = _bugs()
        predicate = (col("R.C") == col("S.C")) & col("R.VT").before(col("S.VT"))
        joined = algebra.join(bugs, bugs, predicate, left_name="R", right_name="S")
        selected = algebra.select(
            algebra.product(bugs, bugs, left_name="R", right_name="S"), predicate
        )
        assert joined == selected


class TestUnionDifferenceIntersection:
    def _pair(self):
        schema = Schema.of("K", ("VT", "interval"))
        left = OngoingRelation.from_rows(
            schema, [(1, until_now(d(1, 1))), (2, fixed_interval(d(1, 1), d(2, 1)))]
        )
        right = OngoingRelation.from_rows(schema, [(1, until_now(d(1, 1)))])
        return left, right

    def test_union_is_set_union(self):
        left, right = self._pair()
        assert len(algebra.union(left, right)) == 2

    def test_union_requires_compatible_schemas(self):
        left, _ = self._pair()
        with pytest.raises(SchemaError):
            algebra.union(left, OngoingRelation.from_rows(Schema.of("K"), [(1,)]))

    def test_difference_removes_matching_rts(self):
        left, right = self._pair()
        result = algebra.difference(left, right)
        assert result.column("K") == [2]

    def test_difference_with_partial_rt_overlap(self):
        schema = Schema.of("K")
        left = OngoingRelation(
            schema, [OngoingTuple((1,), IntervalSet([(0, 10)]))]
        )
        right = OngoingRelation(
            schema, [OngoingTuple((1,), IntervalSet([(4, 6)]))]
        )
        result = algebra.difference(left, right)
        (row,) = result.tuples
        assert row.rt == IntervalSet([(0, 4), (6, 10)])

    def test_difference_on_ongoing_attributes_is_per_rt(self):
        # [01/25, now) and [01/25, 03/01) instantiate equally up to 03/01;
        # the difference keeps only the reference times where they differ.
        schema = Schema.of(("VT", "interval"))
        left = OngoingRelation.from_rows(schema, [(until_now(d(1, 25)),)])
        right = OngoingRelation.from_rows(
            schema, [(fixed_interval(d(1, 25), d(3, 1)),)]
        )
        result = algebra.difference(left, right)
        (row,) = result.tuples
        # The two intervals instantiate identically only at rt = 03/01
        # (where now binds to 03/01); the difference keeps every other rt.
        assert row.rt == IntervalSet.point(d(3, 1)).complement()

    def test_intersection_keeps_matching_rts(self):
        left, right = self._pair()
        result = algebra.intersection(left, right)
        assert result.column("K") == [1]


class TestRenameAndCoalesce:
    def test_rename(self):
        renamed = algebra.rename(_bugs(), {"BID": "ID"})
        assert renamed.schema.names == ("ID", "C", "VT")
        assert len(renamed) == 3

    def test_coalesce_merges_rts(self):
        schema = Schema.of("K")
        relation = OngoingRelation(
            schema,
            [
                OngoingTuple((1,), IntervalSet([(0, 5)])),
                OngoingTuple((1,), IntervalSet([(5, 9)])),
            ],
        )
        coalesced = algebra.coalesce(relation)
        (row,) = coalesced.tuples
        assert row.rt == IntervalSet([(0, 9)])


class TestValueEquality:
    def test_fixed_attributes(self):
        schema = Schema.of("K")
        assert algebra.value_equality(schema, (1,), (1,)).is_always_true()
        assert algebra.value_equality(schema, (1,), (2,)).is_always_false()

    def test_ongoing_point_attribute(self):
        schema = Schema.of(("T", "point"))
        result = algebra.value_equality(schema, (fixed(d(10, 17)),), (NOW,))
        assert result.true_set == IntervalSet.point(d(10, 17))

    def test_ongoing_interval_attribute_uses_value_equality(self):
        schema = Schema.of(("VT", "interval"))
        left = (fixed_interval(d(3, 3), d(3, 3)),)   # always empty
        right = (fixed_interval(d(5, 5), d(5, 5)),)  # always empty, different
        # Allen equals would call these equal; value equality must not.
        assert algebra.value_equality(schema, left, right).is_always_false()
