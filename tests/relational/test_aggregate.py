"""Unit tests for RT-aware aggregation (Section X future work)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.errors import PredicateError, SchemaError
from repro.relational.aggregate import (
    count_tuples,
    group_by,
    max_over,
    min_over,
    sum_durations,
)
from repro.relational.relation import OngoingRelation
from repro.relational.schema import AttributeKind, Schema
from repro.relational.tuples import OngoingTuple


def d(month, day):
    return mmdd(month, day)


_SCHEMA = Schema.of("C", "Sev", ("VT", "interval"))


def _bugs() -> OngoingRelation:
    return OngoingRelation(
        _SCHEMA,
        [
            OngoingTuple(("spam", 3, until_now(d(1, 10))), IntervalSet([(0, 200)])),
            OngoingTuple(("spam", 5, until_now(d(2, 10))), IntervalSet([(50, 300)])),
            OngoingTuple(
                ("dash", 1, fixed_interval(d(1, 1), d(3, 1))),
                IntervalSet([(0, 100)]),
            ),
        ],
    )


class TestCount:
    def test_count_follows_reference_times(self):
        count = count_tuples(_bugs())
        assert count.instantiate(-10) == 0
        assert count.instantiate(10) == 2
        assert count.instantiate(60) == 3
        assert count.instantiate(150) == 2
        assert count.instantiate(250) == 1
        assert count.instantiate(500) == 0

    def test_count_matches_bag_semantics_everywhere(self):
        bugs = _bugs()
        count = count_tuples(bugs)
        for rt in range(-20, 350, 7):
            present = sum(1 for item in bugs if rt in item.rt)
            assert count.instantiate(rt) == present


class TestSumDurations:
    def test_sum_combines_ramps_inside_rts(self):
        bugs = _bugs()
        total = sum_durations(bugs, "VT")
        for rt in range(-20, 350, 7):
            expected = 0
            for item in bugs:
                if rt in item.rt:
                    start, end = item.values[2].instantiate(rt)
                    expected += max(0, end - start)
            assert total.instantiate(rt) == expected, rt

    def test_requires_interval_attribute(self):
        with pytest.raises(PredicateError, match="interval"):
            sum_durations(_bugs(), "Sev")


class TestExtrema:
    def test_min_and_max_over_present_tuples(self):
        bugs = _bugs()
        low = min_over(bugs, "Sev", empty_value=-1)
        high = max_over(bugs, "Sev", empty_value=-1)
        assert low.instantiate(10) == 1 and high.instantiate(10) == 3
        assert low.instantiate(60) == 1 and high.instantiate(60) == 5
        assert low.instantiate(150) == 3 and high.instantiate(150) == 5
        assert low.instantiate(500) == -1

    def test_requires_fixed_numeric_attribute(self):
        with pytest.raises(PredicateError):
            min_over(_bugs(), "VT")
        with pytest.raises(PredicateError):
            min_over(_bugs(), "C")


class TestGroupBy:
    def test_group_count(self):
        result = group_by(_bugs(), ["C"], "count")
        assert result.schema.names == ("C", "count")
        assert result.schema.attribute("count").kind is AttributeKind.ONGOING_INTEGER
        by_component = {row.values[0]: row for row in result}
        spam_count = by_component["spam"].values[1]
        assert spam_count.instantiate(10) == 1
        assert spam_count.instantiate(60) == 2
        assert by_component["dash"].values[1].instantiate(10) == 1

    def test_group_rt_is_member_union(self):
        result = group_by(_bugs(), ["C"], "count")
        by_component = {row.values[0]: row for row in result}
        assert by_component["spam"].rt == IntervalSet([(0, 300)])
        assert by_component["dash"].rt == IntervalSet([(0, 100)])

    def test_group_sum_duration(self):
        result = group_by(_bugs(), ["C"], "sum_duration", "VT")
        by_component = {row.values[0]: row for row in result}
        rt = 80
        expected = 0
        for item in _bugs():
            if item.values[0] == "spam" and rt in item.rt:
                start, end = item.values[2].instantiate(rt)
                expected += max(0, end - start)
        assert by_component["spam"].values[1].instantiate(rt) == expected

    def test_group_min_max(self):
        result = group_by(_bugs(), ["C"], "max", "Sev", output_name="worst")
        by_component = {row.values[0]: row for row in result}
        assert by_component["spam"].values[1].instantiate(60) == 5

    def test_instantiation_through_the_relation(self):
        """Group tuples instantiate like any other ongoing tuple."""
        result = group_by(_bugs(), ["C"], "count")
        rows = result.instantiate(60)
        assert ("spam", 2) in rows

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(PredicateError, match="unknown aggregate"):
            group_by(_bugs(), ["C"], "median", "Sev")

    def test_grouping_by_ongoing_attribute_rejected(self):
        with pytest.raises(SchemaError, match="fixed"):
            group_by(_bugs(), ["VT"], "count")

    def test_aggregates_requiring_attributes_reject_none(self):
        with pytest.raises(PredicateError):
            group_by(_bugs(), ["C"], "sum_duration")
        with pytest.raises(PredicateError):
            group_by(_bugs(), ["C"], "min")

    def test_attribute_kinds_checked_even_on_empty_relations(self):
        """Validation is eager: an empty input no longer hides a schema
        error (there used to be no group to trip over it)."""
        empty = OngoingRelation(_SCHEMA, [])
        with pytest.raises(PredicateError):
            group_by(empty, ["C"], "sum_duration", "Sev")
        with pytest.raises(PredicateError):
            group_by(empty, ["C"], "min", "VT")


class TestScalarAggregates:
    """SQL semantics: a scalar aggregate yields one row even over nothing."""

    def test_scalar_count_over_empty_relation_is_constant_zero(self):
        empty = OngoingRelation(_SCHEMA, [])
        result = group_by(empty, [], "count")
        assert len(result) == 1
        (row,) = result.tuples
        for rt in (-100, 0, 60, 10_000):
            assert row.values[0].instantiate(rt) == 0
        assert rt in row.rt  # the constant is valid at every reference time

    def test_scalar_sum_and_extrema_over_empty_relation(self):
        empty = OngoingRelation(_SCHEMA, [])
        for aggregate, attr in (
            ("sum_duration", "VT"),
            ("min", "Sev"),
            ("max", "Sev"),
        ):
            result = group_by(empty, [], aggregate, attr)
            assert len(result) == 1, aggregate
            # MIN/MAX over nothing yield their (default) empty_value — 0,
            # like the standalone min_over/max_over do where no tuple exists.
            assert result.tuples[0].values[0].instantiate(123) == 0

    def test_scalar_aggregate_over_nonempty_relation_unchanged(self):
        result = group_by(_bugs(), [], "count")
        assert len(result) == 1
        assert result.tuples[0].values[0].instantiate(60) == 3

    def test_grouped_aggregate_over_empty_relation_stays_empty(self):
        """Only the *scalar* form materializes a row from nothing — a
        GROUP BY over an empty relation has no groups to show."""
        empty = OngoingRelation(_SCHEMA, [])
        assert len(group_by(empty, ["C"], "count")) == 0


class TestSweepEquivalence:
    """The event sweeps are insensitive to member order — the property the
    delta engine relies on when it re-aggregates a maintained group."""

    def test_results_do_not_depend_on_tuple_order(self):
        tuples = list(_bugs().tuples)
        reordered = OngoingRelation(_SCHEMA, tuples[::-1])
        assert count_tuples(_bugs()) == count_tuples(reordered)
        assert sum_durations(_bugs(), "VT") == sum_durations(reordered, "VT")
        assert min_over(_bugs(), "Sev") == min_over(reordered, "Sev")
        assert max_over(_bugs(), "Sev") == max_over(reordered, "Sev")

    def test_sum_durations_matches_pairwise_addition(self):
        """The one-sweep sum equals the reference pairwise OngoingInt sum."""
        from repro.core.duration import duration
        from repro.core.integer import OngoingInt

        bugs = _bugs()
        position = bugs.schema.index_of("VT")
        total = OngoingInt.constant(0)
        for item in bugs:
            contribution = duration(item.values[position])
            if not item.rt.is_universal():
                contribution = contribution.mask(item.rt)
            total = total + contribution
        assert sum_durations(bugs, "VT") == total


def _wide_relation(n: int) -> OngoingRelation:
    """n members with distinct RT boundaries — the sweeps' worst case."""
    return OngoingRelation(
        _SCHEMA,
        [
            OngoingTuple(
                ("c", i % 97, fixed_interval(i, i + 10)),
                IntervalSet([(i, i + n)]),
            )
            for i in range(n)
        ],
    )


class TestLinearityGuard:
    """Micro-benchmark guard: MIN/MAX/SUM_DURATION must stay near-linear.

    The former implementations re-scanned all members per RT segment
    (O(boundaries × members)) or re-aligned the partial sum per member —
    at this size either would take tens of seconds, so a generous
    wall-clock bound pins the event-sweep complexity without being
    flaky on slow CI runners.
    """

    _MEMBERS = 4_000
    _BUDGET_SECONDS = 2.0

    def test_extrema_and_sum_duration_sweep_in_linear_time(self):
        import time

        relation = _wide_relation(self._MEMBERS)
        started = time.perf_counter()
        low = min_over(relation, "Sev")
        high = max_over(relation, "Sev")
        load = sum_durations(relation, "VT")
        elapsed = time.perf_counter() - started
        assert elapsed < self._BUDGET_SECONDS, (
            f"aggregate sweeps took {elapsed:.2f}s for {self._MEMBERS} "
            f"members — quadratic regression?"
        )
        # Sanity anchors so the guard cannot pass on broken results.
        midpoint = self._MEMBERS
        assert low.instantiate(midpoint) == 0
        assert high.instantiate(midpoint) == 96
        assert load.instantiate(-1) == 0

    def test_group_support_union_is_one_sweep(self):
        """The group-RT union must merge all member intervals in one
        sort+sweep — pairwise IntervalSet.union over members with
        *disjoint* reference times is quadratic."""
        import time

        from repro.relational.aggregate import members_support

        disjoint = OngoingRelation(
            _SCHEMA,
            [
                OngoingTuple(
                    ("c", 1, fixed_interval(0, 1)),
                    IntervalSet([(3 * i, 3 * i + 1)]),
                )
                for i in range(self._MEMBERS)
            ],
        )
        started = time.perf_counter()
        grouped = group_by(disjoint, ["C"], "count")
        elapsed = time.perf_counter() - started
        assert elapsed < self._BUDGET_SECONDS, (
            f"group support union took {elapsed:.2f}s for "
            f"{self._MEMBERS} disjoint members — quadratic regression?"
        )
        (row,) = grouped.tuples
        assert row.rt == members_support(disjoint.tuples)
        assert row.rt.cardinality == self._MEMBERS
