"""Unit tests for RT-aware aggregation (Section X future work)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.errors import PredicateError, SchemaError
from repro.relational.aggregate import (
    count_tuples,
    group_by,
    max_over,
    min_over,
    sum_durations,
)
from repro.relational.relation import OngoingRelation
from repro.relational.schema import AttributeKind, Schema
from repro.relational.tuples import OngoingTuple


def d(month, day):
    return mmdd(month, day)


_SCHEMA = Schema.of("C", "Sev", ("VT", "interval"))


def _bugs() -> OngoingRelation:
    return OngoingRelation(
        _SCHEMA,
        [
            OngoingTuple(("spam", 3, until_now(d(1, 10))), IntervalSet([(0, 200)])),
            OngoingTuple(("spam", 5, until_now(d(2, 10))), IntervalSet([(50, 300)])),
            OngoingTuple(
                ("dash", 1, fixed_interval(d(1, 1), d(3, 1))),
                IntervalSet([(0, 100)]),
            ),
        ],
    )


class TestCount:
    def test_count_follows_reference_times(self):
        count = count_tuples(_bugs())
        assert count.instantiate(-10) == 0
        assert count.instantiate(10) == 2
        assert count.instantiate(60) == 3
        assert count.instantiate(150) == 2
        assert count.instantiate(250) == 1
        assert count.instantiate(500) == 0

    def test_count_matches_bag_semantics_everywhere(self):
        bugs = _bugs()
        count = count_tuples(bugs)
        for rt in range(-20, 350, 7):
            present = sum(1 for item in bugs if rt in item.rt)
            assert count.instantiate(rt) == present


class TestSumDurations:
    def test_sum_combines_ramps_inside_rts(self):
        bugs = _bugs()
        total = sum_durations(bugs, "VT")
        for rt in range(-20, 350, 7):
            expected = 0
            for item in bugs:
                if rt in item.rt:
                    start, end = item.values[2].instantiate(rt)
                    expected += max(0, end - start)
            assert total.instantiate(rt) == expected, rt

    def test_requires_interval_attribute(self):
        with pytest.raises(PredicateError, match="interval"):
            sum_durations(_bugs(), "Sev")


class TestExtrema:
    def test_min_and_max_over_present_tuples(self):
        bugs = _bugs()
        low = min_over(bugs, "Sev", empty_value=-1)
        high = max_over(bugs, "Sev", empty_value=-1)
        assert low.instantiate(10) == 1 and high.instantiate(10) == 3
        assert low.instantiate(60) == 1 and high.instantiate(60) == 5
        assert low.instantiate(150) == 3 and high.instantiate(150) == 5
        assert low.instantiate(500) == -1

    def test_requires_fixed_numeric_attribute(self):
        with pytest.raises(PredicateError):
            min_over(_bugs(), "VT")
        with pytest.raises(PredicateError):
            min_over(_bugs(), "C")


class TestGroupBy:
    def test_group_count(self):
        result = group_by(_bugs(), ["C"], "count")
        assert result.schema.names == ("C", "count")
        assert result.schema.attribute("count").kind is AttributeKind.ONGOING_INTEGER
        by_component = {row.values[0]: row for row in result}
        spam_count = by_component["spam"].values[1]
        assert spam_count.instantiate(10) == 1
        assert spam_count.instantiate(60) == 2
        assert by_component["dash"].values[1].instantiate(10) == 1

    def test_group_rt_is_member_union(self):
        result = group_by(_bugs(), ["C"], "count")
        by_component = {row.values[0]: row for row in result}
        assert by_component["spam"].rt == IntervalSet([(0, 300)])
        assert by_component["dash"].rt == IntervalSet([(0, 100)])

    def test_group_sum_duration(self):
        result = group_by(_bugs(), ["C"], "sum_duration", "VT")
        by_component = {row.values[0]: row for row in result}
        rt = 80
        expected = 0
        for item in _bugs():
            if item.values[0] == "spam" and rt in item.rt:
                start, end = item.values[2].instantiate(rt)
                expected += max(0, end - start)
        assert by_component["spam"].values[1].instantiate(rt) == expected

    def test_group_min_max(self):
        result = group_by(_bugs(), ["C"], "max", "Sev", output_name="worst")
        by_component = {row.values[0]: row for row in result}
        assert by_component["spam"].values[1].instantiate(60) == 5

    def test_instantiation_through_the_relation(self):
        """Group tuples instantiate like any other ongoing tuple."""
        result = group_by(_bugs(), ["C"], "count")
        rows = result.instantiate(60)
        assert ("spam", 2) in rows

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(PredicateError, match="unknown aggregate"):
            group_by(_bugs(), ["C"], "median", "Sev")

    def test_grouping_by_ongoing_attribute_rejected(self):
        with pytest.raises(SchemaError, match="fixed"):
            group_by(_bugs(), ["VT"], "count")

    def test_aggregates_requiring_attributes_reject_none(self):
        with pytest.raises(PredicateError):
            group_by(_bugs(), ["C"], "sum_duration")
        with pytest.raises(PredicateError):
            group_by(_bugs(), ["C"], "min")
