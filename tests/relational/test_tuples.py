"""Unit tests for ongoing tuples and the bind operator on values."""

from repro.core.interval import until_now
from repro.core.intervalset import UNIVERSAL_SET, IntervalSet
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed
from repro.relational.tuples import OngoingTuple, bind_value


class TestBindValue:
    def test_fixed_values_pass_through(self):
        assert bind_value(42, 10) == 42
        assert bind_value("spam", 10) == "spam"
        assert bind_value(None, 10) is None

    def test_ongoing_point_instantiates(self):
        assert bind_value(NOW, mmdd(8, 15)) == mmdd(8, 15)
        assert bind_value(fixed(3), 10) == 3

    def test_ongoing_interval_instantiates_componentwise(self):
        value = bind_value(until_now(mmdd(1, 25)), mmdd(8, 15))
        assert value == (mmdd(1, 25), mmdd(8, 15))


class TestOngoingTuple:
    def test_defaults_to_trivial_rt(self):
        item = OngoingTuple((1, "a"))
        assert item.rt is UNIVERSAL_SET

    def test_restrict_intersects_rt(self):
        item = OngoingTuple((1,), IntervalSet([(0, 10)]))
        restricted = item.restrict(IntervalSet([(5, 20)]))
        assert restricted.rt == IntervalSet([(5, 10)])
        assert restricted.values == item.values

    def test_with_rt_replaces(self):
        item = OngoingTuple((1,))
        assert item.with_rt(IntervalSet([(0, 1)])).rt == IntervalSet([(0, 1)])

    def test_instantiate_inside_rt(self):
        item = OngoingTuple((500, until_now(mmdd(1, 25))), IntervalSet([(0, 300)]))
        assert item.instantiate(mmdd(8, 15)) == (500, (mmdd(1, 25), mmdd(8, 15)))

    def test_instantiate_outside_rt_returns_none(self):
        item = OngoingTuple((500,), IntervalSet([(0, 10)]))
        assert item.instantiate(50) is None

    def test_equality_includes_rt(self):
        a = OngoingTuple((1,), IntervalSet([(0, 10)]))
        b = OngoingTuple((1,), IntervalSet([(0, 10)]))
        c = OngoingTuple((1,), IntervalSet([(0, 11)]))
        assert a == b and a != c
        assert len({a, b, c}) == 2

    def test_format_renders_ongoing_values(self):
        item = OngoingTuple((500, until_now(mmdd(1, 25))))
        assert "[01/25, now)" in item.format()
        assert "RT={(-inf, inf)}" in item.format()
