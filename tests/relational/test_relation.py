"""Unit tests for ongoing relations and the bind operator on relations."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.errors import SchemaError
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple

_SCHEMA = Schema.of("BID", ("VT", "interval"))


class TestConstruction:
    def test_from_rows_assigns_trivial_rt(self):
        relation = OngoingRelation.from_rows(_SCHEMA, [(1, until_now(0))])
        assert all(item.rt.is_universal() for item in relation)

    def test_duplicates_removed(self):
        row = OngoingTuple((1, until_now(0)))
        relation = OngoingRelation(_SCHEMA, [row, row])
        assert len(relation) == 1

    def test_same_values_different_rt_are_distinct(self):
        a = OngoingTuple((1, until_now(0)), IntervalSet([(0, 5)]))
        b = OngoingTuple((1, until_now(0)), IntervalSet([(5, 9)]))
        assert len(OngoingRelation(_SCHEMA, [a, b])) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError, match="values"):
            OngoingRelation(_SCHEMA, [OngoingTuple((1,))])

    def test_insertion_order_is_stable(self):
        rows = [(i, until_now(i)) for i in range(5)]
        relation = OngoingRelation.from_rows(_SCHEMA, rows)
        assert relation.column("BID") == [0, 1, 2, 3, 4]


class TestBindOperator:
    def test_omits_tuples_outside_rt(self):
        inside = OngoingTuple((1, fixed_interval(0, 5)), IntervalSet([(0, 10)]))
        outside = OngoingTuple((2, fixed_interval(0, 5)), IntervalSet([(20, 30)]))
        relation = OngoingRelation(_SCHEMA, [inside, outside])
        assert relation.instantiate(5) == frozenset({(1, (0, 5))})

    def test_instantiates_ongoing_attributes(self):
        relation = OngoingRelation.from_rows(_SCHEMA, [(1, until_now(mmdd(1, 25)))])
        assert relation.instantiate(mmdd(2, 1)) == frozenset(
            {(1, (mmdd(1, 25), mmdd(2, 1)))}
        )

    def test_result_is_a_set(self):
        # Two tuples that instantiate identically at rt collapse to one.
        a = OngoingTuple((1, fixed_interval(0, 5)), IntervalSet([(0, 10)]))
        b = OngoingTuple((1, fixed_interval(0, 5)), IntervalSet([(5, 15)]))
        relation = OngoingRelation(_SCHEMA, [a, b])
        assert len(relation.instantiate(7)) == 1


class TestIntrospection:
    def test_rt_cardinalities(self):
        a = OngoingTuple((1, until_now(0)), IntervalSet([(0, 5), (7, 9)]))
        b = OngoingTuple((2, until_now(0)), IntervalSet([(0, 5)]))
        relation = OngoingRelation(_SCHEMA, [a, b])
        assert relation.rt_cardinalities() == [2, 1]

    def test_equality_is_set_like(self):
        a = OngoingTuple((1, until_now(0)))
        b = OngoingTuple((2, until_now(3)))
        assert OngoingRelation(_SCHEMA, [a, b]) == OngoingRelation(_SCHEMA, [b, a])

    def test_format_truncates(self):
        rows = [(i, until_now(i)) for i in range(30)]
        relation = OngoingRelation.from_rows(_SCHEMA, rows)
        text = relation.format(max_rows=3)
        assert "27 more" in text
