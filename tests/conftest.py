"""Shared hypothesis strategies and helpers for the test suite.

The central testing idea mirrors the paper's Definition 4: an operation on
ongoing values is correct iff, at **every** reference time, its result
instantiates to the fixed operation applied to the instantiated inputs.
Truth values of our operations can only change at the *component values* of
their operands (and their successors), so :func:`critical_points` returns a
complete set of reference times to check — the assertions are exhaustive,
not sampled.
"""

from __future__ import annotations

from typing import Iterable, List

import hypothesis
from hypothesis import strategies as st

from repro.core.interval import OngoingInterval
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF
from repro.core.timepoint import OngoingTimePoint

hypothesis.settings.register_profile(
    "repro", max_examples=60, deadline=None, derandomize=True
)
hypothesis.settings.load_profile("repro")


def pytest_configure(config):
    # The concurrency suite (tests/serve) marks its stress tests with
    # @pytest.mark.timeout(...).  The marker is enforced by pytest-timeout
    # where installed (CI); registering it here keeps the suite runnable
    # without the plugin — the tests carry their own join() deadlines, so
    # they fail rather than hang either way.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout, enforced by pytest-timeout "
        "when installed (registered as a no-op fallback otherwise)",
    )

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Finite component values; small so critical-point sweeps stay cheap.
finite_points = st.integers(min_value=-30, max_value=30)

#: Component values including the domain limits.
component_points = st.one_of(
    finite_points, st.just(MINUS_INF), st.just(PLUS_INF)
)


@st.composite
def ongoing_points(draw) -> OngoingTimePoint:
    """Arbitrary elements ``a+b`` of Ω (including fixed/now/growing/limited)."""
    a = draw(component_points)
    b = draw(component_points)
    if a > b:
        a, b = b, a
    return OngoingTimePoint(a, b)


@st.composite
def ongoing_intervals(draw) -> OngoingInterval:
    """Arbitrary ongoing intervals (possibly always/partially empty)."""
    return OngoingInterval(draw(ongoing_points()), draw(ongoing_points()))


@st.composite
def interval_sets(draw) -> IntervalSet:
    """Arbitrary normalized interval sets over the finite grid."""
    raw = draw(
        st.lists(
            st.tuples(finite_points, finite_points).map(
                lambda pair: (min(pair), max(pair) + 1)
            ),
            max_size=5,
        )
    )
    extras = []
    if draw(st.booleans()):
        extras.append((MINUS_INF, draw(finite_points)))
    if draw(st.booleans()):
        extras.append((draw(finite_points), PLUS_INF))
    return IntervalSet(raw + extras)


# ----------------------------------------------------------------------
# Reference time sweeps
# ----------------------------------------------------------------------


def critical_points(*values: object) -> List[int]:
    """A complete set of reference times for the given operands.

    Includes every finite component value, its predecessor and successor,
    the far past/future, and ``MINUS_INF``.  Between consecutive critical
    points all our piecewise-constant constructions keep their value, so
    checking these points checks all reference times.
    """
    components: set[int] = set()
    for value in values:
        if isinstance(value, OngoingTimePoint):
            components.update(value.components())
        elif isinstance(value, OngoingInterval):
            components.update(value.components())
        elif isinstance(value, IntervalSet):
            for start, end in value:
                components.add(start)
                components.add(end)
        elif isinstance(value, int):
            components.add(value)
    finite = sorted(c for c in components if MINUS_INF < c < PLUS_INF)
    points = {MINUS_INF, -100, 100}
    for component in finite:
        points.update((component - 1, component, component + 1))
    return sorted(points)


def instantiate_set(rts: Iterable[int], value) -> List[object]:
    """Instantiate *value* at each rt (for table-style comparisons)."""
    return [value.instantiate(rt) for rt in rts]
