"""Unit tests for the Forever baseline and the paper's counter-example."""

from repro.baselines import clifford
from repro.baselines.forever import (
    FOREVER,
    forever_point,
    forever_relation,
    forever_value,
)
from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.timeline import PLUS_INF, mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


class TestSubstitution:
    def test_fixed_points_survive(self):
        assert forever_point(fixed(5)) == fixed(5)

    def test_every_ongoing_kind_collapses(self):
        for point in (NOW, growing(3), OngoingTimePoint(2, 9)):
            assert forever_point(point) == fixed(FOREVER)

    def test_forever_is_the_domain_maximum(self):
        assert FOREVER == PLUS_INF

    def test_values_and_intervals(self):
        assert forever_value("text") == "text"
        interval = forever_value(until_now(d(1, 25)))
        assert interval.end == fixed(FOREVER)

    def test_relation_substitution_preserves_fixed_rows(self):
        schema = Schema.of("BID", ("VT", "interval"))
        relation = OngoingRelation.from_rows(
            schema,
            [(1, until_now(d(1, 25))), (2, fixed_interval(d(1, 1), d(2, 1)))],
        )
        substituted = forever_relation(relation)
        by_id = {row.values[0]: row.values[1] for row in substituted}
        assert by_id[1].end == fixed(FOREVER)
        assert by_id[2] == fixed_interval(d(1, 1), d(2, 1))


class TestPaperCounterExample:
    """Section III: 'Which bugs might be resolved before patch 201 goes
    live?' answered at reference time 05/14 — Forever loses bug 500."""

    def test_forever_loses_bug_500(self):
        schema = Schema.of("BID", ("VT", "interval"))
        bugs = OngoingRelation.from_rows(schema, [(500, until_now(d(1, 25)))])
        patch_window = (d(8, 15), d(8, 24))
        rt = d(5, 14)

        correct = clifford.selection(
            clifford.bind_relation(bugs, rt), 1, "before", patch_window
        )
        wrong = clifford.selection(
            clifford.bind_relation(forever_relation(bugs), rt),
            1,
            "before",
            patch_window,
        )
        assert any(row[0] == 500 for row in correct)
        assert not any(row[0] == 500 for row in wrong)
