"""Unit tests for the Torp et al. Tf-domain baseline."""

import pytest

from repro.baselines.torp import NotRepresentableError, TfInterval, TfTimePoint
from repro.core.timeline import MINUS_INF, PLUS_INF, mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited

from tests.conftest import critical_points


def d(month, day):
    return mmdd(month, day)


class TestInstantiation:
    def test_fixed(self):
        assert TfTimePoint.fixed(5).instantiate(100) == 5

    def test_min_now(self):
        point = TfTimePoint.min_now(5)
        assert point.instantiate(3) == 3
        assert point.instantiate(9) == 5

    def test_max_now(self):
        point = TfTimePoint.max_now(5)
        assert point.instantiate(3) == 5
        assert point.instantiate(9) == 9

    def test_now(self):
        assert TfTimePoint.now().instantiate(42) == 42


class TestOmegaEmbedding:
    def test_to_omega_preserves_semantics(self):
        for point in (
            TfTimePoint.fixed(5),
            TfTimePoint.min_now(5),
            TfTimePoint.max_now(5),
            TfTimePoint.now(),
        ):
            omega = point.to_omega()
            for rt in critical_points(omega):
                assert omega.instantiate(rt) == point.instantiate(rt)

    def test_from_omega_roundtrip(self):
        for point in (fixed(3), limited(7), growing(2), NOW):
            assert TfTimePoint.from_omega(point).to_omega() == point

    def test_from_omega_rejects_general_points(self):
        with pytest.raises(NotRepresentableError):
            TfTimePoint.from_omega(OngoingTimePoint(3, 8))


class TestMinMaxClosure:
    def test_min_of_fixed_and_now_stays_in_tf(self):
        result = TfTimePoint.fixed(5).minimum(TfTimePoint.now())
        assert result == TfTimePoint.min_now(5)

    def test_max_of_growing_points_stays_in_tf(self):
        result = TfTimePoint.max_now(3).maximum(TfTimePoint.max_now(7))
        assert result == TfTimePoint.max_now(7)

    def test_non_closure_witness(self):
        """max(min(a, now), b) with b < a leaves Tf (Table I)."""
        with pytest.raises(NotRepresentableError):
            TfTimePoint.min_now(8).maximum(TfTimePoint.fixed(3))

    def test_min_non_closure_witness(self):
        """min(max(a, now), b) with a < b leaves Tf."""
        with pytest.raises(NotRepresentableError):
            TfTimePoint.max_now(3).minimum(TfTimePoint.fixed(8))


class TestIntervals:
    def test_intersection_keeps_now(self):
        left = TfInterval(TfTimePoint.fixed(d(1, 25)), TfTimePoint.now())
        right = TfInterval(TfTimePoint.fixed(d(3, 1)), TfTimePoint.now())
        result = left.intersect(right)
        assert result.start == TfTimePoint.fixed(d(3, 1))
        assert result.end == TfTimePoint.now()

    def test_intersection_with_fixed_end_uses_min_now(self):
        left = TfInterval(TfTimePoint.fixed(d(1, 25)), TfTimePoint.now())
        right = TfInterval(TfTimePoint.fixed(d(1, 25)), TfTimePoint.fixed(d(8, 1)))
        result = left.intersect(right)
        assert result.end == TfTimePoint.min_now(d(8, 1))

    def test_intersection_matches_pointwise_semantics(self):
        left = TfInterval(TfTimePoint.fixed(10), TfTimePoint.now())
        right = TfInterval(TfTimePoint.fixed(5), TfTimePoint.fixed(30))
        result = left.intersect(right)
        for rt in range(0, 50, 3):
            ls, le = left.instantiate(rt)
            rs, re = right.instantiate(rt)
            assert result.instantiate(rt) == (max(ls, rs), min(le, re))

    def test_difference_remainders(self):
        """[a, now) - [b, c) keeps Torp's modification semantics valid."""
        source = TfInterval(TfTimePoint.fixed(0), TfTimePoint.now())
        removed = TfInterval(TfTimePoint.fixed(10), TfTimePoint.fixed(20))
        left_part, right_part = source.difference(removed)
        for rt in range(0, 40, 3):
            remaining = set()
            for part in (left_part, right_part):
                start, end = part.instantiate(rt)
                remaining.update(range(start, max(start, end)))
            source_points = set(range(*source.instantiate(rt)))
            removed_points = set(range(10, 20))
            assert remaining == source_points - removed_points, rt

    def test_format(self):
        interval = TfInterval(TfTimePoint.fixed(3), TfTimePoint.now())
        assert interval.format() == "[3, now)"
