"""Unit tests for the fixed-interval predicate library."""

import pytest

from repro.baselines import fixed_algebra as fa


class TestBasicRelations:
    def test_before(self):
        assert fa.before_f((1, 3), (3, 5))
        assert fa.before_f((1, 3), (4, 5))
        assert not fa.before_f((1, 4), (3, 5))

    def test_meets(self):
        assert fa.meets_f((1, 3), (3, 5))
        assert not fa.meets_f((1, 3), (4, 5))

    def test_overlaps_is_symmetric_sharing(self):
        assert fa.overlaps_f((1, 4), (3, 6))
        assert fa.overlaps_f((3, 6), (1, 4))
        assert fa.overlaps_f((1, 10), (3, 4))  # containment counts
        assert not fa.overlaps_f((1, 3), (3, 6))  # touching does not

    def test_starts_finishes(self):
        assert fa.starts_f((1, 3), (1, 8))
        assert not fa.starts_f((1, 3), (2, 8))
        assert fa.finishes_f((5, 8), (1, 8))
        assert not fa.finishes_f((5, 7), (1, 8))

    def test_during_and_contains(self):
        assert fa.during_f((3, 5), (1, 8))
        assert fa.during_f((1, 8), (1, 8))  # non-strict per Table II
        assert fa.contains_f((1, 8), (3, 5))

    def test_equals(self):
        assert fa.equals_f((1, 3), (1, 3))
        assert not fa.equals_f((1, 3), (1, 4))

    def test_inverses(self):
        assert fa.after_f((4, 6), (1, 3)) == fa.before_f((1, 3), (4, 6))
        assert fa.met_by_f((3, 6), (1, 3)) == fa.meets_f((1, 3), (3, 6))
        assert fa.started_by_f((1, 8), (1, 3)) == fa.starts_f((1, 3), (1, 8))
        assert fa.finished_by_f((1, 8), (5, 8)) == fa.finishes_f((5, 8), (1, 8))


class TestEmptyIntervalConventions:
    EMPTY = (5, 5)
    OTHER_EMPTY = (9, 2)
    FULL = (1, 8)

    def test_empty_never_before_meets_overlaps(self):
        assert not fa.before_f(self.EMPTY, self.FULL)
        assert not fa.meets_f(self.EMPTY, self.FULL)
        assert not fa.overlaps_f(self.EMPTY, self.FULL)
        assert not fa.starts_f(self.EMPTY, self.FULL)
        assert not fa.finishes_f(self.EMPTY, self.FULL)

    def test_empty_during_non_empty(self):
        assert fa.during_f(self.EMPTY, self.FULL)
        assert not fa.during_f(self.EMPTY, self.OTHER_EMPTY)

    def test_empty_equals_empty(self):
        assert fa.equals_f(self.EMPTY, self.OTHER_EMPTY)
        assert not fa.equals_f(self.EMPTY, self.FULL)


class TestFunctions:
    def test_intersect(self):
        assert fa.intersect_f((1, 6), (4, 9)) == (4, 6)
        start, end = fa.intersect_f((1, 3), (5, 9))
        assert start >= end  # empty

    def test_contains_point(self):
        assert fa.contains_point_f((1, 5), 1)
        assert not fa.contains_point_f((1, 5), 5)

    def test_is_empty(self):
        assert fa.is_empty((3, 3))
        assert not fa.is_empty((3, 4))

    def test_registry_is_complete(self):
        assert set(fa.FIXED_PREDICATES) == {
            "before", "after", "meets", "met_by", "overlaps", "starts",
            "started_by", "finishes", "finished_by", "during", "contains",
            "interval_equals",
        }
