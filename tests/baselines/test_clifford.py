"""Unit tests for the Clifford instantiate-when-accessed baseline."""

import pytest

from repro.baselines import clifford
from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


def d(month, day):
    return mmdd(month, day)


_SCHEMA = Schema.of("BID", ("VT", "interval"))


def _bugs() -> OngoingRelation:
    return OngoingRelation.from_rows(
        _SCHEMA,
        [(500, until_now(d(1, 25))), (501, fixed_interval(d(3, 30), d(8, 21)))],
    )


class TestBindRelation:
    def test_instantiates_ongoing_attributes(self):
        rows = clifford.bind_relation(_bugs(), d(5, 14))
        assert (500, (d(1, 25), d(5, 14))) in rows

    def test_respects_reference_time_attribute(self):
        relation = OngoingRelation(
            _SCHEMA,
            [OngoingTuple((1, fixed_interval(0, 5)), IntervalSet([(0, 10)]))],
        )
        assert clifford.bind_relation(relation, 5) != []
        assert clifford.bind_relation(relation, 50) == []

    def test_returns_list_not_set(self):
        rows = clifford.bind_relation(_bugs(), d(5, 14))
        assert isinstance(rows, list)


class TestFixedExecutor:
    def test_selection(self):
        rows = clifford.bind_relation(_bugs(), d(5, 14))
        hits = clifford.selection(rows, 1, "before", (d(8, 15), d(8, 24)))
        assert [row[0] for row in hits] == [500]

    def test_hash_join_matches_nested_loop(self):
        left = [(1, "a"), (2, "b"), (1, "c")]
        right = [(1, "x"), (3, "y")]
        joined = clifford.hash_join(left, right, [0], [0])
        expected = [l + r for l in left for r in right if l[0] == r[0]]
        assert sorted(joined) == sorted(expected)

    def test_hash_join_residual(self):
        left = [(1, 5), (1, 9)]
        right = [(1, 6)]
        joined = clifford.hash_join(
            left, right, [0], [0], residual=lambda l, r: l[1] < r[1]
        )
        assert joined == [(1, 5, 1, 6)]

    def test_sweep_join_matches_nested_loop(self):
        import random

        rng = random.Random(3)
        rows = [
            (i, (s := rng.randrange(0, 100), s + rng.randrange(1, 20)))
            for i in range(60)
        ]
        swept = clifford.sweep_join(rows, rows, 1, 1, "overlaps")
        from repro.baselines.fixed_algebra import overlaps_f

        expected = [
            l + r for l in rows for r in rows if overlaps_f(l[1], r[1])
        ]
        assert sorted(swept) == sorted(expected)


class TestCliffMax:
    def test_exceeds_every_finite_end_point(self):
        rt = clifford.cliff_max_reference_time(_bugs())
        assert rt == d(8, 21) + 1

    def test_considers_multiple_relations(self):
        other = OngoingRelation.from_rows(
            _SCHEMA, [(900, fixed_interval(d(9, 1), d(9, 30)))]
        )
        rt = clifford.cliff_max_reference_time(_bugs(), other)
        assert rt == d(9, 30) + 1

    def test_rejects_purely_infinite_data(self):
        from repro.core.timepoint import NOW
        from repro.core.interval import OngoingInterval

        relation = OngoingRelation.from_rows(
            _SCHEMA, [(1, OngoingInterval(NOW, NOW))]
        )
        with pytest.raises(ValueError):
            clifford.cliff_max_reference_time(relation)


class TestInvalidation:
    def test_results_differ_across_reference_times(self):
        """The motivating defect: Clifford's answers go stale."""
        bugs = _bugs()
        early = clifford.selection(
            clifford.bind_relation(bugs, d(5, 14)), 1, "before", (d(8, 15), d(8, 24))
        )
        late = clifford.selection(
            clifford.bind_relation(bugs, d(8, 20)), 1, "before", (d(8, 15), d(8, 24))
        )
        assert {row[0] for row in early} != {row[0] for row in late}
