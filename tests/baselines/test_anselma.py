"""Unit tests for the Anselma et al. (T ∪ {now}) baseline."""

import pytest

from repro.baselines.anselma import AnselmaInterval, AnselmaPoint
from repro.core.timeline import mmdd
from repro.errors import InstantiationError


def d(month, day):
    return mmdd(month, day)


class TestPoints:
    def test_now_instantiates_to_rt(self):
        assert AnselmaPoint.now().instantiate(42) == 42

    def test_fixed_instantiates_to_itself(self):
        assert AnselmaPoint.at(5).instantiate(42) == 5

    def test_omega_embedding(self):
        from repro.core.timepoint import NOW, fixed

        assert AnselmaPoint.now().to_omega() == NOW
        assert AnselmaPoint.at(5).to_omega() == fixed(5)

    def test_format(self):
        assert AnselmaPoint.now().format() == "now"
        assert AnselmaPoint.at(5).format() == "5"


class TestIntersection:
    def test_paper_example_keeps_now(self):
        """[10/14, now) ∩ [10/17, now) = [10/17, now) — no instantiation."""
        result = AnselmaInterval.make(d(10, 14), None).intersect(
            AnselmaInterval.make(d(10, 17), None)
        )
        assert not result.instantiated
        assert result.interval.start.value == d(10, 17)
        assert result.interval.end.is_now

    def test_both_fixed_keeps_fixed(self):
        result = AnselmaInterval.make(1, 5).intersect(AnselmaInterval.make(3, 9))
        assert not result.instantiated
        assert result.interval.instantiate(100) == (3, 5)

    def test_paper_example_forces_instantiation(self):
        """[10/17, 10/22) ∩ [10/17, now) = [10/17, 10/20) at rt = 10/20."""
        result = AnselmaInterval.make(d(10, 17), d(10, 22)).intersect(
            AnselmaInterval.make(d(10, 17), None), rt=d(10, 20)
        )
        assert result.instantiated
        assert result.reference_time == d(10, 20)
        assert result.interval.instantiate(d(10, 20)) == (d(10, 17), d(10, 20))

    def test_forced_instantiation_without_rt_raises(self):
        with pytest.raises(InstantiationError):
            AnselmaInterval.make(d(10, 17), d(10, 22)).intersect(
                AnselmaInterval.make(d(10, 17), None)
            )

    def test_instantiated_result_is_only_valid_at_its_rt(self):
        """The defect the ongoing approach removes: the bound result is
        wrong at other reference times."""
        left = AnselmaInterval.make(d(10, 17), d(10, 22))
        right = AnselmaInterval.make(d(10, 17), None)
        bound = left.intersect(right, rt=d(10, 20)).interval
        other_rt = d(10, 25)
        exact = (
            max(left.instantiate(other_rt)[0], right.instantiate(other_rt)[0]),
            min(left.instantiate(other_rt)[1], right.instantiate(other_rt)[1]),
        )
        assert bound.instantiate(other_rt) != exact
