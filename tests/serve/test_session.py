"""The serving session: sharded flushes, async delivery, serve loop, stats."""

import threading
import time

import pytest

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_insert
from repro.engine.plan import scan
from repro.errors import QueryError
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _database():
    db = Database("serve-session")
    r = db.create_table("R", Schema.of("K", ("VT", "interval")))
    s = db.create_table("S", Schema.of("K", ("VT", "interval")))
    for i in range(12):
        r.insert(i % 4, until_now(i))
        s.insert(i % 4, until_now(i + 1))
    return db


def _plans():
    return {
        "filter": scan("R").where(col("K") == lit(1)),
        "join": scan("R").join(
            scan("S"), on=col("R.K") == col("S.K"), left_name="R", right_name="S"
        ),
        "union": scan("R").union(scan("S")),
        "project": scan("S").select_columns("K"),
    }


class TestShardedFlush:
    def test_results_match_serial_session(self):
        db_a, db_b = _database(), _database()
        serial = LiveSession(db_a)
        sharded = LiveSession(db_b, flush_shards=4)
        subs_a = {k: serial.subscribe(p) for k, p in _plans().items()}
        subs_b = {k: sharded.subscribe(p) for k, p in _plans().items()}
        for db in (db_a, db_b):
            current_insert(db.table("R"), (1,), at=20)
            current_delete(
                db.table("S"), lambda row: row.values[0] == 2, at=21
            )
        assert serial.flush() == sharded.flush()
        for key in _plans():
            assert frozenset(subs_a[key].result.tuples) == frozenset(
                subs_b[key].result.tuples
            )
        sharded.close()
        serial.close()

    def test_per_shard_flush_counts_sum_to_refreshes(self):
        db = _database()
        session = LiveSession(db, flush_shards=3)
        for plan in _plans().values():
            session.subscribe(plan)
        current_insert(db.table("R"), (1,), at=20)
        current_insert(db.table("S"), (2,), at=20)
        refreshed = session.flush()
        stats = session.stats()
        assert refreshed == len(_plans())
        assert sum(stats["shard_flushes"]) == refreshed
        assert len(stats["shard_flushes"]) == 3
        assert stats["flush_shards"] == 3
        session.close()

    def test_refresh_errors_stay_isolated_per_shard(self):
        db = _database()
        session = LiveSession(db, flush_shards=2)
        doomed = session.subscribe(scan("R").where(col("K") > lit(0)))
        survivor = session.subscribe(_plans()["union"])
        errors = []
        session.bus.subscribe("error", errors.append)
        db.table("R").insert(None, until_now(5))  # poisons the filter
        assert session.flush() >= 1
        assert survivor.stats.refreshes == 1
        assert session.stats()["repro_live_refresh_errors_total"] == 1
        assert errors and errors[0][0] == doomed.fingerprint
        session.close()


class TestReviewRegressions:
    def test_auto_flush_with_shards_does_not_deadlock(self):
        """auto_flush fires inside the modification hook — under the
        database write lock.  With flush_shards the flush must run in the
        background: a shard worker re-evaluating fully needs that same
        lock, so an inline flush would deadlock against its own writer."""
        db = _database()
        session = LiveSession(db, flush_shards=2, auto_flush=True)
        sub = session.subscribe(_plans()["filter"])
        # replace_all is untyped (full-flagged delta): the refresh takes
        # the full re-evaluation path that needs the write lock.
        db.table("R").replace_all(db.table("R").rows())
        db.table("R").insert(1, until_now(25))
        expected = frozenset(db.query(_plans()["filter"]).tuples)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if (
                session.pending == 0
                and frozenset(sub.result.tuples) == expected
            ):
                break
            time.sleep(0.01)
        assert session.pending == 0, "background auto-flush never completed"
        assert frozenset(sub.result.tuples) == expected
        session.close()

    def test_write_racing_a_full_refresh_keeps_its_dirty_mark(self):
        """A write that lands after a full re-evaluation re-read the
        tables must keep the plan dirty even when the maintainer never
        accumulates row deltas (incremental=False, unsupported plans)."""
        db = _database()
        session = LiveSession(db, incremental=False)
        sub = session.subscribe(_plans()["filter"])
        (shared,) = session.shared_results()
        real_refresh = shared.refresh

        def racing_refresh(database, **kwargs):
            delta = real_refresh(database, **kwargs)
            # The race window: a writer slips in after the re-read but
            # before the manager decides the dirty mark's fate.
            current_insert(db.table("R"), (1,), at=90)
            return delta

        shared.refresh = racing_refresh
        current_insert(db.table("R"), (1,), at=89)
        session.flush()
        shared.refresh = real_refresh
        assert session.pending == 1, "the racing write lost its dirty mark"
        session.flush()
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_plans()["filter"]).tuples
        )
        session.close()

    def test_stop_serving_during_debounce_returns_promptly(self):
        """stop_serving() racing the debounce window must not have its
        wakeup erased by the loop's clear() — that used to strand the
        loop on an event nobody would ever set again."""
        db = _database()
        session = LiveSession(db, flush_shards=1)
        session.serve(debounce=0.2)
        session.subscribe(_plans()["filter"])
        db.table("R").insert(1, until_now(30))  # loop enters its debounce
        time.sleep(0.05)
        started = time.monotonic()
        session.stop_serving()
        assert time.monotonic() - started < 5, "serve loop missed the stop"
        assert not session.serving
        session.close()

    def test_live_session_is_a_singleton_under_concurrent_first_calls(self):
        db = _database()
        sessions = []
        threads = [
            threading.Thread(target=lambda: sessions.append(db.live_session()))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(sessions) == 8
        assert len({id(session) for session in sessions}) == 1
        sessions[0].close()


class TestAsyncDelivery:
    def test_notifications_arrive_on_worker_threads(self):
        db = _database()
        session = LiveSession(db, delivery_workers=2, backpressure="block")
        main = threading.get_ident()
        received = []
        session.subscribe(
            _plans()["filter"],
            on_refresh=lambda event: received.append(threading.get_ident()),
        )
        current_insert(db.table("R"), (1,), at=20)
        session.flush()
        assert session.bus.drain(timeout=5)
        assert received and all(ident != main for ident in received)
        session.close()

    def test_exactly_once_in_order_per_subscription(self):
        db = _database()
        session = LiveSession(db, delivery_workers=3, backpressure="block")
        sizes = []
        session.subscribe(
            _plans()["union"],
            on_refresh=lambda event: sizes.append(len(event.result.tuples)),
        )
        rounds = 6
        for i in range(rounds):
            db.table("R").insert(100 + i, until_now(25 + i))
            session.flush()
        assert session.bus.drain(timeout=10)
        # One notification per changing flush, in flush order: the union
        # grows by one row each round, so the sizes strictly increase.
        assert len(sizes) == rounds
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == rounds
        stats = session.stats()
        assert stats["repro_serve_queued_notifications_total"] == rounds
        assert stats["repro_serve_delivered_notifications_total"] == rounds
        assert stats["repro_serve_dropped_notifications_total"] == 0
        session.close()

    def test_coalesce_backpressure_counts_and_merges(self):
        db = _database()
        session = LiveSession(
            db, delivery_workers=1, queue_capacity=1, backpressure="coalesce"
        )
        release = threading.Event()
        received = []

        def subscriber(event):
            if not received:
                release.wait(timeout=10)
            received.append(event)

        session.subscribe(_plans()["filter"], on_refresh=subscriber)
        current_insert(db.table("R"), (1,), at=20)
        session.flush()  # delivery #1 jams the only worker
        time.sleep(0.05)
        for i in range(3):  # three more refreshes pile onto capacity 1
            current_insert(db.table("R"), (1,), at=21 + i)
            session.flush()
        release.set()
        assert session.bus.drain(timeout=10)
        stats = session.stats()
        assert stats["repro_serve_coalesced_notifications_total"] == 2
        # queued and coalesced partition the admitted notifications: two
        # occupied queue slots (delivered separately), two merged into the
        # waiting one.  4 would mean the old double-count.
        assert stats["repro_serve_queued_notifications_total"] == 2
        assert stats["repro_serve_queued_notifications_total"] + stats["repro_serve_coalesced_notifications_total"] == 4
        assert len(received) == 2
        final = received[-1]
        # The coalesced notification carries the merged result-level
        # delta: all three late inserts, none lost.
        assert final.delta is not None and len(final.delta.inserted) == 3
        assert frozenset(final.result.tuples) == frozenset(
            db.query(_plans()["filter"]).tuples
        )
        session.close()

    def test_per_subscription_policy_override(self):
        db = _database()
        session = LiveSession(
            db, delivery_workers=1, queue_capacity=1, backpressure="coalesce"
        )
        release = threading.Event()
        audit = []

        def auditor(event):
            if not audit:
                release.wait(timeout=10)
            audit.append(event)

        session.subscribe(
            _plans()["filter"],
            on_refresh=auditor,
            backpressure="block",
            queue_capacity=64,
        )
        current_insert(db.table("R"), (1,), at=20)
        session.flush()
        time.sleep(0.05)
        for i in range(3):
            current_insert(db.table("R"), (1,), at=21 + i)
            session.flush()
        release.set()
        assert session.bus.drain(timeout=10)
        # A blocking subscriber hears every refresh individually.
        assert len(audit) == 4
        assert session.stats()["repro_serve_coalesced_notifications_total"] == 0
        session.close()


class TestResultStoreStats:
    def test_snapshot_counters_flow_through_session_stats(self):
        db = _database()
        session = LiveSession(db)
        a = session.subscribe(_plans()["join"])
        b = session.subscribe(_plans()["join"])  # same fingerprint
        baseline = session.stats()["repro_store_snapshots_taken_total"]
        # Three delta refreshes nobody reads: no snapshot is taken.
        for i in range(3):
            current_insert(db.table("R"), (1,), at=30 + i)
            session.flush()
        stats = session.stats()
        assert stats["repro_live_delta_refreshes_total"] == 3
        assert stats["repro_store_snapshots_taken_total"] == baseline
        # Both subscribers read: one copy is taken, the other read reuses
        # — exactly one of each (a read is one store access, not two).
        reused_baseline = session.stats()["repro_store_snapshots_reused_total"]
        assert a.result is b.result
        stats = session.stats()
        assert stats["repro_store_snapshots_taken_total"] == baseline + 1
        assert stats["repro_store_snapshots_reused_total"] == reused_baseline + 1
        assert stats["repro_store_state_evictions_total"] == 0
        assert stats["repro_store_state_rebuilds_total"] == 0
        session.close()

    def test_eviction_counters_flow_through_session_stats(self):
        db = _database()
        session = LiveSession(db, state_budget_bytes=1)
        sub = session.subscribe(_plans()["join"])
        assert session.stats()["repro_store_state_evictions_total"] == 1
        current_insert(db.table("R"), (2,), at=40)
        session.flush()
        stats = session.stats()
        assert stats["repro_store_state_evictions_total"] == 2
        assert stats["repro_store_state_rebuilds_total"] == 1
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_plans()["join"]).tuples
        )
        session.close()


class TestAdaptiveDebounce:
    def test_band_extremes_are_pinned(self):
        """The satellite contract: zero depth sleeps debounce_min, a
        saturated queue sleeps debounce_max — both exactly."""
        db = _database()
        session = LiveSession(db, queue_capacity=16)
        session.serve(debounce_min=0.001, debounce_max=0.25)
        try:
            assert session._debounce_for_depth(0) == 0.001
            assert session._debounce_for_depth(16) == 0.25  # at capacity
            assert session._debounce_for_depth(10**9) == 0.25  # beyond
            # and strictly between the extremes in the middle
            mid = session._debounce_for_depth(8)
            assert 0.001 < mid < 0.25
        finally:
            session.close()

    def test_saturation_scales_with_fanout(self):
        """One write rippling to many subscribers is fan-out, not
        backlog: with more subscriptions than queue_capacity, a depth of
        one-notification-per-subscriber must not saturate the window."""
        db = _database()
        session = LiveSession(db, queue_capacity=4)
        plan = _plans()["filter"]
        subs = [session.subscribe(plan) for _ in range(40)]
        session.serve(debounce_min=0.001, debounce_max=0.25)
        try:
            # 40 subscriptions + 1 shared plan → saturation well past 4.
            assert session._debounce_for_depth(40) < 0.25
            assert session._debounce_for_depth(41) == 0.25
        finally:
            for sub in subs:
                sub.close()
            session.close()

    def test_fixed_debounce_ignores_depth(self):
        db = _database()
        session = LiveSession(db)
        session.serve(debounce=0.007)
        try:
            assert session._debounce_for_depth(0) == 0.007
            assert session._debounce_for_depth(10**9) == 0.007
            assert session.current_debounce() == 0.007
        finally:
            session.close()

    def test_band_validation(self):
        db = _database()
        session = LiveSession(db)
        with pytest.raises(QueryError, match="both"):
            session.serve(debounce_min=0.001)
        with pytest.raises(QueryError, match="band"):
            session.serve(debounce_min=0.5, debounce_max=0.1)
        assert not session.serving  # nothing started on the failed calls
        session.close()

    def test_adaptive_serve_still_flushes(self):
        db = _database()
        session = LiveSession(db, delivery_workers=2)
        arrived = threading.Event()
        session.subscribe(
            _plans()["filter"], on_refresh=lambda event: arrived.set()
        )
        session.serve(debounce_min=0.0, debounce_max=0.02)
        current_insert(db.table("R"), (1,), at=20)
        assert arrived.wait(timeout=5)
        assert session.current_debounce() >= 0.0
        session.close()


class TestServeLoop:
    def test_serve_flushes_without_explicit_flush(self):
        db = _database()
        session = LiveSession(db, delivery_workers=2, flush_shards=2)
        arrived = threading.Event()
        session.subscribe(
            _plans()["filter"], on_refresh=lambda event: arrived.set()
        )
        session.serve(debounce=0.002)
        assert session.serving
        assert session.stats()["serving"] is True
        current_insert(db.table("R"), (1,), at=20)
        assert arrived.wait(timeout=5)
        session.close()
        assert not session.serving

    def test_serve_debounce_coalesces_bursts(self):
        db = _database()
        session = LiveSession(db, flush_shards=2)
        session.serve(debounce=0.05)
        sub = session.subscribe(_plans()["filter"])
        with db.table("R").lock:  # the burst is atomic for the loop
            for i in range(10):
                db.table("R").insert(1, until_now(30 + i))
        deadline = time.monotonic() + 5
        while session.pending and time.monotonic() < deadline:
            time.sleep(0.01)
        assert session.pending == 0
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_plans()["filter"]).tuples
        )
        # All ten inserts landed in at most a couple of flush rounds.
        assert session.stats()["repro_live_flushes_total"] <= 3
        session.close()

    def test_flush_async_returns_waitable_handle(self):
        db = _database()
        session = LiveSession(db, flush_shards=2)
        sub = session.subscribe(_plans()["union"])
        current_insert(db.table("R"), (7,), at=20)
        handle = session.flush_async()
        assert handle.wait(timeout=5) == 1
        assert handle.done()
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_plans()["union"]).tuples
        )
        session.close()

    def test_close_delivers_owed_notifications(self):
        db = _database()
        session = LiveSession(db, delivery_workers=2)
        received = []
        session.subscribe(_plans()["filter"], on_refresh=received.append)
        session.serve(debounce=0.002)
        current_insert(db.table("R"), (1,), at=20)
        session.close()  # stops the loop, final flush, drains the queues
        assert received  # the owed notification arrived before teardown
        assert session.closed
        with pytest.raises(QueryError):
            session.flush()

    def test_stop_serving_keeps_events_for_explicit_flush(self):
        db = _database()
        session = LiveSession(db, flush_shards=2)
        sub = session.subscribe(_plans()["filter"])
        session.serve(debounce=0.002)
        session.stop_serving()
        current_insert(db.table("R"), (1,), at=20)
        time.sleep(0.05)
        assert session.pending == 1  # nobody flushed behind our back
        assert session.flush() == 1
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_plans()["filter"]).tuples
        )
        session.close()
