"""Concurrency exactness: a concurrent serve() equals a serial flush().

Property: for any plan with a delta rule and any random modification
sequence (the generators of ``tests/properties/test_delta_properties.py``,
reused verbatim), running the sequence against a *concurrent* session —
sharded flush workers, threaded delivery, background serve loop — yields
byte-identical final results to running it against the plain serial
session.  The stress test then drives ≥8 writer threads against ≥32
subscribers and checks every result against a from-scratch evaluation.
"""

import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema

# Reuse the delta-exactness generators: one representative plan per delta
# rule, and typed modification sequences (inserts, current deletes/updates,
# current inserts).  The tests directory is not a package, so the module
# is loaded off its own directory, the way pytest itself would.
sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "properties")
)
from test_delta_properties import (  # noqa: E402
    PLAN_KEYS,
    _MODIFICATIONS,
    _apply,
    _fresh_database,
    _plans,
)


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=25, deadline=None)
def test_concurrent_serve_equals_serial_flush(plan_key, modifications):
    """Same modifications, same plan: the served result is byte-identical
    to the serially flushed one — across all operators on the delta path."""
    plan = _plans()[plan_key]

    serial_db = _fresh_database()
    serial = LiveSession(serial_db)
    serial_sub = serial.subscribe(plan)

    concurrent_db = _fresh_database()
    concurrent = LiveSession(
        concurrent_db,
        delivery_workers=2,
        flush_shards=2,
        backpressure="block",
    )
    concurrent_sub = concurrent.subscribe(plan)
    concurrent.serve(debounce=0.0)  # flush races the writes below

    for modification in modifications:
        _apply(serial_db, modification)
        serial.flush()
        _apply(concurrent_db, modification)

    concurrent.stop_serving()
    concurrent.flush()  # whatever the loop had not picked up yet
    serial_result = frozenset(serial_sub.result.tuples)
    concurrent_result = frozenset(concurrent_sub.result.tuples)
    assert concurrent_result == serial_result, (
        f"{plan_key}: concurrent serve diverged from serial flush "
        f"after {modifications!r}"
    )
    # Byte-identical, not merely set-equal: the stored representations
    # match once canonically ordered.
    assert sorted(map(repr, concurrent_sub.result.tuples)) == sorted(
        map(repr, serial_sub.result.tuples)
    )
    assert concurrent.stats()["repro_live_refresh_errors_total"] == 0
    concurrent.close()
    serial.close()


@given(_MODIFICATIONS)
@settings(max_examples=10, deadline=None)
def test_concurrent_instantiations_agree_at_all_reference_times(modifications):
    """Exactness through the bind operator under concurrent serving."""
    plan = _plans()["hash-join"]
    db = _fresh_database()
    session = LiveSession(db, delivery_workers=2, flush_shards=2)
    sub = session.subscribe(plan)
    session.serve(debounce=0.0)
    for modification in modifications:
        _apply(db, modification)
    session.stop_serving()
    session.flush()
    expected = db.query(plan)
    for rt in range(-2, 35):
        assert sub.instantiate(rt) == expected.instantiate(rt)
    session.close()


@pytest.mark.timeout(120)
class TestStress:
    """≥8 writer threads, ≥32 subscribers, full serving pipeline."""

    N_WRITERS = 8
    N_SUBSCRIBERS = 32
    WRITES_PER_WRITER = 40

    def _database(self):
        db = Database("stress")
        r = db.create_table("R", Schema.of("K", ("VT", "interval")))
        s = db.create_table("S", Schema.of("K", ("VT", "interval")))
        for i in range(24):
            r.insert(i % 6, until_now(i % 10))
            s.insert(i % 6, until_now(i % 10 + 1))
        return db

    def _plans(self):
        return [
            scan("R").where(col("K") == lit(1)),
            scan("R").where(col("K") == lit(2)),
            scan("R").select_columns("K"),
            scan("R").join(
                scan("S"),
                on=col("R.K") == col("S.K"),
                left_name="R",
                right_name="S",
            ),
            scan("R").union(scan("S")),
            scan("R").difference(scan("S")),
        ]

    def test_stress_writers_and_subscribers(self):
        db = self._database()
        session = LiveSession(
            db,
            delivery_workers=4,
            flush_shards=4,
            backpressure="block",
            queue_capacity=256,
        )
        plans = self._plans()
        received = [[] for _ in range(self.N_SUBSCRIBERS)]
        subscriptions = [
            session.subscribe(
                plans[index % len(plans)],
                on_refresh=received[index].append,
                name=f"stress-{index}",
            )
            for index in range(self.N_SUBSCRIBERS)
        ]
        session.serve(debounce=0.001)

        def writer(seed: int) -> None:
            for i in range(self.WRITES_PER_WRITER):
                key = (seed + i) % 6
                at = 100 + seed * self.WRITES_PER_WRITER + i
                if i % 5 == 4:
                    current_delete(
                        db.table("R"),
                        lambda row, k=key: row.values[0] == k,
                        at=at,
                    )
                elif i % 2 == 0:
                    current_insert(db.table("R"), (key,), at=at)
                else:
                    current_insert(db.table("S"), (key,), at=at)

        threads = [
            threading.Thread(target=writer, args=(seed,), name=f"writer-{seed}")
            for seed in range(self.N_WRITERS)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "writer thread hung"
        session.stop_serving()
        session.flush()  # whatever the loop had not picked up yet
        assert session.bus.drain(timeout=30)
        elapsed = time.monotonic() - started

        stats = session.stats()
        assert stats["repro_live_refresh_errors_total"] == 0
        assert stats["repro_serve_dropped_notifications_total"] == 0  # block policy: lossless
        assert stats["repro_serve_delivery_backlog"] == 0
        assert stats["repro_serve_delivered_notifications_total"] == stats["repro_serve_queued_notifications_total"]
        assert sum(stats["shard_flushes"]) >= stats["repro_live_flushes_total"]
        # Every subscriber converged on the exact from-scratch result.
        for index, subscription in enumerate(subscriptions):
            expected = db.query(plans[index % len(plans)])
            assert frozenset(subscription.result.tuples) == frozenset(
                expected.tuples
            ), f"subscriber {index} diverged after {elapsed:.1f}s"
        # Exactly-once, in-order: each subscriber's pushes carry weakly
        # growing union-result sizes only for monotone plans; universally,
        # no subscriber may receive more pushes than flush rounds ran.
        flushes = stats["repro_live_flushes_total"]
        for pushes in received:
            assert len(pushes) <= flushes
        session.close()

    def test_writers_against_subscribe_unsubscribe_churn(self):
        db = self._database()
        session = LiveSession(db, delivery_workers=2, flush_shards=2)
        session.serve(debounce=0.001)
        stop = threading.Event()

        def writer(seed: int) -> None:
            i = 0
            while not stop.is_set() and i < 200:
                current_insert(db.table("R"), (seed % 6,), at=1000 + i)
                i += 1

        def churner() -> None:
            for i in range(30):
                sub = session.subscribe(
                    self._plans()[i % len(self._plans())],
                    on_refresh=lambda event: None,
                )
                time.sleep(0.001)
                sub.close()

        writers = [
            threading.Thread(target=writer, args=(seed,)) for seed in range(8)
        ]
        churners = [threading.Thread(target=churner) for _ in range(2)]
        for thread in writers + churners:
            thread.start()
        for thread in churners:
            thread.join(timeout=60)
        stop.set()
        for thread in writers:
            thread.join(timeout=60)
            assert not thread.is_alive(), "writer thread hung"
        session.close()
        assert session.stats()["repro_live_refresh_errors_total"] == 0
