"""Delivery pool and async bus: fan-out, ordering, isolation, drain."""

import threading
import time

import pytest

from repro.serve.bus import AsyncEventBus, DeliveryPool


@pytest.fixture
def bus():
    bus = AsyncEventBus(workers=3, capacity=128, policy="block")
    yield bus
    bus.close(drain=False)


class TestDeliveryPool:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            DeliveryPool(workers=0)

    def test_post_delivers_via_worker_thread(self):
        pool = DeliveryPool(workers=2)
        seen = []
        main = threading.get_ident()
        box = pool.register(
            lambda item: seen.append((item, threading.get_ident()))
        )
        pool.post(box, "payload")
        assert pool.drain(timeout=5)
        assert [item for item, _ in seen] == ["payload"]
        assert all(ident != main for _, ident in seen)
        pool.close()

    def test_close_drains_queued_items(self):
        pool = DeliveryPool(workers=1, policy="block", capacity=256)
        seen = []
        box = pool.register(lambda item: (time.sleep(0.001), seen.append(item)))
        for i in range(50):
            pool.post(box, i)
        pool.close(drain=True)
        assert seen == list(range(50))

    def test_unregister_stops_delivery(self):
        pool = DeliveryPool(workers=1)
        seen = []
        box = pool.register(seen.append)
        pool.unregister(box)
        assert pool.post(box, "late") == "rejected"
        pool.drain(timeout=5)
        assert seen == []
        pool.close()

    def test_stats_shape(self):
        pool = DeliveryPool(workers=2)
        box = pool.register(lambda item: None)
        pool.post(box, 1)
        pool.drain(timeout=5)
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["queued"] == 1
        assert stats["delivered"] == 1
        assert stats["backlog"] == 0
        pool.close()


class TestAsyncEventBus:
    def test_fan_out_reaches_every_listener(self, bus):
        seen_a, seen_b = [], []
        bus.subscribe("t", seen_a.append)
        bus.subscribe("t", seen_b.append)
        assert bus.publish("t", 1) == 2
        assert bus.drain(timeout=5)
        assert seen_a == [1] and seen_b == [1]

    def test_in_order_exactly_once_per_listener(self, bus):
        seen = []
        bus.subscribe("t", seen.append)
        for i in range(200):
            bus.publish("t", i)
        assert bus.drain(timeout=10)
        assert seen == list(range(200))

    def test_topics_are_independent(self, bus):
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b", 1)
        bus.drain(timeout=5)
        assert seen == []
        assert bus.listener_count("a") == 1
        assert bus.listener_count() == 1

    def test_unsubscribe_thunk(self, bus):
        seen = []
        cancel = bus.subscribe("t", seen.append)
        cancel()
        cancel()  # idempotent
        assert bus.publish("t", 1) == 0
        bus.drain(timeout=5)
        assert seen == []

    def test_slow_listener_does_not_stall_fast_peers(self):
        bus = AsyncEventBus(workers=2, policy="block", capacity=16)
        fast_done = threading.Event()
        release_slow = threading.Event()

        def slow(_):
            release_slow.wait(timeout=10)

        bus.subscribe("t", slow)
        bus.subscribe("t", lambda item: fast_done.set())
        bus.publish("t", "payload")
        # The fast subscriber hears about it while the slow one is stuck.
        assert fast_done.wait(timeout=5)
        release_slow.set()
        assert bus.drain(timeout=5)
        bus.close()

    def test_error_isolation_and_recording(self, bus):
        seen = []

        def explode(_):
            raise RuntimeError("boom")

        bus.subscribe("t", explode)
        bus.subscribe("t", seen.append)
        bus.publish("t", "payload")
        assert bus.drain(timeout=5)
        assert seen == ["payload"]
        ((topic, listener, error),) = bus.errors
        assert topic == "t" and listener is explode
        assert isinstance(error, RuntimeError)

    def test_listener_failures_announced_on_listener_error_topic(self, bus):
        failures = []
        bus.subscribe(AsyncEventBus.LISTENER_ERROR_TOPIC, failures.append)

        def explode(_):
            raise RuntimeError("boom")

        bus.subscribe("t", explode)
        bus.publish("t", "payload")
        assert bus.drain(timeout=5)
        ((topic, listener, error),) = failures
        assert topic == "t" and listener is explode

    def test_publish_from_worker_thread_never_deadlocks_itself(self):
        """A callback that publishes into a full block-policy mailbox
        pinned to its own worker must degrade, not wait for space only
        that worker could ever free."""
        bus = AsyncEventBus(workers=1, capacity=1, policy="block")
        seen = []
        bus.subscribe("fanin", seen.append)

        def fan_in(_):
            bus.publish("fanin", "first")
            bus.publish("fanin", "second")  # full, same worker: degrade

        bus.subscribe("trigger", fan_in)
        bus.publish("trigger", None)
        assert bus.drain(timeout=5)
        assert seen == ["second"]  # oldest evicted, newest delivered
        assert bus.stats()["dropped"] == 1
        bus.close()

    def test_coalesce_policy_keeps_latest_information(self):
        bus = AsyncEventBus(workers=1, capacity=1, policy="coalesce")
        release = threading.Event()
        seen = []

        def subscriber(item):
            if not seen:
                release.wait(timeout=10)  # jam the worker on delivery #1
            seen.append(item)

        bus.subscribe("t", subscriber)
        bus.publish("t", "first")  # delivered (slowly)
        time.sleep(0.05)  # let the worker pick "first" up
        for payload in ("second", "third", "fourth"):
            bus.publish("t", payload)  # capacity 1: unmergeable → newest kept
        release.set()
        assert bus.drain(timeout=5)
        assert seen[0] == "first"
        assert seen[-1] == "fourth"  # the latest payload always arrives
        assert len(seen) < 4  # the backlog really was bounded
        bus.close()
