"""Stable shard routing and the sharded dependency index."""

import pytest

from repro.serve.sharding import ShardedDependencyIndex, shard_index


class TestShardIndex:
    def test_deterministic_and_in_range(self):
        keys = [f"fingerprint-{i:04x}" for i in range(256)]
        for shards in (1, 2, 4, 7):
            owners = [shard_index(key, shards) for key in keys]
            assert owners == [shard_index(key, shards) for key in keys]
            assert all(0 <= owner < shards for owner in owners)

    def test_single_shard_short_circuits(self):
        assert shard_index("anything", 1) == 0

    def test_distribution_is_roughly_uniform(self):
        # SHA-256-hex-like keys spread evenly: no shard may end up with
        # more than twice its fair share over 4 shards and 400 keys.
        import hashlib

        keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(400)]
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[shard_index(key, 4)] += 1
        assert max(counts) <= 200


class TestShardedDependencyIndex:
    def test_needs_a_shard(self):
        with pytest.raises(ValueError):
            ShardedDependencyIndex(0)

    def test_drop_in_dependency_index_api(self):
        index = ShardedDependencyIndex(4)
        index.add("q1", {"R", "S"})
        index.add("q2", {"S"})
        assert index.affected("S") == {"q1", "q2"}
        assert index.affected("R") == {"q1"}
        assert index.affected("T") == frozenset()
        assert index.tables() == {"R", "S"}
        assert index.tables_of("q1") == {"R", "S"}
        assert "q1" in index and "q3" not in index
        assert len(index) == 2
        assert index.table_fanout() == {"R": 1, "S": 2}

    def test_remove_clears_all_links(self):
        index = ShardedDependencyIndex(3)
        index.add("q1", {"R"})
        index.remove("q1")
        assert index.affected("R") == frozenset()
        assert index.tables() == frozenset()
        assert len(index) == 0

    def test_re_add_replaces_dependencies(self):
        index = ShardedDependencyIndex(3)
        index.add("q1", {"R"})
        index.add("q1", {"S"})
        assert index.affected("R") == frozenset()
        assert index.affected("S") == {"q1"}

    def test_invalidations_route_to_owning_shards(self):
        index = ShardedDependencyIndex(4)
        keys = [f"key-{i}" for i in range(32)]
        for key in keys:
            index.add(key, {"R"})
        routed = index.affected_by_shard("R")
        # Every key appears exactly once, in its owning shard's bucket.
        seen = [key for keys_ in routed.values() for key in keys_]
        assert sorted(seen) == sorted(keys)
        for shard, shard_keys in routed.items():
            for key in shard_keys:
                assert index.shard_of(key) == shard
        assert sum(index.shard_sizes()) == len(keys)
