"""Shard-worker crash path: an exception escaping the refresh callable
must be counted, announced, and must never kill the shard thread."""

import threading

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.live import LiveSession
from repro.live.events import EventBus
from repro.live.manager import SubscriptionManager
from repro.relational.schema import Schema
from repro.serve.scheduler import FlushScheduler


def _database():
    db = Database("failures")
    table = db.create_table("R", Schema.of("K", ("VT", "interval")))
    table.insert(1, until_now(10))
    return db


class TestSchedulerFailurePath:
    def test_escaped_exception_counted_and_reported(self):
        seen = []
        boom = RuntimeError("refresh machinery broke")

        def refresh(fingerprint, tables, coalesced):
            if fingerprint == "doomed":
                raise boom
            return True

        scheduler = FlushScheduler(
            refresh, shards=2, on_error=lambda *args: seen.append(args)
        )
        try:
            scheduler.flush(
                {"doomed": frozenset({"R"}), "fine": frozenset({"R"})},
                timeout=10,
            )
            assert sum(scheduler.failure_counts()) == 1
            assert seen == [(scheduler.shard_of("doomed"), "doomed", boom)]
            stats = scheduler.stats()
            assert stats["repro_shard_worker_failures_total"] == 1
            assert sum(stats["repro_serve_shard_failures"]) == 1
        finally:
            scheduler.close()

    def test_shard_keeps_draining_after_a_failure(self):
        calls = []

        def refresh(fingerprint, tables, coalesced):
            calls.append(fingerprint)
            if len(calls) == 1:
                raise RuntimeError("first job dies")
            return True

        scheduler = FlushScheduler(refresh, shards=1)
        try:
            scheduler.flush({"a": frozenset({"R"})}, timeout=10)
            refreshed = scheduler.flush({"b": frozenset({"R"})}, timeout=10)
            assert refreshed == 1
            assert calls == ["a", "b"]
            assert scheduler.failure_counts() == (1,)
        finally:
            scheduler.close()

    def test_broken_error_hook_does_not_kill_the_shard(self):
        def refresh(fingerprint, tables, coalesced):
            raise RuntimeError("boom")

        def hook(shard, fingerprint, exc):
            raise ValueError("the hook itself is broken")

        scheduler = FlushScheduler(refresh, shards=1, on_error=hook)
        try:
            scheduler.flush({"a": frozenset({"R"})}, timeout=10)
            assert scheduler.failure_counts() == (1,)
            assert not scheduler.backlog()
        finally:
            scheduler.close()


class TestManagerIntegration:
    def test_failure_bumps_stat_and_announces(self, monkeypatch):
        db = _database()
        session = LiveSession(db, flush_shards=2)
        announced = []
        delivered = threading.Event()

        def on_listener_error(event):
            announced.append(event)
            delivered.set()

        session.bus.subscribe(
            EventBus.LISTENER_ERROR_TOPIC, on_listener_error
        )
        sub = session.subscribe_sql(
            "SELECT * FROM R", on_refresh=lambda event: None, name="s1"
        )

        def broken(self, fingerprint, changed_tables, coalesced):
            raise RuntimeError("machinery failure past the isolation layer")

        monkeypatch.setattr(SubscriptionManager, "_refresh_one_impl", broken)
        db.table("R").insert(2, until_now(20))
        session.flush()
        assert delivered.wait(timeout=10)
        assert session.stats()["repro_shard_worker_failures_total"] == 1
        assert sum(session.stats()["shard_failures"]) == 1
        source, detail, exc = announced[0]
        assert source == "flush-shard"
        assert detail.startswith("shard-")
        assert sub.fingerprint[:12] in detail
        assert isinstance(exc, RuntimeError)
        monkeypatch.undo()
        session.close()

    def test_failure_sample_rendered_with_shard_label(self, monkeypatch):
        db = _database()
        session = LiveSession(db, flush_shards=2)
        session.subscribe_sql(
            "SELECT * FROM R", on_refresh=lambda event: None, name="s1"
        )

        def broken(self, fingerprint, changed_tables, coalesced):
            raise RuntimeError("boom")

        monkeypatch.setattr(SubscriptionManager, "_refresh_one_impl", broken)
        db.table("R").insert(2, until_now(20))
        session.flush()
        monkeypatch.undo()
        rendered = session.metrics.render_prometheus()
        assert 'repro_shard_worker_failures_total{shard="' in rendered
        session.close()
