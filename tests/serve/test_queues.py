"""Bounded mailboxes: capacity, backpressure policies, coalescing."""

import threading
import time

import pytest

from repro.live.events import RefreshNotification
from repro.engine.delta import Delta
from repro.relational.tuples import OngoingTuple
from repro.core.intervalset import UNIVERSAL_SET
from repro.serve.queues import (
    BACKPRESSURE_POLICIES,
    COALESCED,
    DROPPED_OLDEST,
    Mailbox,
    QUEUED,
    REJECTED,
)


def _mailbox(**kwargs):
    condition = threading.Condition()
    received = []
    box = Mailbox(received.append, condition=condition, **kwargs)
    return box, received


def _drain(box):
    """Pop everything queued (what the delivery worker would do)."""
    items = []
    with box.condition:
        while len(box._items):
            items.append(box._pop())
    return items


def _row(value):
    return OngoingTuple((value,), UNIVERSAL_SET)


def _notification(subscription, *, inserted=(), result="result"):
    return RefreshNotification(
        subscription=subscription,
        result=result,
        changed_tables=("R",),
        delta=Delta.insert(tuple(_row(v) for v in inserted)),
    )


class TestPolicies:
    def test_policy_catalogue(self):
        assert BACKPRESSURE_POLICIES == ("block", "drop_oldest", "coalesce")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _mailbox(policy="bounce")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            _mailbox(capacity=0)

    def test_queued_until_capacity(self):
        box, _ = _mailbox(capacity=3, policy="drop_oldest")
        assert [box.put(i) for i in range(3)] == [QUEUED] * 3
        assert len(box) == 3

    def test_drop_oldest_evicts_head(self):
        box, _ = _mailbox(capacity=2, policy="drop_oldest")
        box.put("a")
        box.put("b")
        assert box.put("c") == DROPPED_OLDEST
        assert _drain(box) == ["b", "c"]
        assert box.dropped == 1

    def test_block_policy_waits_for_space(self):
        box, _ = _mailbox(capacity=1, policy="block")
        box.put("a")
        outcomes = []

        def producer():
            outcomes.append(box.put("b"))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not outcomes  # still blocked on the full queue
        with box.condition:
            assert box._pop() == "a"
        thread.join(timeout=5)
        assert outcomes == [QUEUED]
        assert _drain(box) == ["b"]
        assert box.dropped == 0

    def test_block_policy_timeout_degrades_to_drop(self):
        box, _ = _mailbox(capacity=1, policy="block")
        box.put("a")
        assert box.put("b", timeout=0.01) == DROPPED_OLDEST
        assert _drain(box) == ["b"]

    def test_closed_mailbox_rejects(self):
        box, _ = _mailbox(capacity=2)
        box.put("a")
        with box.condition:
            box._close()
        assert box.put("b") == REJECTED
        assert len(box) == 0


class _FakeSubscription:
    pass


class TestCoalescing:
    def test_notifications_merge_at_capacity(self):
        subscription = _FakeSubscription()
        box, _ = _mailbox(capacity=1, policy="coalesce")
        first = _notification(subscription, inserted=("a",), result="r1")
        second = _notification(subscription, inserted=("b",), result="r2")
        assert box.put(first) == QUEUED
        assert box.put(second) == COALESCED
        (merged,) = _drain(box)
        # Latest result wins; the result-level deltas are merged so the
        # subscriber misses nothing by skipping the intermediate delivery.
        assert merged.result == "r2"
        assert {row.values[0] for row in merged.delta.inserted} == {"a", "b"}
        assert box.coalesced == 1
        assert box.dropped == 0
        # queued and coalesced partition the admitted payloads: the merge
        # occupied no new queue slot, so it must not bump ``queued`` too
        # (the counter used to double-count coalesced admissions).
        assert box.queued == 1
        assert box.queued + box.coalesced == 2

    def test_counters_partition_admitted_payloads(self):
        subscription = _FakeSubscription()
        box, _ = _mailbox(capacity=2, policy="coalesce")
        outcomes = [
            box.put(_notification(subscription, inserted=(str(i),)))
            for i in range(5)
        ]
        assert outcomes == [QUEUED, QUEUED, COALESCED, COALESCED, COALESCED]
        assert box.queued == 2
        assert box.coalesced == 3
        assert box.dropped == 0
        # Admitted = queued + coalesced; nothing counted twice, nothing lost.
        assert box.queued + box.coalesced == 5
        assert len(box) == 2

    def test_below_capacity_items_stay_distinct(self):
        subscription = _FakeSubscription()
        box, _ = _mailbox(capacity=4, policy="coalesce")
        box.put(_notification(subscription, inserted=("a",)))
        box.put(_notification(subscription, inserted=("b",)))
        assert len(box) == 2
        assert box.coalesced == 0

    def test_unmergeable_payloads_fall_back_to_drop_oldest(self):
        box, _ = _mailbox(capacity=1, policy="coalesce")
        box.put("plain")  # no coalesce_with
        assert box.put("newer") == DROPPED_OLDEST
        assert _drain(box) == ["newer"]

    def test_different_subscriptions_never_merge(self):
        box, _ = _mailbox(capacity=1, policy="coalesce")
        box.put(_notification(_FakeSubscription(), inserted=("a",)))
        outcome = box.put(_notification(_FakeSubscription(), inserted=("b",)))
        assert outcome == DROPPED_OLDEST

    def test_unknown_delta_coalesces_to_unknown(self):
        subscription = _FakeSubscription()
        first = RefreshNotification(
            subscription=subscription, result="r1", delta=None
        )
        second = _notification(subscription, inserted=("b",), result="r2")
        merged = first.coalesce_with(second)
        assert merged.delta is None  # unknown + known = unknown
        assert merged.result == "r2"


class TestCaptureRestore:
    """The durability hooks: checkpoint capture and recovery restore."""

    def test_capture_is_non_destructive_and_ordered(self):
        box, received = _mailbox(capacity=4)
        box.put("first")
        box.put("second")
        assert box.capture() == ("first", "second")
        assert box.capture() == ("first", "second")  # still queued
        assert _drain(box) == ["first", "second"]

    def test_capture_of_empty_mailbox(self):
        box, _ = _mailbox(capacity=2)
        assert box.capture() == ()

    def test_restore_appends_behind_queued_items(self):
        box, _ = _mailbox(capacity=4)
        box.put("live")
        assert box.restore(("recovered-a", "recovered-b")) == 2
        assert _drain(box) == ["live", "recovered-a", "recovered-b"]
        assert box.queued == 3

    def test_restore_bypasses_backpressure(self):
        box, _ = _mailbox(capacity=1, policy="drop_oldest")
        box.put("live")
        # A restore may transiently exceed capacity: recovery must never
        # silently drop the notification it is re-enqueueing.
        assert box.restore(("recovered",)) == 1
        assert _drain(box) == ["live", "recovered"]
        # The next ordinary put re-applies the policy as usual.
        box.put("a")
        assert box.put("b") == DROPPED_OLDEST
        assert _drain(box) == ["b"]

    def test_restore_into_closed_mailbox_is_refused(self):
        box, _ = _mailbox(capacity=2)
        box.closed = True
        assert box.restore(("recovered",)) == 0
        assert box.capture() == ()
