"""Unit tests for the Incumbent and D_ex/D_sh/D_sc generators."""

from repro.core.interval import OngoingInterval
from repro.datasets import (
    generate_dex,
    generate_dsc,
    generate_dsh,
    generate_incumbent,
    strip_ongoing,
    synthetic_database,
)
from repro.datasets import incumbent as incumbent_module
from repro.datasets import synthetic as synthetic_module


class TestIncumbent:
    def test_cardinality_and_share(self):
        relation = generate_incumbent(2_000)
        assert len(relation) == 2_000
        ongoing = sum(1 for t in relation if not t.values[2].is_fixed)
        assert abs(ongoing / 2_000 - 0.19) < 0.01

    def test_ongoing_starts_in_the_last_year(self):
        relation = generate_incumbent(2_000)
        for item in relation:
            interval = item.values[2]
            if not interval.is_fixed:
                assert interval.start.a >= incumbent_module.HISTORY_END - 365

    def test_deterministic(self):
        assert generate_incumbent(300, seed=5) == generate_incumbent(300, seed=5)


class TestDexDsh:
    def test_dex_is_expanding(self):
        relation = generate_dex(500)
        kinds = {t.values[2].kind for t in relation if not t.values[2].is_fixed}
        assert kinds == {"expanding"}

    def test_dsh_is_shrinking(self):
        relation = generate_dsh(500)
        kinds = {t.values[2].kind for t in relation if not t.values[2].is_fixed}
        assert kinds == {"shrinking"}

    def test_segment_placement_dex(self):
        for segment in range(synthetic_module.SEGMENTS):
            relation = generate_dex(300, segment=segment)
            low = synthetic_module.HISTORY_START + segment * 2 * 365
            for item in relation:
                interval = item.values[2]
                if not interval.is_fixed:
                    assert low <= interval.start.a < low + 2 * 365

    def test_segment_placement_dsh(self):
        for segment in (0, 4):
            relation = generate_dsh(300, segment=segment)
            low = synthetic_module.HISTORY_START + segment * 2 * 365
            for item in relation:
                interval = item.values[2]
                if not interval.is_fixed:
                    assert low <= interval.end.b < low + 2 * 365

    def test_invalid_segment_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="segment"):
            generate_dex(100, segment=7)

    def test_dsc_share(self):
        relation = generate_dsc(1_000)
        ongoing = sum(1 for t in relation if not t.values[2].is_fixed)
        assert abs(ongoing / 1_000 - 0.20) < 0.01


class TestStripOngoing:
    def test_result_is_purely_fixed(self):
        stripped = strip_ongoing(generate_dex(300))
        assert all(t.values[2].is_fixed for t in stripped)

    def test_envelope_clipping(self):
        stripped = strip_ongoing(generate_dex(300, segment=0))
        for item in stripped:
            interval = item.values[2]
            assert interval.end.b <= synthetic_module.HISTORY_END

    def test_shrinking_clips_at_history_start(self):
        stripped = strip_ongoing(generate_dsh(300, segment=4))
        for item in stripped:
            interval = item.values[2]
            assert interval.start.a >= synthetic_module.HISTORY_START

    def test_fixed_tuples_untouched(self):
        relation = generate_dex(300)
        stripped = strip_ongoing(relation)
        original_fixed = [t for t in relation if t.values[2].is_fixed]
        stripped_by_id = {t.values[0]: t for t in stripped}
        for item in original_fixed:
            assert stripped_by_id[item.values[0]] == item


class TestDatabaseHelper:
    def test_synthetic_database(self):
        database = synthetic_database(generate_dex(50), name="X")
        assert len(database.relation("X")) == 50
