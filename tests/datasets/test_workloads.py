"""Integration tests: every workload's ongoing run instantiates to its
Clifford run at every sampled reference time.

This is the end-to-end version of the paper's correctness requirement
``∀rt: ‖Q(D)‖rt == Q(‖D‖rt)`` — the left side is the ongoing engine, the
right side the independent Clifford executor over instantiated data.
"""

import pytest

from repro.baselines.clifford import cliff_max_reference_time
from repro.datasets import (
    ComplexJoinWorkload,
    SelectionWorkload,
    SelfJoinWorkload,
    TemporalJoinWorkload,
    generate_dex,
    generate_dsh,
    generate_mozilla,
    last_tenth,
    synthetic_database,
)
from repro.datasets import mozilla as mozilla_module
from repro.datasets import synthetic as synthetic_module

_MOZ_ARGUMENT = last_tenth(mozilla_module.HISTORY_START, mozilla_module.HISTORY_END)
_SYN_ARGUMENT = last_tenth(
    synthetic_module.HISTORY_START, synthetic_module.HISTORY_END
)


@pytest.fixture(scope="module")
def mozilla_db():
    return generate_mozilla(600).as_database()


@pytest.fixture(scope="module")
def dex_db():
    return synthetic_database(generate_dex(400))


@pytest.fixture(scope="module")
def dsh_db():
    return synthetic_database(generate_dsh(400))


def _sample_rts(history_start, history_end):
    span = history_end - history_start
    return [
        history_start,
        history_start + span // 3,
        history_end - span // 10,
        history_end + 50,
    ]


class TestSelectionWorkload:
    @pytest.mark.parametrize("predicate", ["overlaps", "before"])
    def test_ongoing_matches_clifford_everywhere(self, mozilla_db, predicate):
        workload = SelectionWorkload("B", predicate, _MOZ_ARGUMENT)
        ongoing = workload.run_ongoing(mozilla_db)
        for rt in _sample_rts(
            mozilla_module.HISTORY_START, mozilla_module.HISTORY_END
        ):
            clifford = workload.run_clifford(mozilla_db, rt)
            assert ongoing.instantiate(rt) == frozenset(clifford), rt

    def test_plan_is_a_selection_over_a_scan(self, mozilla_db):
        workload = SelectionWorkload("B", "overlaps", _MOZ_ARGUMENT)
        text = mozilla_db.explain(workload.plan())
        # The table is large enough that the cost model routes the
        # temporal probe through the interval index.
        assert "OngoingFilter" in text and "IntervalScan" in text


class TestSelfJoinWorkload:
    @pytest.mark.parametrize("predicate", ["overlaps", "before"])
    def test_ongoing_matches_clifford_everywhere(self, dex_db, predicate):
        workload = SelfJoinWorkload("R", predicate)
        ongoing = workload.run_ongoing(dex_db)
        for rt in _sample_rts(
            synthetic_module.HISTORY_START, synthetic_module.HISTORY_END
        ):
            clifford = workload.run_clifford(dex_db, rt)
            assert ongoing.instantiate(rt) == frozenset(clifford), rt

    def test_uses_hash_join(self, dex_db):
        workload = SelfJoinWorkload("R", "overlaps")
        assert "HashJoin" in dex_db.explain(workload.plan())


class TestTemporalJoinWorkload:
    def test_overlaps_matches_clifford(self, dsh_db):
        workload = TemporalJoinWorkload("R", "overlaps")
        ongoing = workload.run_ongoing(dsh_db)
        rt = cliff_max_reference_time(dsh_db.relation("R"))
        assert ongoing.instantiate(rt) == frozenset(workload.run_clifford(dsh_db, rt))

    def test_before_matches_clifford(self):
        database = synthetic_database(generate_dex(120))
        workload = TemporalJoinWorkload("R", "before")
        ongoing = workload.run_ongoing(database)
        for rt in (synthetic_module.HISTORY_START + 100, synthetic_module.HISTORY_END):
            assert ongoing.instantiate(rt) == frozenset(
                workload.run_clifford(database, rt)
            )

    def test_uses_merge_interval_join(self, dsh_db):
        workload = TemporalJoinWorkload("R", "overlaps")
        assert "MergeIntervalJoin" in dsh_db.explain(workload.plan())


class TestComplexJoinWorkload:
    @pytest.mark.parametrize("predicate", ["overlaps", "before"])
    def test_ongoing_matches_clifford_everywhere(self, mozilla_db, predicate):
        workload = ComplexJoinWorkload(predicate)
        ongoing = workload.run_ongoing(mozilla_db)
        for rt in _sample_rts(
            mozilla_module.HISTORY_START, mozilla_module.HISTORY_END
        ):
            clifford = workload.run_clifford(mozilla_db, rt)
            assert ongoing.instantiate(rt) == frozenset(clifford), rt

    def test_severity_filter_applies(self, mozilla_db):
        workload = ComplexJoinWorkload("overlaps", severity="blocker")
        result = workload.run_ongoing(mozilla_db)
        severity_position = result.schema.index_of("S.Severity")
        assert all(
            row.values[severity_position] == "blocker" for row in result
        )


class TestLastTenth:
    def test_spans_the_last_ten_percent(self):
        assert last_tenth(0, 100) == (90, 100)
        assert last_tenth(-200, 0) == (-20, 0)
