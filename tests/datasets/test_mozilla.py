"""Unit tests for the synthetic MozillaBugs generator (Table III, Fig. 7)."""

from repro.core.interval import OngoingInterval
from repro.datasets import generate_mozilla
from repro.datasets import mozilla as mozilla_module


class TestCharacteristics:
    def test_cardinalities_scale_with_bug_count(self):
        dataset = generate_mozilla(1_000)
        assert len(dataset.bug_info) == 1_000
        # ~1.48 assignments and ~1.10 severities per bug.
        assert 1.3 <= len(dataset.bug_assignment) / 1_000 <= 1.65
        assert 1.0 <= len(dataset.bug_severity) / 1_000 <= 1.25

    def test_ongoing_share(self):
        dataset = generate_mozilla(1_000)
        assert abs(dataset.ongoing_fraction() - 0.15) < 0.01

    def test_ongoing_intervals_are_expanding(self):
        dataset = generate_mozilla(500)
        for item in dataset.bug_info:
            interval = item.values[5]
            if not interval.is_fixed:
                assert interval.is_expanding
                assert interval.end.is_now

    def test_start_point_skew(self):
        """Fig. 7: ~half of the ongoing starts lie in the last two years."""
        dataset = generate_mozilla(4_000)
        starts = [
            item.values[5].start.a
            for item in dataset.bug_info
            if not item.values[5].is_fixed
        ]
        recent = sum(
            1 for s in starts if s >= mozilla_module.HISTORY_END - 2 * 365
        )
        assert 0.4 <= recent / len(starts) <= 0.6

    def test_valid_times_lie_in_history(self):
        dataset = generate_mozilla(500)
        for item in dataset.bug_info:
            interval = item.values[5]
            assert interval.start.a >= mozilla_module.HISTORY_START
            if interval.is_fixed:
                assert interval.end.b <= mozilla_module.HISTORY_END

    def test_foreign_keys_resolve(self):
        dataset = generate_mozilla(300)
        bug_ids = {item.values[0] for item in dataset.bug_info}
        assert all(t.values[0] in bug_ids for t in dataset.bug_assignment)
        assert all(t.values[0] in bug_ids for t in dataset.bug_severity)

    def test_sub_intervals_stay_within_bug_valid_time(self):
        dataset = generate_mozilla(300)
        bug_vt = {t.values[0]: t.values[5] for t in dataset.bug_info}
        for item in dataset.bug_assignment:
            parent = bug_vt[item.values[0]]
            child = item.values[2]
            assert child.start.a >= parent.start.a
            assert child.end.b <= parent.end.b


class TestScaling:
    def test_deterministic_given_seed(self):
        assert generate_mozilla(200, seed=1).bug_info == generate_mozilla(
            200, seed=1
        ).bug_info

    def test_different_seeds_differ(self):
        assert generate_mozilla(200, seed=1).bug_info != generate_mozilla(
            200, seed=2
        ).bug_info

    def test_slice_recent_raises_ongoing_share(self):
        """Grow-backward scaling (Section IX-A): ongoing tuples cluster at
        the end of the history, so a recent slice keeps most of them and
        the ongoing share rises as the data shrinks."""
        full = generate_mozilla(2_000)
        ongoing_full = sum(
            1 for t in full.bug_info if not t.values[5].is_fixed
        )
        half = full.slice_recent(1_000)
        ongoing_half = sum(
            1 for t in half.bug_info if not t.values[5].is_fixed
        )
        assert len(half.bug_info) == 1_000
        assert ongoing_half >= 0.75 * ongoing_full
        assert half.ongoing_fraction() > full.ongoing_fraction()

    def test_slice_keeps_matching_children(self):
        full = generate_mozilla(500)
        sliced = full.slice_recent(200)
        kept = {t.values[0] for t in sliced.bug_info}
        assert {t.values[0] for t in sliced.bug_assignment} <= kept
        assert {t.values[0] for t in sliced.bug_severity} <= kept


class TestDatabaseExport:
    def test_as_database_registers_three_tables(self):
        database = generate_mozilla(100).as_database()
        assert set(database.tables()) == {"A", "B", "S"}
        assert len(database.relation("B")) == 100
