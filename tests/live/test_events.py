"""Change events and the event bus (fan-out, error isolation)."""

import pytest

from repro.core.interval import until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_insert
from repro.live import ChangeEvent, EventBus
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


class TestEventBus:
    def test_publish_reaches_all_listeners_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", lambda payload: seen.append(("a", payload)))
        bus.subscribe("t", lambda payload: seen.append(("b", payload)))
        assert bus.publish("t", 1) == 2
        assert seen == [("a", 1), ("b", 1)]

    def test_unsubscribe_thunk(self):
        bus = EventBus()
        seen = []
        cancel = bus.subscribe("t", seen.append)
        cancel()
        cancel()  # idempotent
        assert bus.publish("t", 1) == 0
        assert seen == []

    def test_failing_listener_does_not_starve_peers(self):
        bus = EventBus()
        seen = []

        def explode(payload):
            raise RuntimeError("boom")

        bus.subscribe("t", explode)
        bus.subscribe("t", seen.append)
        assert bus.publish("t", "payload") == 1
        assert seen == ["payload"]
        ((topic, listener, error),) = bus.errors
        assert topic == "t" and listener is explode
        assert isinstance(error, RuntimeError)

    def test_topics_are_independent(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b", 1)
        assert seen == []
        assert bus.listener_count("a") == 1
        assert bus.listener_count() == 1


class TestErrorTopicGuard:
    """A listener that raises while handling an error must not recurse
    through the error channel or starve its peers (PR 3 regression)."""

    def test_listener_failures_are_announced(self):
        bus = EventBus()
        failures = []
        bus.subscribe(EventBus.LISTENER_ERROR_TOPIC, failures.append)

        def explode(payload):
            raise RuntimeError("boom")

        bus.subscribe("refresh", explode)
        bus.publish("refresh", "payload")
        ((topic, listener, error),) = failures
        assert topic == "refresh" and listener is explode
        assert isinstance(error, RuntimeError)

    def test_error_topic_failure_announcement_carries_its_topic(self):
        # PR 6 regression: a failing listener registered on the "error"
        # topic was silently recorded but never announced — the guard
        # suppressed every error-class topic instead of only the
        # listener-error channel, and the announcement lost its topic.
        bus = EventBus()
        announced = []
        bus.subscribe(EventBus.LISTENER_ERROR_TOPIC, announced.append)

        def explode(payload):
            raise RuntimeError("broken error handler")

        bus.subscribe("error", explode)
        bus.publish("error", ("fingerprint", ValueError("x")))
        ((topic, listener, error),) = announced
        assert topic == "error"  # the originating topic, carried through
        assert listener is explode
        assert isinstance(error, RuntimeError)

    def test_raising_error_listener_does_not_recurse(self):
        bus = EventBus()
        survivors = []

        def explode(payload):
            raise RuntimeError("error handler is itself broken")

        bus.subscribe("error", explode)
        bus.subscribe("error", survivors.append)
        # Publishing on the error topic with a raising listener used to
        # be the recursion seed; now it records and moves on.
        assert bus.publish("error", ("fingerprint", ValueError("x"))) == 1
        assert len(survivors) == 1
        ((topic, listener, _),) = bus.errors
        assert topic == "error" and listener is explode

    def test_raising_listener_error_listener_terminates(self):
        bus = EventBus()

        def explode(payload):
            raise RuntimeError("boom")

        def meta_explode(payload):
            raise RuntimeError("the watcher is broken too")

        bus.subscribe("refresh", explode)
        bus.subscribe(EventBus.LISTENER_ERROR_TOPIC, meta_explode)
        # refresh fails → announced on listener-error → that listener
        # fails too → recorded, NOT re-announced.  Termination is the
        # regression being tested: this used to be unbounded.
        bus.publish("refresh", "payload")
        topics = [topic for topic, _, _ in bus.errors]
        assert topics == ["refresh", EventBus.LISTENER_ERROR_TOPIC]

    def test_peers_still_delivered_after_error_storm(self):
        bus = EventBus()
        seen = []

        def explode(payload):
            raise RuntimeError("boom")

        bus.subscribe(EventBus.LISTENER_ERROR_TOPIC, explode)
        bus.subscribe("t", explode)
        bus.subscribe("t", seen.append)
        assert bus.publish("t", "payload") == 1
        assert seen == ["payload"]


class TestDatabaseChangeEvents:
    def _database(self):
        db = Database("events")
        db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
        return db

    def test_events_carry_table_and_monotonic_version(self):
        db = self._database()
        events = []
        db.add_change_listener(lambda table, version: events.append(ChangeEvent(table, version)))
        table = db.table("B")
        table.insert(500, "X", until_now(d(1, 25)))
        current_insert(db.table("B"), (501, "Y"), at=d(2, 1))
        current_delete(db.table("B"), lambda row: row.values[0] == 500, at=d(3, 1))
        assert events == [
            ChangeEvent("B", 1),
            ChangeEvent("B", 2),
            ChangeEvent("B", 3),
        ]
        assert db.table_version("B") == 3
        assert db.table_versions() == {"B": 3}

    def test_removed_listener_hears_nothing(self):
        db = self._database()
        events = []
        listener = db.add_change_listener(lambda table, version: events.append(table))
        db.remove_change_listener(listener)
        db.table("B").insert(500, "X", until_now(d(1, 25)))
        assert events == []

    def test_batch_coalesces_to_one_event(self):
        db = self._database()
        events = []
        db.add_change_listener(lambda table, version: events.append((table, version)))
        table = db.table("B")
        with table.batch():
            table.insert(500, "X", until_now(d(1, 25)))
            table.insert(501, "Y", until_now(d(1, 26)))
            with table.batch():  # nested batches coalesce into the outermost
                table.insert(502, "Z", until_now(d(1, 27)))
        assert events == [("B", 1)]
        assert len(table) == 3

    def test_empty_batch_emits_nothing(self):
        db = self._database()
        events = []
        db.add_change_listener(lambda table, version: events.append(table))
        with db.table("B").batch():
            pass
        assert events == []
        assert db.table_version("B") == 0

    def test_drop_table_notifies_once(self):
        db = self._database()
        events = []
        db.add_change_listener(lambda table, version: events.append((table, version)))
        db.drop_table("B")
        assert events == [("B", 1)]
