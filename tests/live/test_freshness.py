"""Commit-stamp plumbing: write → dirty → refresh → delivered freshness."""

import time

import pytest

from repro.core.interval import until_now
from repro.engine.database import CommitStamp, Database, Table
from repro.engine.modifications import current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.live.events import ChangeEvent, RefreshNotification
from repro.obs.slo import FreshnessSLO
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _database():
    db = Database("freshness")
    table = db.create_table("T", Schema.of("K", ("VT", "interval")))
    table.insert(1, until_now(5))
    return db


class TestCommitStamps:
    def test_every_modification_batch_is_stamped(self):
        db = _database()
        table = db.table("T")
        first = table.last_commit
        assert isinstance(first, CommitStamp)
        table.insert(2, until_now(6))
        second = table.last_commit
        assert second.tick > first.tick
        assert second.at >= first.at
        assert db.last_commit == second

    def test_ticks_are_database_wide_monotonic(self):
        db = _database()
        other = db.create_table("U", Schema.of("K", ("VT", "interval")))
        table = db.table("T")
        ticks = []
        for index in range(3):
            table.insert(10 + index, until_now(7))
            ticks.append(table.last_commit.tick)
            other.insert(10 + index, until_now(7))
            ticks.append(other.last_commit.tick)
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == len(ticks)

    def test_standalone_table_stamps_too(self):
        table = Table("solo", Schema.of("K", ("VT", "interval")))
        assert table.last_commit is None
        table.insert(1, until_now(5))
        assert table.last_commit is not None
        assert table.last_commit.tick == 1

    def test_age_measures_from_the_stamp(self):
        stamp = CommitStamp(1, time.monotonic() - 1.5)
        assert stamp.age() == pytest.approx(1.5, abs=0.25)
        assert stamp.age(stamp.at + 2.0) == pytest.approx(2.0)

    def test_stamp_lands_before_listeners_fire(self):
        db = _database()
        seen = []
        db.add_delta_listener(
            lambda table, version, delta: seen.append(db.last_commit)
        )
        db.table("T").insert(2, until_now(6))
        assert seen and seen[0] == db.table("T").last_commit


class TestEventPlumbing:
    def test_change_events_carry_the_stamp(self):
        db = _database()
        session = LiveSession(db)
        try:
            events = []
            session.bus.subscribe("change", events.append)
            db.table("T").insert(2, until_now(6))
            (event,) = events
            assert event.commit == db.table("T").last_commit
        finally:
            session.close()

    def test_coalescing_keeps_the_oldest_stamp(self):
        older = CommitStamp(1, 100.0)
        newer = CommitStamp(5, 200.0)
        sub = object.__new__(LiveSession)  # placeholder identity only
        first = RefreshNotification(
            subscription=sub, result=None, commit=newer
        )
        second = RefreshNotification(
            subscription=sub, result=None, commit=older
        )
        merged = first.coalesce_with(second)
        assert merged.commit == older
        # A missing stamp on either side falls back to the present one.
        unstamped = RefreshNotification(subscription=sub, result=None)
        assert unstamped.coalesce_with(first).commit == newer
        assert first.coalesce_with(unstamped).commit == newer

    def test_unstamped_change_event_defaults_to_none(self):
        event = ChangeEvent("T", 1)
        assert event.commit is None


class TestFreshnessAccounting:
    def test_sync_delivery_observes_freshness_once_per_callback(self):
        db = _database()
        slo = FreshnessSLO(10.0)
        session = LiveSession(db, freshness_slo=slo)
        try:
            received = []
            session.subscribe(
                scan("T"), on_refresh=received.append, name="sync-sub"
            )
            for offset in range(3):
                current_insert(db.table("T"), (50 + offset,), at=60 + offset)
                session.flush()
            assert len(received) == 3
            assert all(event.commit is not None for event in received)
            child = session.freshness_histogram.labels("sync-sub")
            assert child.snapshot()["count"] == 3
            assert slo.snapshot()["observed_total"] == 3
            assert slo.healthy()
        finally:
            session.close()

    def test_async_delivery_observes_after_the_callback_ran(self):
        db = _database()
        session = LiveSession(db, delivery_workers=2)
        try:
            received = []
            session.subscribe(
                scan("T"), on_refresh=received.append, name="async-sub"
            )
            current_insert(db.table("T"), (50,), at=60)
            session.flush()
            assert session.bus.drain(timeout=10)
            assert len(received) == 1
            assert received[0].commit is not None
            assert session.freshness_histogram.labels(
                "async-sub"
            ).snapshot()["count"] == 1
        finally:
            session.close()

    def test_suppressed_refreshes_observe_nothing(self):
        db = _database()
        session = LiveSession(db)
        try:
            session.subscribe(
                scan("T").where(col("K") == lit(1)),
                on_refresh=lambda event: None,
                name="quiet",
            )
            # A row the filter rejects: the refresh runs but the result
            # is unchanged → no delivery, no freshness sample.
            current_insert(db.table("T"), (99,), at=1000)
            session.flush()
            child = session.freshness_histogram.labels("quiet")
            assert child.snapshot()["count"] == 0
        finally:
            session.close()

    def test_staleness_tracks_dirty_and_drains_to_zero(self):
        db = _database()
        session = LiveSession(db)
        try:
            session.subscribe(
                scan("T"), on_refresh=lambda event: None, name="probe"
            )
            assert session.subscription_staleness() == {"probe": 0.0}
            current_insert(db.table("T"), (50,), at=60)
            before = session.subscription_staleness()["probe"]
            assert before > 0.0
            time.sleep(0.01)
            after = session.subscription_staleness()["probe"]
            assert after > before  # staleness grows while unflushed
            session.flush()
            assert session.subscription_staleness() == {"probe": 0.0}
        finally:
            session.close()

    def test_staleness_counts_queued_async_deliveries(self):
        db = _database()
        # One worker, and a listener that blocks until released: the
        # second notification sits in the mailbox with its stamp.
        import threading

        release = threading.Event()
        first_entered = threading.Event()

        def slow(event):
            first_entered.set()
            release.wait(timeout=30)

        session = LiveSession(db, delivery_workers=1, backpressure="block")
        try:
            session.subscribe(scan("T"), on_refresh=slow, name="slow-sub")
            current_insert(db.table("T"), (50,), at=60)
            session.flush()
            assert first_entered.wait(timeout=10)
            current_insert(db.table("T"), (51,), at=61)
            session.flush()  # delivery queues behind the blocked callback
            staleness = session.subscription_staleness()["slow-sub"]
            assert staleness > 0.0
            release.set()
            assert session.bus.drain(timeout=10)
            assert session.subscription_staleness() == {"slow-sub": 0.0}
        finally:
            release.set()
            session.close()
