"""End-to-end scenario: the paper's headline property, served live.

Acceptance criterion of the live-engine PR: after ``subscribe()``,
advancing the reference time triggers **zero** re-evaluations while
``instantiate(rt)`` stays correct at every rt, and a single current
delete triggers exactly one coalesced refresh on only the subscriptions
whose plans reference the modified table.
"""

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _build_database():
    """The paper's running bug-tracker example, two independent tables."""
    db = Database("scenario")
    db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    current_insert(db.table("B"), (500, "Spam filter"), at=d(1, 25))
    db.table("B").insert(501, "Crash", fixed_interval(d(3, 30), d(8, 21)))
    db.create_table("L", Schema.of("PID", "C", ("VT", "interval")))
    current_insert(db.table("L"), (1, "Spam filter"), at=d(2, 2))
    return db


def test_live_results_remain_valid_as_time_passes():
    db = _build_database()
    session = LiveSession(db)

    bug_plan = scan("B").where(
        col("VT").overlaps(lit(fixed_interval(d(8, 1), d(12, 31))))
    )
    bug_notifications = []
    load_notifications = []
    bug_sub = session.subscribe(
        bug_plan, on_refresh=bug_notifications.append, reference_time=d(8, 15)
    )
    load_sub = session.subscribe(
        scan("L"), on_refresh=load_notifications.append
    )
    assert session.stats()["repro_live_evaluations_total"] == 2  # one per distinct plan

    # --- Phase 1: time passes.  Zero re-evaluations, always correct. ----
    reference_times = [d(8, 5), d(9, 1), d(10, 15), d(12, 30)]
    for rt in reference_times:
        assert bug_sub.instantiate(rt) == db.query(bug_plan).instantiate(rt)
    assert session.stats()["repro_live_evaluations_total"] == 2  # still only the initial two
    assert session.pending == 0
    assert bug_notifications == [] and load_notifications == []
    assert bug_sub.stats.refreshes == 0

    # Before the deletion, bug 500 is current at every probed rt.
    assert all(
        500 in {row[0] for row in bug_sub.instantiate(rt)}
        for rt in reference_times
    )

    # --- Phase 2: one explicit modification. ----------------------------
    deleted = current_delete(
        db.table("B"), lambda row: row.values[0] == 500, at=d(9, 10)
    )
    assert deleted == 1
    assert session.pending == 1  # only the B-plan is dirty
    assert load_sub.stats.pending_events == 0

    refreshed = session.flush()

    # Exactly one coalesced refresh, and only on the affected subscription.
    assert refreshed == 1
    assert session.stats()["repro_live_evaluations_total"] == 3
    assert bug_sub.stats.refreshes == 1
    assert bug_sub.stats.coalesced_events == 1
    assert load_sub.stats.refreshes == 0
    assert len(bug_notifications) == 1
    assert load_notifications == []
    (event,) = bug_notifications
    assert event.changed_tables == ("B",)
    assert event.rows == bug_sub.result.instantiate(d(8, 15))

    # --- Phase 3: the refreshed result is again valid at every rt. ------
    # Torp semantics: before the deletion time the bug *was* current, so
    # its VT still grows with the reference time there; at later rts the
    # end is frozen at the deletion time.
    vt_at = lambda rt: {row[0]: row[2] for row in bug_sub.instantiate(rt)}
    assert vt_at(d(9, 1))[500] == (d(1, 25), d(9, 1))      # still current
    assert vt_at(d(12, 30))[500] == (d(1, 25), d(9, 10))   # frozen end
    for rt in reference_times:
        assert bug_sub.instantiate(rt) == db.query(bug_plan).instantiate(rt)
    assert session.stats()["repro_live_evaluations_total"] == 3  # serving stayed free


def test_coalescing_many_modifications_into_one_refresh():
    db = _build_database()
    session = LiveSession(db)
    sub = session.subscribe(scan("B"))
    for offset in range(5):
        current_insert(db.table("B"), (600 + offset, "Flood"), at=d(8, 1 + offset))
    assert sub.stats.pending_events == 5
    assert session.flush() == 1  # five modifications, one re-evaluation
    assert sub.stats.refreshes == 1
    assert sub.stats.coalesced_events == 5
    assert {600, 601, 602, 603, 604} <= {
        row[0] for row in sub.instantiate(d(9, 1))
    }
