"""Subscription lifecycle, batched refresh, and notification delivery."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_update
from repro.engine.plan import scan
from repro.errors import QueryError
from repro.live import LiveSession, SubscriptionManager
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema
from repro.sqlish import subscribe as sql_subscribe


def d(month, day):
    return mmdd(month, day)


def _database():
    db = Database("live")
    bugs = db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Crash", fixed_interval(d(3, 30), d(8, 21)))
    people = db.create_table("P", Schema.of("PID", ("VT", "interval")))
    people.insert(1, until_now(d(2, 2)))
    return db


def _bug_plan():
    return scan("B").where(
        col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1))))
    )


class TestLifecycle:
    def test_subscribe_materializes_immediately(self):
        session = LiveSession(_database())
        sub = session.subscribe(_bug_plan())
        assert sub.active
        assert len(sub.result.tuples) > 0
        assert session.stats()["repro_live_evaluations_total"] == 1

    def test_close_releases_shared_state(self):
        session = LiveSession(_database())
        first = session.subscribe(_bug_plan())
        second = session.subscribe(_bug_plan())
        first.close()
        # one subscriber remains: the cache entry stays
        assert session.stats()["repro_live_shared_results"] == 1
        second.close()
        assert session.stats()["repro_live_shared_results"] == 0
        assert session.stats()["repro_live_subscriptions"] == 0
        assert not first.active
        with pytest.raises(QueryError, match="closed"):
            first.result
        first.close()  # idempotent

    def test_closed_subscription_is_not_refreshed(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_bug_plan())
        sub.close()
        db.table("B").insert(502, "New", until_now(d(8, 20)))
        assert session.flush() == 0

    def test_session_close_detaches_from_database(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_bug_plan())
        session.close()
        assert not sub.active
        db.table("B").insert(502, "New", until_now(d(8, 20)))  # no listener left
        with pytest.raises(QueryError, match="closed"):
            session.subscribe(_bug_plan())
        with pytest.raises(QueryError, match="closed"):
            session.flush()

    def test_session_as_context_manager(self):
        db = _database()
        with SubscriptionManager(db) as session:
            session.subscribe(_bug_plan())
        assert session.stats()["repro_live_subscriptions"] == 0


class TestBatchedRefresh:
    def test_many_modifications_one_evaluation(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_bug_plan())
        for bid in (502, 503, 504):
            db.table("B").insert(bid, "More", until_now(d(8, 2)))
        assert sub.stats.pending_events == 3
        assert session.pending == 1
        assert session.flush() == 1
        assert session.stats()["repro_live_evaluations_total"] == 2  # initial + one coalesced
        assert sub.stats.refreshes == 1
        assert sub.stats.coalesced_events == 3
        assert sub.stats.pending_events == 0

    def test_flush_without_pending_is_a_noop(self):
        session = LiveSession(_database())
        session.subscribe(_bug_plan())
        assert session.flush() == 0
        assert session.stats()["repro_live_evaluations_total"] == 1

    def test_unrelated_table_does_not_dirty(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_bug_plan())
        db.table("P").insert(2, until_now(d(3, 3)))
        assert session.pending == 0
        assert sub.stats.pending_events == 0

    def test_auto_flush_refreshes_per_event(self):
        db = _database()
        session = LiveSession(db, auto_flush=True)
        sub = session.subscribe(_bug_plan())
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        db.table("B").insert(503, "More", until_now(d(8, 3)))
        assert sub.stats.refreshes == 2
        assert session.stats()["repro_live_evaluations_total"] == 3

    def test_flush_every_bounds_staleness(self):
        db = _database()
        session = LiveSession(db, flush_every=2)
        sub = session.subscribe(_bug_plan())
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        assert sub.stats.refreshes == 0  # below the batch threshold
        db.table("B").insert(503, "More", until_now(d(8, 3)))
        assert sub.stats.refreshes == 1  # threshold reached → one refresh
        assert sub.stats.coalesced_events == 2

    def test_flush_every_must_be_positive(self):
        with pytest.raises(QueryError, match="positive"):
            LiveSession(_database(), flush_every=0)

    def test_refreshed_result_reflects_the_modification(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_bug_plan())
        current_delete(db.table("B"), lambda r: r.values[0] == 500, at=d(8, 10))
        session.flush()
        # Torp semantics: the deleted bug's VT end is frozen at the
        # deletion time for rts at/after it, and grows with rt before it.
        by_bid = {row[0]: row for row in sub.instantiate(d(8, 20))}
        assert by_bid[500][2] == (d(1, 25), d(8, 10))
        for rt in (d(8, 5), d(8, 20)):
            assert sub.instantiate(rt) == db.query(_bug_plan()).instantiate(rt)


class TestNotifications:
    def test_on_refresh_receives_rows_at_reference_time(self):
        db = _database()
        session = LiveSession(db)
        received = []
        sub = session.subscribe(
            _bug_plan(), on_refresh=received.append, reference_time=d(8, 10)
        )
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        session.flush()
        (event,) = received
        assert event.subscription is sub
        assert event.changed_tables == ("B",)
        assert event.rows == sub.result.instantiate(d(8, 10))
        assert event.result is sub.result
        assert sub.stats.notifications == 1

    def test_reference_time_is_caller_chosen_and_mutable(self):
        db = _database()
        session = LiveSession(db)
        received = []
        sub = session.subscribe(_bug_plan(), on_refresh=received.append)
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        session.flush()
        assert received[-1].rows is None  # no reference time chosen
        sub.reference_time = d(8, 15)
        db.table("B").insert(503, "More", until_now(d(8, 3)))
        session.flush()
        assert received[-1].rows == sub.result.instantiate(d(8, 15))

    def test_failing_callback_does_not_break_the_flush(self):
        db = _database()
        session = LiveSession(db)
        received = []

        def explode(event):
            raise RuntimeError("client went away")

        bad = session.subscribe(_bug_plan(), on_refresh=explode)
        good = session.subscribe(_bug_plan(), on_refresh=received.append)
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        assert session.flush() == 1
        assert len(received) == 1
        assert bad.stats.refreshes == good.stats.refreshes == 1
        assert session.bus.errors  # the failure is recorded, not raised

    def test_session_wide_refresh_topic(self):
        db = _database()
        session = LiveSession(db)
        session.subscribe(_bug_plan())
        heard = []
        session.bus.subscribe("refresh", heard.append)
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        session.flush()
        assert len(heard) == 1


class TestFailureIsolation:
    def test_failed_initial_evaluation_rolls_back_registration(self):
        """A plan whose first evaluation raises must not leave a dead
        cache entry that later subscribes of the same plan cache-hit."""
        session = LiveSession(_database())
        missing = scan("MISSING")
        with pytest.raises(QueryError, match="MISSING"):
            session.subscribe(missing)
        assert session.stats()["repro_live_shared_results"] == 0
        # A second attempt raises again instead of hitting a dead entry.
        with pytest.raises(QueryError, match="MISSING"):
            session.subscribe(scan("MISSING"))

    def test_dropped_table_does_not_abort_the_flush(self):
        """Per-plan error isolation: the failing plan keeps its last
        materialization, other dirty plans still refresh."""
        db = _database()
        session = LiveSession(db)
        doomed = session.subscribe(scan("P"))
        survivor = session.subscribe(_bug_plan())
        errors = []
        session.bus.subscribe("error", errors.append)
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        db.drop_table("P")
        assert session.pending == 2
        assert session.flush() == 1  # only the surviving plan re-evaluated
        assert survivor.stats.refreshes == 1
        assert doomed.stats.refreshes == 0
        assert len(doomed.result.tuples) == 1  # last materialization serves on
        ((fingerprint, error),) = errors
        assert fingerprint == doomed.fingerprint
        assert isinstance(error, QueryError)
        assert session.stats()["repro_live_refresh_errors_total"] == 1

    def test_drop_table_under_auto_flush_does_not_raise(self):
        db = _database()
        session = LiveSession(db, auto_flush=True)
        sub = session.subscribe(scan("P"))
        db.drop_table("P")  # must not raise out of the modification
        assert session.stats()["repro_live_refresh_errors_total"] == 1
        assert sub.stats.refreshes == 0

    def test_notification_counter_counts_real_deliveries_only(self):
        db = _database()
        session = LiveSession(db)
        session.subscribe(_bug_plan())  # no callback registered
        db.table("B").insert(502, "More", until_now(d(8, 2)))
        session.flush()
        assert session.stats()["repro_live_notifications_total"] == 0


class TestSqlSubscriptions:
    _SQL = "SELECT * FROM B WHERE VT OVERLAPS PERIOD '[08/01, 09/01)'"

    def test_subscribe_sql_matches_plan_subscription(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe_sql(self._SQL)
        assert sub.instantiate(d(8, 10)) == db.sql(self._SQL).instantiate(d(8, 10))

    def test_sqlish_subscribe_entry_point_shares_the_cache(self):
        db = _database()
        session = LiveSession(db)
        first = sql_subscribe(self._SQL, session)
        second = session.subscribe_sql(self._SQL)
        assert first.fingerprint == second.fingerprint
        assert session.stats()["repro_live_shared_results"] == 1

    def test_database_subscribe_convenience(self):
        db = _database()
        sub = db.subscribe(self._SQL)
        assert sub.active
        assert sub.manager.database is db

    def test_database_subscribe_recovers_from_a_closed_session(self):
        db = _database()
        first = db.subscribe(self._SQL)
        first.manager.close()
        second = db.subscribe(self._SQL)  # a fresh session is created
        assert second.active
        assert second.manager is not first.manager

    def test_aggregate_subscription_refreshes_by_group_delta(self):
        """A GROUP BY query subscribes like any other plan and refreshes
        via per-group deltas: a single-row write re-aggregates only its
        own group, never the whole relation."""
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe_sql("SELECT C, COUNT(*) AS N FROM B GROUP BY C")
        before = {row.values[0]: row.values[1] for row in sub.result}
        assert before["Spam filter"].instantiate(d(8, 1)) == 1
        db.table("B").insert(503, "Spam filter", until_now(d(8, 1)))
        session.flush()
        after = {row.values[0]: row.values[1] for row in sub.result}
        assert after["Spam filter"].instantiate(d(8, 1)) == 2
        assert after["Crash"] == before["Crash"]  # untouched group
        stats = session.stats()
        assert stats["repro_live_delta_refreshes_total"] == 1
        assert stats["repro_live_full_refreshes_total"] == 0

    def test_equal_aggregate_queries_share_one_materialization(self):
        db = _database()
        session = LiveSession(db)
        sql = "SELECT C, COUNT(*) AS N FROM B GROUP BY C"
        first = session.subscribe_sql(sql)
        second = session.subscribe_sql(sql)
        assert first.fingerprint == second.fingerprint
        assert session.stats()["repro_live_shared_results"] == 1
        assert session.stats()["repro_live_cache_hits_total"] == 1


class TestUpdateSemantics:
    def test_current_update_is_one_coalesced_refresh(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(scan("B"))
        current_update(
            db.table("B"),
            lambda row: row.values[0] == 500,
            (500, "Renamed"),
            at=d(6, 1),
        )
        assert sub.stats.pending_events == 1  # delete+insert = one event
        assert session.flush() == 1
        assert sub.stats.refreshes == 1
