"""DependencyIndex: table → subscription invalidation in O(affected)."""

from repro.engine.plan import Scan, scan
from repro.live import DependencyIndex, referenced_tables
from repro.relational.predicates import col


class TestReferencedTables:
    def test_single_scan(self):
        assert referenced_tables(Scan("B")) == frozenset({"B"})

    def test_join_and_set_operations(self):
        plan = (
            Scan("B")
            .join(Scan("P"), on=col("B.C") == col("P.C"))
            .difference(scan("L").select_columns("X"))
        )
        assert referenced_tables(plan) == frozenset({"B", "P", "L"})

    def test_self_join_reports_table_once(self):
        plan = Scan("B").join(Scan("B"), on=col("L.K") == col("R.K"))
        assert referenced_tables(plan) == frozenset({"B"})


class TestDependencyIndex:
    def test_affected_resolves_only_dependents(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.add("q2", {"B"})
        index.add("q3", {"L"})
        assert index.affected("B") == frozenset({"q1", "q2"})
        assert index.affected("P") == frozenset({"q1"})
        assert index.affected("L") == frozenset({"q3"})
        assert index.affected("unknown") == frozenset()

    def test_remove_unlinks_everywhere(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.remove("q1")
        assert "q1" not in index
        assert index.affected("B") == frozenset()
        assert index.affected("P") == frozenset()
        assert len(index) == 0
        index.remove("q1")  # idempotent

    def test_re_add_replaces_dependency_set(self):
        index = DependencyIndex()
        index.add("q1", {"B"})
        index.add("q1", {"P"})
        assert index.affected("B") == frozenset()
        assert index.affected("P") == frozenset({"q1"})
        assert index.tables_of("q1") == frozenset({"P"})

    def test_table_fanout(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.add("q2", {"B"})
        assert index.table_fanout() == {"B": 2, "P": 1}
