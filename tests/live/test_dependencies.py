"""DependencyIndex: table → subscription invalidation in O(affected)."""

from repro.core.interval import until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import Scan, scan
from repro.live import DependencyIndex, LiveSession, referenced_tables
from repro.relational.predicates import col
from repro.relational.schema import Schema


class TestReferencedTables:
    def test_single_scan(self):
        assert referenced_tables(Scan("B")) == frozenset({"B"})

    def test_join_and_set_operations(self):
        plan = (
            Scan("B")
            .join(Scan("P"), on=col("B.C") == col("P.C"))
            .difference(scan("L").select_columns("X"))
        )
        assert referenced_tables(plan) == frozenset({"B", "P", "L"})

    def test_self_join_reports_table_once(self):
        plan = Scan("B").join(Scan("B"), on=col("L.K") == col("R.K"))
        assert referenced_tables(plan) == frozenset({"B"})


class TestDependencyIndex:
    def test_affected_resolves_only_dependents(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.add("q2", {"B"})
        index.add("q3", {"L"})
        assert index.affected("B") == frozenset({"q1", "q2"})
        assert index.affected("P") == frozenset({"q1"})
        assert index.affected("L") == frozenset({"q3"})
        assert index.affected("unknown") == frozenset()

    def test_remove_unlinks_everywhere(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.remove("q1")
        assert "q1" not in index
        assert index.affected("B") == frozenset()
        assert index.affected("P") == frozenset()
        assert len(index) == 0
        index.remove("q1")  # idempotent

    def test_re_add_replaces_dependency_set(self):
        index = DependencyIndex()
        index.add("q1", {"B"})
        index.add("q1", {"P"})
        assert index.affected("B") == frozenset()
        assert index.affected("P") == frozenset({"q1"})
        assert index.tables_of("q1") == frozenset({"P"})

    def test_table_fanout(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.add("q2", {"B"})
        assert index.table_fanout() == {"B": 2, "P": 1}

    def test_tables_shrink_with_their_last_key(self):
        """Removing a key must unregister every table only that key read —
        stale table entries would keep dead table names alive in
        ``tables()``/``table_fanout()`` forever."""
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.add("q2", {"B"})
        assert index.tables() == frozenset({"B", "P"})
        index.remove("q1")
        assert index.tables() == frozenset({"B"})  # P's last key left
        assert "P" not in index.table_fanout()
        index.remove("q2")
        assert index.tables() == frozenset()
        assert index.table_fanout() == {}

    def test_re_add_does_not_leak_old_tables(self):
        index = DependencyIndex()
        index.add("q1", {"B", "P"})
        index.add("q1", {"L"})  # replaces the dependency set
        assert index.tables() == frozenset({"L"})


class TestManagerUnregistration:
    """The live manager must drive the index through the same contract:
    cancelling the last subscription on a table unregisters the table."""

    @staticmethod
    def _database():
        db = Database("deps")
        bugs = db.create_table("B", Schema.of("BID", ("VT", "interval")))
        bugs.insert(500, until_now(mmdd(1, 25)))
        people = db.create_table("P", Schema.of("PID", ("VT", "interval")))
        people.insert(1, until_now(mmdd(2, 2)))
        return db

    def test_last_subscription_unregisters_its_tables(self):
        db = self._database()
        session = LiveSession(db)
        join_sub = session.subscribe(
            scan("B").join(
                scan("P"), on=col("B.BID") == col("P.PID"),
                left_name="B", right_name="P",
            )
        )
        bugs_sub = session.subscribe(scan("B"))
        assert session._dependencies.tables() == frozenset({"B", "P"})
        join_sub.close()
        # P's only reader is gone; B still has a live subscription.
        assert session._dependencies.tables() == frozenset({"B"})
        assert session._dependencies.affected("P") == frozenset()
        bugs_sub.close()
        assert session._dependencies.tables() == frozenset()
        assert len(session._dependencies) == 0

    def test_shared_fingerprint_unregisters_only_after_both_close(self):
        db = self._database()
        session = LiveSession(db)
        first = session.subscribe(scan("P"))
        second = session.subscribe(scan("P"))  # same fingerprint, shared
        first.close()
        assert session._dependencies.tables() == frozenset({"P"})
        second.close()
        assert session._dependencies.tables() == frozenset()

    def test_events_after_unregistration_do_not_dirty(self):
        db = self._database()
        session = LiveSession(db)
        sub = session.subscribe(scan("P"))
        sub.close()
        db.table("P").insert(2, until_now(mmdd(3, 3)))
        assert session.pending == 0
        assert session._pending_deltas == {}
