"""Live-engine delta routing: incremental flushes and change filters.

PR 1 re-evaluated every dirty plan from scratch on flush; the delta
engine propagates the modification's rows instead.  These tests pin the
manager-level contracts: the incremental path actually carries flushes,
subscriptions whose result did not change stay silent (the
subscription-level change filter), notifications carry the result-level
delta, and every non-incrementalizable situation falls back to a full
re-evaluation without changing observable results.
"""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_update
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


def d(month, day):
    return mmdd(month, day)


def _database():
    db = Database("delta-live")
    bugs = db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Crash", fixed_interval(d(3, 30), d(8, 21)))
    bugs.insert(502, "Other", until_now(d(2, 10)))
    return db


def _spam_plan():
    return scan("B").where(col("C") == lit("Spam filter"))


class TestIncrementalFlush:
    def test_flush_rides_the_delta_path(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        session.flush()
        stats = session.stats()
        assert stats["repro_live_delta_refreshes_total"] == 1
        assert stats["repro_live_full_refreshes_total"] == 0
        assert stats["repro_live_evaluations_total"] == 2  # initial + the delta refresh
        assert 503 in [row[0] for row in sub.instantiate(d(6, 1))]

    def test_delta_result_equals_full_reevaluation(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        current_update(
            db.table("B"),
            lambda r: r.values[0] == 500,
            (500, "Spam filter"),
            at=d(7, 1),
        )
        session.flush()
        expected = db.query(_spam_plan())
        assert frozenset(sub.result.tuples) == frozenset(expected.tuples)

    def test_incremental_false_forces_full_refreshes(self):
        db = _database()
        session = LiveSession(db, incremental=False)
        sub = session.subscribe(_spam_plan())
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        session.flush()
        stats = session.stats()
        assert stats["repro_live_delta_refreshes_total"] == 0
        assert stats["repro_live_full_refreshes_total"] == 1
        assert 503 in [row[0] for row in sub.instantiate(d(6, 1))]

    def test_toggling_incremental_does_not_serve_stale_state(self):
        """Flipping session.incremental off and back on must not leave
        warm operator state behind a full-path refresh — later deltas
        would apply to a stale snapshot and drop rows silently."""
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        session.incremental = False
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        session.flush()
        session.incremental = True
        db.table("B").insert(504, "Spam filter", until_now(d(5, 2)))
        session.flush()
        expected = db.query(_spam_plan())
        assert frozenset(sub.result.tuples) == frozenset(expected.tuples)
        assert {row[0] for row in sub.instantiate(d(6, 1))} >= {503, 504}

    def test_untyped_bulk_load_falls_back_to_full(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        db.table("B").replace_all(
            [OngoingTuple((600, "Spam filter", until_now(d(4, 1))))]
        )
        session.flush()
        stats = session.stats()
        assert stats["repro_live_full_refreshes_total"] == 1
        assert stats["repro_live_delta_refreshes_total"] == 0
        assert [row[0] for row in sub.instantiate(d(5, 1))] == [600]

    def test_delta_path_resumes_after_a_fallback(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        db.table("B").replace_all(
            [OngoingTuple((600, "Spam filter", until_now(d(4, 1))))]
        )
        session.flush()  # fallback rebuilds the operator state...
        db.table("B").insert(601, "Spam filter", until_now(d(5, 1)))
        session.flush()  # ...so this one is incremental again
        assert session.stats()["repro_live_delta_refreshes_total"] == 1
        assert {row[0] for row in sub.instantiate(d(6, 1))} == {600, 601}


class TestChangeFilter:
    def test_irrelevant_row_update_stays_silent(self):
        """The subscription-level filter: modifying a row the plan filters
        out produces an empty propagated delta — and no notification."""
        db = _database()
        session = LiveSession(db)
        received = []
        sub = session.subscribe(_spam_plan(), on_refresh=received.append)
        current_update(
            db.table("B"),
            lambda r: r.values[0] == 502,  # "Other" — not a Spam filter row
            (502, "Other"),
            at=d(6, 1),
        )
        session.flush()
        assert received == []
        assert sub.stats.notifications == 0
        assert sub.stats.suppressed == 1
        assert sub.stats.pending_events == 0  # the flush still drained it
        assert session.stats()["repro_live_suppressed_notifications_total"] == 1

    def test_notify_on_no_change_opts_back_in(self):
        db = _database()
        session = LiveSession(db)
        received = []
        session.subscribe(
            _spam_plan(),
            on_refresh=received.append,
            notify_on_no_change=True,
        )
        current_update(
            db.table("B"),
            lambda r: r.values[0] == 502,
            (502, "Other"),
            at=d(6, 1),
        )
        session.flush()
        assert len(received) == 1
        assert received[0].delta is not None and received[0].delta.is_empty()

    def test_relevant_change_notifies_with_the_result_delta(self):
        db = _database()
        session = LiveSession(db)
        received = []
        session.subscribe(_spam_plan(), on_refresh=received.append)
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        session.flush()
        (event,) = received
        assert event.delta is not None
        assert [t.values[0] for t in event.delta.inserted] == [503]
        assert event.delta.deleted == ()

    def test_unchanged_full_fallback_is_also_silent(self):
        """Suppression works on the fallback path too: an untyped bulk
        load that happens to leave the result identical stays silent."""
        db = _database()
        session = LiveSession(db)
        received = []
        session.subscribe(_spam_plan(), on_refresh=received.append)
        # Re-load B with identical contents — untyped, forces full path.
        db.table("B").replace_all(db.table("B").rows())
        session.flush()
        assert session.stats()["repro_live_full_refreshes_total"] == 1
        assert received == []
        assert session.stats()["repro_live_suppressed_notifications_total"] == 1

    def test_mixed_subscribers_one_refresh(self):
        """One shared result, one suppressed subscriber, one opted-in."""
        db = _database()
        session = LiveSession(db)
        silent_events, eager_events = [], []
        silent = session.subscribe(_spam_plan(), on_refresh=silent_events.append)
        eager = session.subscribe(
            _spam_plan(),
            on_refresh=eager_events.append,
            notify_on_no_change=True,
        )
        current_update(
            db.table("B"),
            lambda r: r.values[0] == 502,
            (502, "Other"),
            at=d(6, 1),
        )
        session.flush()
        assert silent_events == []
        assert len(eager_events) == 1
        assert silent.stats.suppressed == 1
        assert eager.stats.refreshes == 1


class TestPendingDeltaHousekeeping:
    def test_unsubscribe_drops_pending_deltas(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        assert session._pending_deltas  # accumulated while dirty
        sub.close()
        assert session._pending_deltas == {}
        assert session.flush() == 0

    def test_coalesced_deltas_apply_once(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_spam_plan())
        for bid in (503, 504, 505):
            db.table("B").insert(bid, "Spam filter", until_now(d(5, 1)))
        current_delete(db.table("B"), lambda r: r.values[0] == 504, at=d(6, 1))
        assert session.flush() == 1
        assert session.stats()["repro_live_delta_refreshes_total"] == 1
        expected = db.query(_spam_plan())
        assert frozenset(sub.result.tuples) == frozenset(expected.tuples)

    def test_delta_path_error_is_isolated_per_plan(self):
        """An exception raised *inside* delta propagation (not a clean
        NonIncrementalDelta) must not abort the flush: the failing plan
        recovers via full re-evaluation or lands on the error bus, and
        every other dirty plan still refreshes."""
        db = _database()
        session = LiveSession(db)
        # BID > 100 raises once a row with BID=None arrives — on the
        # delta path and on the full path alike.
        doomed = session.subscribe(scan("B").where(col("BID") > lit(100)))
        survivor = session.subscribe(_spam_plan())
        errors = []
        session.bus.subscribe("error", errors.append)
        db.table("B").insert(None, "Spam filter", until_now(d(5, 1)))
        assert session.flush() == 1  # the survivor refreshed
        assert survivor.stats.refreshes == 1
        assert doomed.stats.refreshes == 0
        assert len(errors) == 1 and errors[0][0] == doomed.fingerprint
        assert session.stats()["repro_live_refresh_errors_total"] == 1
        # the doomed plan keeps serving its last good materialization
        assert doomed.result is not None

    def test_reentrant_flush_from_callback_stays_exact(self):
        """A refresh callback that writes and flushes mid-flush must not
        corrupt operator state: nested flushes are deferred and drained
        in order, and the final result matches a fresh evaluation."""
        db = _database()
        session = LiveSession(db, auto_flush=True)
        fired = []

        def write_once_more(event):
            if not fired:
                fired.append(True)
                db.table("B").insert(504, "Spam filter", until_now(d(6, 1)))
                session.flush()  # re-entrant: deferred, not corrupting

        sub = session.subscribe(_spam_plan(), on_refresh=write_once_more)
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        expected = db.query(_spam_plan())
        assert frozenset(sub.result.tuples) == frozenset(expected.tuples)
        assert {row[0] for row in sub.instantiate(d(7, 1))} >= {503, 504}
        assert session.stats()["repro_live_full_refreshes_total"] == 0

    def test_callback_flush_in_manual_session_is_drained(self):
        """An explicit flush() from a refresh callback — in a session
        with no auto_flush/flush_every — must still be honored: the
        outer flush drains it before returning."""
        db = _database()
        session = LiveSession(db)
        other_plan = scan("B").where(col("C") == lit("Crash"))
        other_seen = []
        session.subscribe(other_plan, on_refresh=other_seen.append)
        fired = []

        def cascade(event):
            if not fired:
                fired.append(True)
                db.table("B").insert(
                    510, "Crash", until_now(d(6, 1))
                )
                session.flush()  # re-entrant, must not be lost

        session.subscribe(_spam_plan(), on_refresh=cascade)
        db.table("B").insert(509, "Spam filter", until_now(d(5, 1)))
        session.flush()
        assert session.pending == 0  # the cascade was drained
        assert len(other_seen) == 1
        assert 510 in [t.values[0] for t in other_seen[0].result.tuples]

    def test_full_fallback_consumes_midround_deltas(self):
        """A full re-evaluation reads tables as of *now* — row deltas a
        callback accumulated for that plan earlier in the same round are
        already inside the rebuilt state and must not be applied again
        on the next flush (they would double-count and make a later
        delete a no-op)."""
        db = _database()
        db.create_table("P", Schema.of("PID", ("VT", "interval"))).insert(
            10, until_now(d(2, 2))
        )
        session = LiveSession(db)
        fired = []

        def insert_into_p(event):
            if not fired:
                fired.append(True)
                db.table("P").insert(99, until_now(d(6, 1)))

        session.subscribe(_spam_plan(), on_refresh=insert_into_p)
        p_sub = session.subscribe(scan("P"))
        # order matters: the spam plan refreshes first (its callback
        # writes P mid-round), then P takes the full path (untyped swap).
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        db.table("P").replace_all(
            db.table("P").rows() + (OngoingTuple((11, until_now(d(3, 1)))),)
        )
        session.flush()
        assert {t.values[0] for t in p_sub.result.tuples} == {10, 11, 99}
        # deleting the callback-inserted row must actually retract it
        db.table("P").delete_where(lambda row: row.values[0] != 99)
        session.flush()
        assert {t.values[0] for t in p_sub.result.tuples} == {10, 11}
        assert frozenset(p_sub.result.tuples) == frozenset(
            db.query(scan("P")).tuples
        )

    def test_dropped_and_recreated_table_serves_fresh_rows_only(self):
        """After a drop + re-create, deltas must not resurrect pre-drop
        state (the stale-warm-state regression)."""
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(scan("B"))
        db.drop_table("B")
        session.flush()  # errors, isolated; state invalidated
        recreated = db.create_table(
            "B", Schema.of("BID", "C", ("VT", "interval"))
        )
        recreated.insert(900, "Fresh", until_now(d(5, 1)))
        session.flush()
        assert [t.values[0] for t in sub.result.tuples] == [900]

    def test_dropped_table_still_isolated(self):
        """The delta intake keeps PR 1's per-plan error isolation."""
        db = _database()
        db.create_table("P", Schema.of("PID", ("VT", "interval"))).insert(
            1, until_now(d(2, 2))
        )
        session = LiveSession(db)
        doomed = session.subscribe(scan("P"))
        survivor = session.subscribe(_spam_plan())
        db.table("B").insert(503, "Spam filter", until_now(d(5, 1)))
        db.drop_table("P")
        assert session.flush() == 1
        assert survivor.stats.refreshes == 1
        assert doomed.stats.refreshes == 0
        assert session.stats()["repro_live_refresh_errors_total"] == 1
