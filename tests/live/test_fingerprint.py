"""Plan fingerprints: deterministic structural identity for result sharing."""

from repro.core.interval import fixed_interval
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import Scan, scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _window_plan(start, end):
    return scan("B").where(col("VT").overlaps(lit(fixed_interval(start, end))))


class TestFingerprint:
    def test_structurally_equal_plans_share_a_fingerprint(self):
        left = _window_plan(d(8, 1), d(9, 1))
        right = _window_plan(d(8, 1), d(9, 1))
        assert left is not right
        assert left.fingerprint() == right.fingerprint()

    def test_different_plans_differ(self):
        assert (
            _window_plan(d(8, 1), d(9, 1)).fingerprint()
            != _window_plan(d(8, 1), d(9, 2)).fingerprint()
        )
        assert Scan("B").fingerprint() != Scan("P").fingerprint()

    def test_fingerprint_is_hashable_and_stable(self):
        plan = _window_plan(d(8, 1), d(9, 1))
        assert plan.fingerprint() == plan.fingerprint()
        assert {plan.fingerprint(): "entry"}  # usable as a dict key

    def test_shape_matters_not_just_content(self):
        join_ab = Scan("A").join(Scan("B"), on=col("A.K") == col("B.K"))
        join_ba = Scan("B").join(Scan("A"), on=col("A.K") == col("B.K"))
        assert join_ab.fingerprint() != join_ba.fingerprint()

    def test_referenced_tables_walks_the_whole_tree(self):
        plan = (
            Scan("A")
            .join(Scan("B"), on=col("A.K") == col("B.K"))
            .union(Scan("C"))
        )
        assert plan.referenced_tables() == frozenset({"A", "B", "C"})


class TestSharedMaterialization:
    """Regression: equal plans share one materialization, different don't."""

    def _database(self):
        db = Database("fp")
        table = db.create_table("B", Schema.of("BID", ("VT", "interval")))
        table.insert(500, fixed_interval(d(1, 1), d(2, 1)))
        return db

    def test_equal_plans_share_one_materialization(self):
        db = self._database()
        session = LiveSession(db)
        first = session.subscribe(_window_plan(d(8, 1), d(9, 1)))
        second = session.subscribe(_window_plan(d(8, 1), d(9, 1)))
        assert first.fingerprint == second.fingerprint
        assert first.result is second.result
        stats = session.stats()
        assert stats["repro_live_shared_results"] == 1
        assert stats["repro_live_evaluations_total"] == 1  # the second subscribe was free
        assert stats["repro_live_cache_hits_total"] == 1

    def test_different_plans_do_not_share(self):
        db = self._database()
        session = LiveSession(db)
        session.subscribe(_window_plan(d(8, 1), d(9, 1)))
        session.subscribe(_window_plan(d(8, 1), d(9, 2)))
        stats = session.stats()
        assert stats["repro_live_shared_results"] == 2
        assert stats["repro_live_evaluations_total"] == 2
        assert stats["repro_live_cache_hits_total"] == 0
