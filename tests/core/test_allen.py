"""Unit tests for the interval predicates of Table II (and their inverses).

Every worked example of Table II appears here as a golden test; the
optimized implementations are additionally cross-checked against the
definitional compositions (COMPOSED_REFERENCE) on a mixed pool of shapes.
"""

import pytest

from repro.core import allen
from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited


def d(month, day):
    return mmdd(month, day)


class TestTableTwoExamples:
    """The example rows of Table II, verbatim."""

    def test_before(self):
        result = allen.before(
            until_now(d(10, 17)), fixed_interval(d(10, 20), d(10, 25))
        )
        assert result.true_set == IntervalSet([(d(10, 18), d(10, 21))])

    def test_meets(self):
        result = allen.meets(
            until_now(d(10, 17)), fixed_interval(d(10, 20), d(10, 25))
        )
        assert result.true_set == IntervalSet([(d(10, 20), d(10, 21))])

    def test_overlaps(self):
        result = allen.overlaps(
            until_now(d(10, 17)), fixed_interval(d(10, 14), d(10, 20))
        )
        assert result.true_set == IntervalSet.at_least(d(10, 18))

    def test_starts(self):
        result = allen.starts(
            until_now(d(10, 17)), fixed_interval(d(10, 17), d(10, 20))
        )
        assert result.true_set == IntervalSet.at_least(d(10, 18))

    def test_finishes(self):
        result = allen.finishes(
            until_now(d(10, 17)), fixed_interval(d(10, 20), d(10, 25))
        )
        assert result.true_set == IntervalSet.point(d(10, 25))

    def test_during(self):
        result = allen.during(
            fixed_interval(d(10, 20), d(10, 25)), until_now(d(10, 17))
        )
        assert result.true_set == IntervalSet.at_least(d(10, 25))

    def test_equals(self):
        result = allen.interval_equals(
            until_now(d(10, 17)), fixed_interval(d(10, 17), d(10, 20))
        )
        assert result.true_set == IntervalSet.point(d(10, 20))

    def test_intersection(self):
        result = allen.intersect(
            until_now(d(10, 17)), fixed_interval(d(10, 14), d(10, 20))
        )
        assert result == OngoingInterval(fixed(d(10, 17)), limited(d(10, 20)))


class TestNonEmptinessSemantics:
    """Example 2: emptiness must be checked per reference time."""

    def test_overlaps_false_while_one_side_empty(self):
        result = allen.overlaps(
            until_now(d(10, 17)), fixed_interval(d(10, 14), d(10, 20))
        )
        assert result.instantiate(d(10, 16)) is False  # [10/17, now) empty
        assert result.instantiate(d(10, 18)) is True

    def test_always_empty_interval_never_before_anything(self):
        empty = fixed_interval(d(10, 20), d(10, 10))
        target = fixed_interval(d(11, 1), d(11, 5))
        assert allen.before(empty, target).is_always_false()

    def test_empty_interval_is_during_non_empty(self):
        empty = fixed_interval(d(10, 20), d(10, 10))
        target = fixed_interval(d(11, 1), d(11, 5))
        assert allen.during(empty, target).is_always_true()

    def test_two_empty_intervals_are_equal(self):
        left = fixed_interval(d(10, 20), d(10, 10))
        right = fixed_interval(d(3, 3), d(3, 3))
        assert allen.interval_equals(left, right).is_always_true()

    def test_value_equality_differs_from_equals_on_empty(self):
        left = fixed_interval(d(10, 20), d(10, 10))
        right = fixed_interval(d(3, 3), d(3, 3))
        assert allen.interval_value_equals(left, right).is_always_false()


class TestInverseRelations:
    def test_after_is_swapped_before(self):
        i = until_now(d(10, 17))
        j = fixed_interval(d(10, 20), d(10, 25))
        assert allen.after(j, i) == allen.before(i, j)

    def test_met_by(self):
        i = until_now(d(10, 17))
        j = fixed_interval(d(10, 20), d(10, 25))
        assert allen.met_by(j, i) == allen.meets(i, j)

    def test_overlapped_by_is_symmetric_overlap(self):
        i = until_now(d(10, 17))
        j = fixed_interval(d(10, 14), d(10, 20))
        assert allen.overlapped_by(i, j) == allen.overlaps(i, j)

    def test_started_by_and_finished_by(self):
        i = until_now(d(10, 17))
        j = fixed_interval(d(10, 17), d(10, 20))
        assert allen.started_by(j, i) == allen.starts(i, j)
        assert allen.finished_by(j, i) == allen.finishes(i, j)

    def test_contains_is_swapped_during(self):
        i = fixed_interval(d(10, 20), d(10, 25))
        j = until_now(d(10, 17))
        assert allen.contains(j, i) == allen.during(i, j)


class TestContainsPoint:
    def test_point_in_expanding_interval(self):
        result = allen.contains_point(until_now(d(10, 17)), fixed(d(10, 20)))
        # 10/20 is inside [10/17, rt) exactly when rt > 10/20.
        assert result.true_set == IntervalSet.at_least(d(10, 21))

    def test_now_in_fixed_interval(self):
        result = allen.contains_point(fixed_interval(d(10, 17), d(10, 20)), NOW)
        assert result.true_set == IntervalSet([(d(10, 17), d(10, 20))])


class TestOptimizedMatchesComposed:
    """The gap-based fast paths must equal the Table II compositions."""

    POOL = [
        fixed_interval(0, 5),
        fixed_interval(5, 5),       # always empty
        fixed_interval(8, 3),       # always empty, inverted
        until_now(3),
        OngoingInterval(NOW, fixed(6)),
        OngoingInterval(growing(2), fixed(7)),
        OngoingInterval(fixed(1), limited(9)),
        OngoingInterval(OngoingTimePoint(0, 4), OngoingTimePoint(3, 8)),
        OngoingInterval(NOW, NOW),  # always empty
    ]

    @pytest.mark.parametrize(
        "name", ["before", "meets", "overlaps", "starts", "finishes"]
    )
    def test_pool_cross_validation(self, name):
        fast = getattr(allen, name)
        composed = allen.COMPOSED_REFERENCE[name]
        for i in self.POOL:
            for j in self.POOL:
                assert fast(i, j) == composed(i, j), (name, i, j)
