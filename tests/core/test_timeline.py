"""Unit tests for the fixed time domain T (timeline module)."""

import datetime

import pytest

from repro.core import timeline
from repro.errors import TimeDomainError


class TestSentinels:
    def test_limits_are_ordered_around_finite_points(self):
        assert timeline.MINUS_INF < -(10**9) < 0 < 10**9 < timeline.PLUS_INF

    def test_is_time_point_accepts_limits_and_finite_values(self):
        assert timeline.is_time_point(timeline.MINUS_INF)
        assert timeline.is_time_point(timeline.PLUS_INF)
        assert timeline.is_time_point(0)

    def test_is_time_point_rejects_booleans_and_floats(self):
        assert not timeline.is_time_point(True)
        assert not timeline.is_time_point(1.5)
        assert not timeline.is_time_point("08/15")

    def test_is_time_point_rejects_out_of_range(self):
        assert not timeline.is_time_point(2**61)

    def test_is_finite(self):
        assert timeline.is_finite(0)
        assert not timeline.is_finite(timeline.MINUS_INF)
        assert not timeline.is_finite(timeline.PLUS_INF)

    def test_check_time_point_raises_with_context(self):
        with pytest.raises(TimeDomainError, match="deadline"):
            timeline.check_time_point("tomorrow", what="deadline")


class TestSuccessorPredecessor:
    def test_succ_of_finite_point(self):
        assert timeline.succ(5) == 6

    def test_succ_saturates_at_plus_inf(self):
        assert timeline.succ(timeline.PLUS_INF) == timeline.PLUS_INF

    def test_succ_of_minus_inf_moves_up(self):
        assert timeline.succ(timeline.MINUS_INF) == timeline.MINUS_INF + 1

    def test_pred_of_finite_point(self):
        assert timeline.pred(5) == 4

    def test_pred_saturates_at_minus_inf(self):
        assert timeline.pred(timeline.MINUS_INF) == timeline.MINUS_INF

    def test_pred_of_plus_inf_moves_down(self):
        assert timeline.pred(timeline.PLUS_INF) == timeline.PLUS_INF - 1

    def test_clamp(self):
        assert timeline.clamp(2**62) == timeline.PLUS_INF
        assert timeline.clamp(-(2**62)) == timeline.MINUS_INF
        assert timeline.clamp(17) == 17


class TestPaperNotation:
    def test_mmdd_epoch(self):
        assert timeline.mmdd(1, 1) == 0

    def test_mmdd_matches_calendar(self):
        assert timeline.mmdd(8, 15) == (
            datetime.date(2019, 8, 15) - datetime.date(2019, 1, 1)
        ).days

    def test_mmdd_other_year(self):
        assert timeline.mmdd(1, 1, year=2020) == 365

    def test_fmt_point_roundtrip(self):
        point = timeline.mmdd(10, 17)
        assert timeline.fmt_point(point) == "10/17"
        assert timeline.from_mmdd("10/17") == point

    def test_fmt_point_with_year_prefix(self):
        point = timeline.mmdd(3, 1, year=2021)
        assert timeline.fmt_point(point) == "2021-03/01"
        assert timeline.from_mmdd("2021-03/01") == point

    def test_fmt_point_limits(self):
        assert timeline.fmt_point(timeline.MINUS_INF) == "-inf"
        assert timeline.fmt_point(timeline.PLUS_INF) == "inf"

    def test_from_mmdd_rejects_garbage(self):
        with pytest.raises(TimeDomainError):
            timeline.from_mmdd("not-a-date")

    def test_fmt_interval(self):
        assert timeline.fmt_interval(timeline.mmdd(1, 26), timeline.mmdd(8, 16)) == (
            "[01/26, 08/16)"
        )
        assert timeline.fmt_interval(timeline.MINUS_INF, timeline.PLUS_INF) == (
            "(-inf, inf)"
        )


class TestChronology:
    def test_days_roundtrip(self):
        moment = datetime.datetime(2019, 8, 15)
        tick = timeline.DAYS.from_datetime(moment)
        assert tick == timeline.mmdd(8, 15)
        assert timeline.DAYS.to_datetime(tick) == moment

    def test_microseconds_roundtrip(self):
        moment = datetime.datetime(2019, 1, 1, 0, 0, 1)
        tick = timeline.MICROSECONDS.from_datetime(moment)
        assert tick == 1_000_000
        assert timeline.MICROSECONDS.to_datetime(tick) == moment

    def test_to_datetime_rejects_limits(self):
        with pytest.raises(TimeDomainError):
            timeline.DAYS.to_datetime(timeline.PLUS_INF)
