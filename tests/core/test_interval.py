"""Unit tests for ongoing time intervals (Section V-B, Fig. 4)."""

import pytest

from repro.core.interval import (
    OngoingInterval,
    fixed_interval,
    interval,
    until_now,
)
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited
from repro.errors import IntervalError


class TestConstruction:
    def test_ints_coerce_to_fixed_points(self):
        i = interval(mmdd(10, 17), mmdd(10, 19))
        assert i.start == fixed(mmdd(10, 17))
        assert i.end == fixed(mmdd(10, 19))

    def test_rejects_non_points(self):
        with pytest.raises(IntervalError):
            OngoingInterval("soon", 5)

    def test_until_now(self):
        i = until_now(mmdd(10, 17))
        assert i.start == fixed(mmdd(10, 17))
        assert i.end == NOW
        assert i.format() == "[10/17, now)"


class TestInstantiation:
    def test_endpointwise(self):
        i = until_now(mmdd(10, 17))
        assert i.instantiate(mmdd(10, 20)) == (mmdd(10, 17), mmdd(10, 20))

    def test_may_be_empty(self):
        i = until_now(mmdd(10, 17))
        start, end = i.instantiate(mmdd(10, 10))
        assert start >= end
        assert i.is_empty_at(mmdd(10, 10))
        assert not i.is_empty_at(mmdd(10, 20))


class TestClassification:
    """The taxonomy of Fig. 4."""

    def test_fixed(self):
        i = fixed_interval(mmdd(10, 17), mmdd(10, 19))
        assert i.is_fixed and i.kind == "fixed"

    def test_expanding_with_now_end(self):
        assert until_now(mmdd(10, 17)).kind == "expanding"

    def test_expanding_with_bounded_growth(self):
        i = OngoingInterval(
            fixed(mmdd(10, 17)), OngoingTimePoint(mmdd(10, 19), mmdd(10, 21))
        )
        assert i.is_expanding

    def test_shrinking(self):
        i = OngoingInterval(NOW, fixed(mmdd(10, 19)))
        assert i.is_shrinking and i.kind == "shrinking"

    def test_shrinking_with_growing_start(self):
        i = OngoingInterval(limited(mmdd(10, 17)), fixed(mmdd(10, 19)))
        assert i.is_shrinking

    def test_general(self):
        i = OngoingInterval(
            OngoingTimePoint(mmdd(10, 16), mmdd(10, 17)),
            OngoingTimePoint(mmdd(10, 19), mmdd(10, 20)),
        )
        assert i.kind == "general"


class TestEmptinessAnalysis:
    """The non-empty / partially empty cases of Fig. 4."""

    def test_never_empty_fixed(self):
        i = fixed_interval(mmdd(10, 17), mmdd(10, 19))
        assert i.is_never_empty()
        assert i.non_empty_set().is_universal()

    def test_always_empty_fixed(self):
        i = fixed_interval(mmdd(10, 19), mmdd(10, 17))
        assert i.is_always_empty()

    def test_partially_empty_until_now(self):
        # [10/17, now) is empty up to rt = 10/17 and non-empty afterwards.
        i = until_now(mmdd(10, 17))
        assert i.is_partially_empty()
        assert i.non_empty_set() == IntervalSet.at_least(mmdd(10, 18))

    def test_partially_empty_shrinking(self):
        # [10/16+, 10/19): growing start against a fixed end.
        i = OngoingInterval(growing(mmdd(10, 16)), fixed(mmdd(10, 19)))
        assert i.is_partially_empty()
        # Non-empty while the start still instantiates below 10/19.
        assert i.non_empty_set() == IntervalSet.below(mmdd(10, 19))

    def test_never_empty_expanding(self):
        # a = b < c < d: [10/17, 10/19+10/21) is never empty.
        i = OngoingInterval(
            fixed(mmdd(10, 17)), OngoingTimePoint(mmdd(10, 19), mmdd(10, 21))
        )
        assert i.is_never_empty()

    def test_non_empty_set_matches_pointwise_truth(self):
        cases = [
            until_now(mmdd(10, 17)),
            OngoingInterval(NOW, fixed(mmdd(10, 19))),
            OngoingInterval(growing(mmdd(10, 16)), fixed(mmdd(10, 19))),
            fixed_interval(mmdd(10, 17), mmdd(10, 19)),
        ]
        for i in cases:
            non_empty = i.non_empty_set()
            for rt in range(mmdd(10, 10), mmdd(10, 25)):
                assert (rt in non_empty) == (not i.is_empty_at(rt)), (i, rt)


class TestValueSemantics:
    def test_equality_hash_format(self):
        a = until_now(mmdd(10, 17))
        b = until_now(mmdd(10, 17))
        assert a == b and len({a, b}) == 1
        assert a != fixed_interval(mmdd(10, 17), mmdd(10, 19))
        assert str(a) == "[10/17, now)"
        assert "OngoingInterval" in repr(a)
