"""Unit and property tests for ongoing integers (Section X future work)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.duration import duration, point_value
from repro.core.integer import OngoingInt
from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF, mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited
from repro.errors import TimeDomainError

from tests.conftest import critical_points, interval_sets, ongoing_intervals, ongoing_points


class TestConstruction:
    def test_constant(self):
        value = OngoingInt.constant(7)
        assert value.instantiate(-100) == 7
        assert value.instantiate(100) == 7
        assert value.is_constant()

    def test_step(self):
        value = OngoingInt.step(IntervalSet([(3, 8)]), inside=5, outside=1)
        assert value.instantiate(2) == 1
        assert value.instantiate(3) == 5
        assert value.instantiate(8) == 1

    def test_segments_must_cover_domain(self):
        with pytest.raises(TimeDomainError, match="cover"):
            OngoingInt([(0, PLUS_INF, 0, 0)])

    def test_segments_must_be_contiguous(self):
        with pytest.raises(TimeDomainError, match="contiguous"):
            OngoingInt(
                [(MINUS_INF, 0, 0, 0), (5, PLUS_INF, 0, 0)]
            )

    def test_adjacent_equal_segments_merge(self):
        value = OngoingInt(
            [(MINUS_INF, 0, 3, 0), (0, PLUS_INF, 3, 0)]
        )
        assert len(value.segments) == 1

    def test_sum_of_steps_matches_individual_addition(self):
        sets = [IntervalSet([(0, 5)]), IntervalSet([(3, 9)]), IntervalSet([(4, 5)])]
        fast = OngoingInt.sum_of_steps(sets)
        slow = OngoingInt.constant(0)
        for interval_set in sets:
            slow = slow + OngoingInt.step(interval_set)
        assert fast == slow


class TestArithmetic:
    @given(interval_sets(), interval_sets())
    def test_addition_matches_pointwise(self, s1, s2):
        f = OngoingInt.step(s1, inside=2)
        g = OngoingInt.step(s2, inside=3)
        total = f + g
        for rt in critical_points(s1, s2):
            assert total.instantiate(rt) == f.instantiate(rt) + g.instantiate(rt)

    @given(ongoing_points(), ongoing_points())
    def test_point_value_difference(self, p1, p2):
        delta = point_value(p1) - point_value(p2)
        for rt in critical_points(p1, p2):
            assert delta.instantiate(rt) == p1.instantiate(rt) - p2.instantiate(rt)

    def test_negation_and_scaling(self):
        ramp = point_value(NOW)  # the identity function rt -> rt
        assert (-ramp).instantiate(7) == -7
        assert ramp.scaled(3).instantiate(7) == 21

    @given(ongoing_points(), ongoing_points())
    def test_min_max_match_pointwise(self, p1, p2):
        f, g = point_value(p1), point_value(p2)
        low, high = f.minimum(g), f.maximum(g)
        for rt in critical_points(p1, p2):
            assert low.instantiate(rt) == min(f.instantiate(rt), g.instantiate(rt))
            assert high.instantiate(rt) == max(f.instantiate(rt), g.instantiate(rt))

    def test_mask(self):
        ramp = point_value(NOW)
        masked = ramp.mask(IntervalSet([(3, 8)]), outside=-1)
        assert masked.instantiate(5) == 5
        assert masked.instantiate(2) == -1
        assert masked.instantiate(9) == -1

    def test_int_coercion(self):
        assert (OngoingInt.constant(3) + 4).instantiate(0) == 7
        with pytest.raises(TimeDomainError):
            OngoingInt.constant(3) + "four"


class TestComparisons:
    @given(ongoing_points(), ongoing_points())
    def test_comparisons_match_pointwise(self, p1, p2):
        f, g = point_value(p1), point_value(p2)
        lt, le = f.less_than(g), f.less_equal(g)
        eq, ne = f.equal(g), f.not_equal(g)
        gt, ge = f.greater_than(g), f.greater_equal(g)
        for rt in critical_points(p1, p2):
            x, y = f.instantiate(rt), g.instantiate(rt)
            assert lt.instantiate(rt) == (x < y), rt
            assert le.instantiate(rt) == (x <= y), rt
            assert eq.instantiate(rt) == (x == y), rt
            assert ne.instantiate(rt) == (x != y), rt
            assert gt.instantiate(rt) == (x > y), rt
            assert ge.instantiate(rt) == (x >= y), rt

    def test_threshold_query(self):
        """'When does the count exceed 2?' — an ongoing boolean."""
        count = OngoingInt.sum_of_steps(
            [IntervalSet([(0, 10)]), IntervalSet([(2, 8)]), IntervalSet([(4, 6)])]
        )
        exceeded = count.greater_than(2)
        assert exceeded.true_set == IntervalSet([(4, 6)])


class TestDuration:
    def test_expanding_interval_ramp(self):
        """duration([a, now)) = 0 before a, rt - a afterwards."""
        value = duration(until_now(mmdd(1, 25)))
        assert value.instantiate(mmdd(1, 20)) == 0
        assert value.instantiate(mmdd(1, 25)) == 0
        assert value.instantiate(mmdd(2, 25)) == 31

    def test_fixed_interval_constant(self):
        value = duration(fixed_interval(mmdd(1, 1), mmdd(1, 11)))
        assert value.is_constant()
        assert value.instantiate(0) == 10

    def test_shrinking_interval(self):
        value = duration(OngoingInterval(NOW, fixed(mmdd(1, 11))))
        assert value.instantiate(mmdd(1, 1)) == 10
        assert value.instantiate(mmdd(1, 8)) == 3
        assert value.instantiate(mmdd(2, 1)) == 0

    @given(ongoing_intervals())
    def test_duration_matches_pointwise(self, interval):
        value = duration(interval)
        for rt in critical_points(interval):
            start, end = interval.instantiate(rt)
            assert value.instantiate(rt) == max(0, end - start), rt

    @given(ongoing_points())
    def test_point_value_matches_definition_two(self, point):
        value = point_value(point)
        for rt in critical_points(point):
            assert value.instantiate(rt) == point.instantiate(rt), rt


class TestValueSemantics:
    def test_equality_with_int(self):
        assert OngoingInt.constant(5) == 5
        assert OngoingInt.constant(5) != 6

    def test_format(self):
        ramp = duration(until_now(5))
        text = ramp.format()
        assert "rt" in text
