"""Unit tests for ongoing time points (Definitions 1-2, Fig. 3)."""

import pytest

from repro.core.timeline import MINUS_INF, PLUS_INF, mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited
from repro.errors import TimeDomainError


class TestConstruction:
    def test_requires_a_not_greater_than_b(self):
        with pytest.raises(TimeDomainError, match="a <= b"):
            OngoingTimePoint(5, 3)

    def test_rejects_non_time_points(self):
        with pytest.raises(TimeDomainError):
            OngoingTimePoint("early", 3)

    def test_components(self):
        point = OngoingTimePoint(2, 7)
        assert point.components() == (2, 7)
        assert point.a == 2
        assert point.b == 7


class TestDefinitionTwo:
    """‖a+b‖rt = a if rt <= a; rt if a < rt < b; b otherwise."""

    def test_instantiates_to_a_before_a(self):
        point = OngoingTimePoint(mmdd(10, 17), mmdd(10, 19))
        assert point.instantiate(mmdd(10, 10)) == mmdd(10, 17)
        assert point.instantiate(mmdd(10, 17)) == mmdd(10, 17)

    def test_instantiates_to_rt_between(self):
        point = OngoingTimePoint(mmdd(10, 17), mmdd(10, 19))
        assert point.instantiate(mmdd(10, 18)) == mmdd(10, 18)

    def test_instantiates_to_b_after_b(self):
        point = OngoingTimePoint(mmdd(10, 17), mmdd(10, 19))
        assert point.instantiate(mmdd(10, 19)) == mmdd(10, 19)
        assert point.instantiate(mmdd(10, 25)) == mmdd(10, 19)

    def test_instantiation_is_monotone_in_rt(self):
        point = OngoingTimePoint(3, 11)
        values = [point.instantiate(rt) for rt in range(-5, 20)]
        assert values == sorted(values)

    def test_now_instantiates_to_the_reference_time(self):
        for rt in (mmdd(1, 1), mmdd(8, 15), -400):
            assert NOW.instantiate(rt) == rt


class TestKinds:
    """The taxonomy of Fig. 3."""

    def test_fixed(self):
        point = fixed(mmdd(10, 17))
        assert point.is_fixed and point.kind == "fixed"
        assert point.format() == "10/17"

    def test_now(self):
        assert NOW.is_now and NOW.kind == "now"
        assert NOW.components() == (MINUS_INF, PLUS_INF)
        assert NOW.format() == "now"

    def test_growing(self):
        point = growing(mmdd(10, 17))
        assert point.is_growing and point.kind == "growing"
        assert point.format() == "10/17+"
        # not earlier than 10/17, possibly later
        assert point.instantiate(mmdd(10, 10)) == mmdd(10, 17)
        assert point.instantiate(mmdd(10, 20)) == mmdd(10, 20)

    def test_limited(self):
        point = limited(mmdd(10, 17))
        assert point.is_limited and point.kind == "limited"
        assert point.format() == "+10/17"
        # possibly earlier, but not later than 10/17
        assert point.instantiate(mmdd(10, 10)) == mmdd(10, 10)
        assert point.instantiate(mmdd(10, 20)) == mmdd(10, 17)

    def test_general(self):
        point = OngoingTimePoint(mmdd(10, 17), mmdd(10, 19))
        assert point.kind == "general"
        assert point.format() == "10/17+10/19"

    def test_fixed_point_is_not_now(self):
        assert not fixed(3).is_now
        assert not fixed(3).is_growing
        assert not fixed(3).is_limited


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert OngoingTimePoint(1, 5) == OngoingTimePoint(1, 5)
        assert OngoingTimePoint(1, 5) != OngoingTimePoint(1, 6)
        assert len({OngoingTimePoint(1, 5), OngoingTimePoint(1, 5)}) == 1

    def test_equality_against_other_types(self):
        assert OngoingTimePoint(1, 1) != 1

    def test_repr_is_reconstructible(self):
        point = OngoingTimePoint(1, 5)
        assert eval(repr(point)) == point
