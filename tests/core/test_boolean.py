"""Unit tests for ongoing booleans (Definition 3) and their connectives."""

from repro.core.boolean import O_FALSE, O_TRUE, OngoingBoolean, from_bool
from repro.core.intervalset import IntervalSet
from repro.core.timeline import mmdd


class TestDefinitionThree:
    def test_true_on_true_set_false_elsewhere(self):
        boolean = OngoingBoolean(IntervalSet.at_least(mmdd(10, 18)))
        assert boolean.instantiate(mmdd(10, 18)) is True
        assert boolean.instantiate(mmdd(12, 1)) is True
        assert boolean.instantiate(mmdd(10, 17)) is False

    def test_true_and_false_sets_partition(self):
        boolean = OngoingBoolean(IntervalSet([(1, 4), (9, 12)]))
        union = boolean.true_set | boolean.false_set
        assert union.is_universal()
        assert (boolean.true_set & boolean.false_set).is_empty()


class TestEmbeddingOfFixedBooleans:
    def test_from_bool(self):
        assert from_bool(True) is O_TRUE
        assert from_bool(False) is O_FALSE

    def test_constants_instantiate_constantly(self):
        for rt in (mmdd(1, 1), mmdd(6, 15), -1000):
            assert O_TRUE.instantiate(rt) is True
            assert O_FALSE.instantiate(rt) is False

    def test_classification(self):
        assert O_TRUE.is_always_true() and not O_TRUE.is_contingent()
        assert O_FALSE.is_always_false() and not O_FALSE.is_contingent()
        contingent = OngoingBoolean(IntervalSet.point(5))
        assert contingent.is_contingent()
        assert not contingent.is_always_true()
        assert not contingent.is_always_false()


class TestConnectives:
    """The Theorem 1 equivalences for ∧, ∨, ¬."""

    def test_conjunction_intersects_true_sets(self):
        left = OngoingBoolean(IntervalSet([(1, 6)]))
        right = OngoingBoolean(IntervalSet([(4, 9)]))
        assert (left & right).true_set == IntervalSet([(4, 6)])

    def test_disjunction_unions_true_sets(self):
        left = OngoingBoolean(IntervalSet([(1, 3)]))
        right = OngoingBoolean(IntervalSet([(2, 9)]))
        assert (left | right).true_set == IntervalSet([(1, 9)])

    def test_negation_swaps_sides(self):
        boolean = OngoingBoolean(IntervalSet([(1, 3)]))
        assert (~boolean).true_set == boolean.false_set
        assert (~~boolean) == boolean

    def test_connectives_with_constants(self):
        contingent = OngoingBoolean(IntervalSet.point(5))
        assert (contingent & O_TRUE) == contingent
        assert (contingent & O_FALSE) == O_FALSE
        assert (contingent | O_FALSE) == contingent
        assert (contingent | O_TRUE) == O_TRUE

    def test_de_morgan(self):
        left = OngoingBoolean(IntervalSet([(1, 6)]))
        right = OngoingBoolean(IntervalSet([(4, 9), (20, 25)]))
        assert ~(left & right) == (~left | ~right)
        assert ~(left | right) == (~left & ~right)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = OngoingBoolean(IntervalSet([(1, 3)]))
        b = OngoingBoolean(IntervalSet([(1, 3)]))
        assert a == b
        assert len({a, b}) == 1
        assert a != "true"

    def test_format_shows_both_sides(self):
        boolean = OngoingBoolean(IntervalSet.at_least(mmdd(10, 18)))
        assert boolean.format() == "b[{[10/18, inf)}, {(-inf, 10/18)}]"
