"""Unit tests for the six core operations (Definition 4, Theorem 1, Fig. 6)."""

from repro.core.intervalset import IntervalSet
from repro.core.operations import (
    equal,
    greater_equal,
    greater_than,
    less_equal,
    less_than,
    not_equal,
    ongoing_max,
    ongoing_min,
)
from repro.core.timeline import MINUS_INF, PLUS_INF, mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited


class TestLessThanFiveCases:
    """The five cases of Theorem 1's equivalence for a+b < c+d."""

    def test_case1_always_true(self):
        # a <= b < c <= d
        result = less_than(OngoingTimePoint(1, 2), OngoingTimePoint(5, 9))
        assert result.is_always_true()

    def test_case2_true_before_c(self):
        # a < c <= d <= b
        result = less_than(OngoingTimePoint(1, 9), OngoingTimePoint(4, 6))
        assert result.true_set == IntervalSet.below(4)

    def test_case3_true_from_b_plus_one(self):
        # c <= a <= b < d
        result = less_than(OngoingTimePoint(4, 6), OngoingTimePoint(2, 9))
        assert result.true_set == IntervalSet.at_least(7)

    def test_case4_two_pieces(self):
        # a < c <= b < d
        result = less_than(OngoingTimePoint(1, 6), OngoingTimePoint(4, 9))
        assert result.true_set == IntervalSet([(MINUS_INF, 4), (7, PLUS_INF)])

    def test_case5_always_false(self):
        # otherwise, e.g. c <= d <= a <= b
        result = less_than(OngoingTimePoint(5, 9), OngoingTimePoint(1, 3))
        assert result.is_always_false()

    def test_fixed_points_behave_classically(self):
        assert less_than(fixed(3), fixed(5)).is_always_true()
        assert less_than(fixed(5), fixed(3)).is_always_false()
        assert less_than(fixed(3), fixed(3)).is_always_false()

    def test_now_vs_fixed(self):
        # now < 10/17 holds strictly before 10/17.
        result = less_than(NOW, fixed(mmdd(10, 17)))
        assert result.true_set == IntervalSet.below(mmdd(10, 17))

    def test_proof_table_ordering_a_c_d_b(self):
        """The ordering a < c = d < b proven in the paper's Theorem 1."""
        a, c, b = 2, 5, 9
        result = less_than(OngoingTimePoint(a, b), OngoingTimePoint(c, c))
        for rt in range(a - 2, b + 3):
            expected = OngoingTimePoint(a, b).instantiate(rt) < c
            assert result.instantiate(rt) == expected, rt

    def test_definition_holds_pointwise_on_edge_inputs(self):
        pairs = [
            (NOW, NOW),
            (NOW, growing(3)),
            (limited(3), NOW),
            (growing(3), limited(5)),
            (OngoingTimePoint(MINUS_INF, MINUS_INF), NOW),
            (NOW, OngoingTimePoint(PLUS_INF, PLUS_INF)),
        ]
        for t1, t2 in pairs:
            result = less_than(t1, t2)
            for rt in (MINUS_INF, -10, 0, 3, 4, 5, 6, 10):
                expected = t1.instantiate(rt) < t2.instantiate(rt)
                assert result.instantiate(rt) == expected, (t1, t2, rt)


class TestDerivedComparisons:
    """Table II: <=, =, !=, >, >= expressed through the core operations."""

    def test_less_equal_example(self):
        # now <= 10/17 = b[{(-inf, 10/18)}, {[10/18, inf)}]
        result = less_equal(NOW, fixed(mmdd(10, 17)))
        assert result.true_set == IntervalSet.below(mmdd(10, 18))

    def test_equal_example(self):
        # 10/17 = now holds exactly on [10/17, 10/18).
        result = equal(fixed(mmdd(10, 17)), NOW)
        assert result.true_set == IntervalSet.point(mmdd(10, 17))

    def test_not_equal_example(self):
        result = not_equal(fixed(mmdd(10, 17)), NOW)
        assert result.true_set == IntervalSet.point(mmdd(10, 17)).complement()

    def test_greater_than_is_swapped_less_than(self):
        t1, t2 = OngoingTimePoint(1, 6), OngoingTimePoint(4, 9)
        assert greater_than(t1, t2) == less_than(t2, t1)

    def test_greater_equal_is_negated_less_than(self):
        t1, t2 = OngoingTimePoint(1, 6), OngoingTimePoint(4, 9)
        assert greater_equal(t1, t2) == less_than(t1, t2).negation()


class TestMinMax:
    """Theorem 1: componentwise min/max; Ω is closed."""

    def test_example1_of_the_paper(self):
        # min(10/17, now) = +10/17 (Fig. 5)
        result = ongoing_min(fixed(mmdd(10, 17)), NOW)
        assert result == limited(mmdd(10, 17))

    def test_min_is_componentwise(self):
        assert ongoing_min(OngoingTimePoint(1, 9), OngoingTimePoint(4, 6)) == (
            OngoingTimePoint(1, 6)
        )

    def test_max_is_componentwise(self):
        assert ongoing_max(OngoingTimePoint(1, 9), OngoingTimePoint(4, 6)) == (
            OngoingTimePoint(4, 9)
        )

    def test_max_of_limited_and_fixed_leaves_tf(self):
        # max(min(a, now), b) with b < a: the Tf non-closure witness is a
        # general Ω point.
        result = ongoing_max(limited(8), fixed(3))
        assert result == OngoingTimePoint(3, 8)
        assert result.kind == "general"

    def test_min_max_results_stay_in_omega(self):
        # a <= b must hold for every result (closure, Table I).
        points = [fixed(3), NOW, growing(5), limited(2), OngoingTimePoint(1, 7)]
        for t1 in points:
            for t2 in points:
                low = ongoing_min(t1, t2)
                high = ongoing_max(t1, t2)
                assert low.a <= low.b
                assert high.a <= high.b

    def test_min_max_pointwise_definition(self):
        points = [fixed(3), NOW, growing(5), limited(2), OngoingTimePoint(1, 7)]
        for t1 in points:
            for t2 in points:
                low = ongoing_min(t1, t2)
                high = ongoing_max(t1, t2)
                for rt in (MINUS_INF, -10, 0, 2, 3, 5, 7, 8, 100):
                    assert low.instantiate(rt) == min(
                        t1.instantiate(rt), t2.instantiate(rt)
                    )
                    assert high.instantiate(rt) == max(
                        t1.instantiate(rt), t2.instantiate(rt)
                    )
