"""Unit tests for IntervalSet — the representation behind RT and St."""

import pytest

from repro.core.intervalset import EMPTY_SET, UNIVERSAL_SET, IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF
from repro.errors import IntervalError


class TestNormalization:
    def test_unsorted_input_is_sorted(self):
        assert IntervalSet([(5, 7), (1, 3)]).intervals == ((1, 3), (5, 7))

    def test_overlapping_intervals_merge(self):
        assert IntervalSet([(1, 5), (3, 8)]).intervals == ((1, 8),)

    def test_adjacent_intervals_merge_to_maximal(self):
        assert IntervalSet([(1, 3), (3, 5)]).intervals == ((1, 5),)

    def test_contained_interval_is_absorbed(self):
        assert IntervalSet([(1, 10), (3, 5)]).intervals == ((1, 10),)

    def test_empty_interval_rejected(self):
        with pytest.raises(IntervalError, match="empty or inverted"):
            IntervalSet([(3, 3)])

    def test_inverted_interval_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet([(5, 3)])

    def test_non_time_point_rejected(self):
        with pytest.raises(Exception):
            IntervalSet([("a", "b")])


class TestConstructors:
    def test_empty_and_universal_are_shared(self):
        assert IntervalSet.empty() is EMPTY_SET
        assert IntervalSet.universal() is UNIVERSAL_SET

    def test_point(self):
        assert IntervalSet.point(4).intervals == ((4, 5),)

    def test_point_rejects_plus_inf(self):
        with pytest.raises(IntervalError):
            IntervalSet.point(PLUS_INF)

    def test_at_least(self):
        assert IntervalSet.at_least(4).intervals == ((4, PLUS_INF),)
        assert IntervalSet.at_least(PLUS_INF).is_empty()

    def test_below(self):
        assert IntervalSet.below(4).intervals == ((MINUS_INF, 4),)
        assert IntervalSet.below(MINUS_INF).is_empty()


class TestMembership:
    def test_contains_inside(self):
        s = IntervalSet([(1, 4), (10, 12)])
        assert 1 in s and 3 in s and 10 in s and 11 in s

    def test_end_points_are_exclusive(self):
        s = IntervalSet([(1, 4)])
        assert 4 not in s

    def test_outside(self):
        s = IntervalSet([(1, 4), (10, 12)])
        assert 0 not in s and 5 not in s and 20 not in s

    def test_universal_contains_everything_below_plus_inf(self):
        assert 0 in UNIVERSAL_SET
        assert MINUS_INF in UNIVERSAL_SET

    def test_empty_contains_nothing(self):
        assert 0 not in EMPTY_SET


class TestSetOperations:
    def test_intersection_basic(self):
        left = IntervalSet([(1, 6)])
        right = IntervalSet([(4, 9)])
        assert (left & right).intervals == ((4, 6),)

    def test_intersection_disjoint(self):
        assert (IntervalSet([(1, 3)]) & IntervalSet([(5, 8)])).is_empty()

    def test_intersection_multi_piece(self):
        left = IntervalSet([(0, 10)])
        right = IntervalSet([(1, 3), (5, 7), (9, 12)])
        assert (left & right).intervals == ((1, 3), (5, 7), (9, 10))

    def test_intersection_with_universal_is_identity(self):
        s = IntervalSet([(2, 4)])
        assert (s & UNIVERSAL_SET) == s
        assert (UNIVERSAL_SET & s) == s

    def test_union_merges(self):
        assert (IntervalSet([(1, 3)]) | IntervalSet([(2, 6)])).intervals == ((1, 6),)

    def test_union_keeps_gaps(self):
        assert (IntervalSet([(1, 3)]) | IntervalSet([(5, 6)])).intervals == (
            (1, 3),
            (5, 6),
        )

    def test_union_with_empty_is_identity(self):
        s = IntervalSet([(2, 4)])
        assert (s | EMPTY_SET) == s
        assert (EMPTY_SET | s) == s

    def test_complement_of_bounded_set(self):
        s = IntervalSet([(1, 3), (5, 8)])
        assert (~s).intervals == ((MINUS_INF, 1), (3, 5), (8, PLUS_INF))

    def test_complement_of_universal_is_empty(self):
        assert (~UNIVERSAL_SET).is_empty()
        assert (~EMPTY_SET).is_universal()

    def test_difference(self):
        assert (IntervalSet([(1, 10)]) - IntervalSet([(3, 5)])).intervals == (
            (1, 3),
            (5, 10),
        )

    def test_overlaps_predicate(self):
        assert IntervalSet([(1, 5)]).overlaps(IntervalSet([(4, 9)]))
        assert not IntervalSet([(1, 4)]).overlaps(IntervalSet([(4, 9)]))
        assert not EMPTY_SET.overlaps(UNIVERSAL_SET)


class TestIntrospection:
    def test_cardinality(self):
        assert IntervalSet([(1, 3), (5, 8)]).cardinality == 2
        assert EMPTY_SET.cardinality == 0

    def test_earliest_latest(self):
        s = IntervalSet([(1, 3), (5, 8)])
        assert s.earliest() == 1
        assert s.latest_end() == 8

    def test_earliest_on_empty_raises(self):
        with pytest.raises(IntervalError):
            EMPTY_SET.earliest()
        with pytest.raises(IntervalError):
            EMPTY_SET.latest_end()

    def test_total_ticks(self):
        assert IntervalSet([(1, 3), (5, 8)]).total_ticks() == 5
        assert EMPTY_SET.total_ticks() == 0
        assert UNIVERSAL_SET.total_ticks() == PLUS_INF

    def test_bool_len_iter(self):
        s = IntervalSet([(1, 3), (5, 8)])
        assert bool(s) and not bool(EMPTY_SET)
        assert len(s) == 2
        assert list(s) == [(1, 3), (5, 8)]

    def test_format(self):
        assert EMPTY_SET.format() == "{}"
        assert UNIVERSAL_SET.format() == "{(-inf, inf)}"

    def test_hash_and_equality(self):
        assert IntervalSet([(1, 3)]) == IntervalSet([(1, 2), (2, 3)])
        assert len({IntervalSet([(1, 3)]), IntervalSet([(1, 3)])}) == 1
        assert IntervalSet([(1, 3)]) != "not a set"
