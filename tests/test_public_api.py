"""API hygiene: the public surface is importable, exported, and documented."""

import importlib
import inspect

import pytest

_PACKAGES = [
    "repro",
    "repro.core",
    "repro.relational",
    "repro.engine",
    "repro.baselines",
    "repro.datasets",
    "repro.bench",
    "repro.sqlish",
    "repro.live",
]

_MODULES = [
    "repro.core.timeline",
    "repro.core.timepoint",
    "repro.core.intervalset",
    "repro.core.boolean",
    "repro.core.interval",
    "repro.core.operations",
    "repro.core.allen",
    "repro.core.integer",
    "repro.core.duration",
    "repro.relational.schema",
    "repro.relational.tuples",
    "repro.relational.relation",
    "repro.relational.predicates",
    "repro.relational.algebra",
    "repro.relational.aggregate",
    "repro.engine.database",
    "repro.engine.plan",
    "repro.engine.planner",
    "repro.engine.executor",
    "repro.engine.views",
    "repro.engine.storage",
    "repro.engine.indexes",
    "repro.engine.modifications",
    "repro.engine.bitemporal",
    "repro.engine.rewrite",
    "repro.baselines.fixed_algebra",
    "repro.baselines.clifford",
    "repro.baselines.torp",
    "repro.baselines.forever",
    "repro.baselines.anselma",
    "repro.datasets.mozilla",
    "repro.datasets.incumbent",
    "repro.datasets.synthetic",
    "repro.datasets.workloads",
    "repro.sqlish.lexer",
    "repro.sqlish.parser",
    "repro.sqlish.compiler",
    "repro.sqlish.formatter",
    "repro.bench.harness",
    "repro.live.events",
    "repro.live.dependencies",
    "repro.live.cache",
    "repro.live.subscription",
    "repro.live.manager",
]


@pytest.mark.parametrize("name", _PACKAGES)
def test_package_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.{export} in __all__ but missing"


@pytest.mark.parametrize("name", _MODULES)
def test_module_docstrings_and_exports(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name
    for export in getattr(module, "__all__", []):
        target = getattr(module, export, None)
        assert target is not None, f"{name}.{export}"
        if inspect.isclass(target) or inspect.isfunction(target):
            assert target.__doc__, f"{name}.{export} lacks a docstring"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.10.0"


def test_public_classes_have_documented_public_methods():
    from repro import IntervalSet, OngoingBoolean, OngoingInterval, OngoingTimePoint

    for cls in (IntervalSet, OngoingBoolean, OngoingInterval, OngoingTimePoint):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"
