"""Unit tests for the OSQL parser."""

import pytest

from repro.errors import QueryError
from repro.sqlish import parse
from repro.sqlish import nodes


class TestSelectBasics:
    def test_star(self):
        statement = parse("SELECT * FROM B")
        assert isinstance(statement.items[0], nodes.StarItem)
        assert statement.tables == (nodes.TableRef("B", None),)
        assert statement.where is None

    def test_columns_and_aliases(self):
        statement = parse("SELECT BID, VT AS valid FROM B")
        first, second = statement.items
        assert first.expression == nodes.ColumnRef("BID") and first.alias is None
        assert second.alias == "valid"

    def test_table_aliases(self):
        statement = parse("SELECT * FROM Bugs AS B, Bugs B2")
        assert statement.tables[0] == nodes.TableRef("Bugs", "B")
        assert statement.tables[1] == nodes.TableRef("Bugs", "B2")

    def test_trailing_semicolon(self):
        assert parse("SELECT * FROM B;") is not None

    def test_bare_name_after_from_is_an_alias(self):
        # SQL-style implicit aliasing: "FROM B squirrel" aliases B.
        statement = parse("SELECT * FROM B squirrel")
        assert statement.tables[0] == nodes.TableRef("B", "squirrel")

    def test_garbage_after_statement(self):
        with pytest.raises(QueryError, match="EOF"):
            parse("SELECT * FROM B WHERE BID = 1 42")

    def test_missing_from(self):
        with pytest.raises(QueryError, match="FROM"):
            parse("SELECT BID")


class TestWhereClause:
    def test_comparison(self):
        statement = parse("SELECT * FROM B WHERE BID = 500")
        assert statement.where == nodes.Comparison(
            "=", nodes.ColumnRef("BID"), nodes.NumberLiteral(500)
        )

    def test_temporal_predicate(self):
        statement = parse("SELECT * FROM B WHERE VT OVERLAPS PERIOD '[1, 5)'")
        where = statement.where
        assert isinstance(where, nodes.TemporalPredicate)
        assert where.name == "overlaps"
        assert where.right == nodes.PeriodLiteral("1", "5")

    def test_equals_maps_to_interval_equals(self):
        statement = parse("SELECT * FROM B WHERE VT EQUALS VT")
        assert statement.where.name == "interval_equals"

    def test_and_or_not_precedence(self):
        statement = parse(
            "SELECT * FROM B WHERE NOT BID = 1 AND C = 'x' OR BID = 2"
        )
        where = statement.where
        # OR binds loosest: (NOT(BID=1) AND C='x') OR (BID=2)
        assert isinstance(where, nodes.OrExpr)
        left, right = where.parts
        assert isinstance(left, nodes.AndExpr)
        assert isinstance(left.parts[0], nodes.NotExpr)
        assert isinstance(right, nodes.Comparison)

    def test_parentheses_override(self):
        statement = parse("SELECT * FROM B WHERE BID = 1 AND (C = 'x' OR C = 'y')")
        where = statement.where
        assert isinstance(where, nodes.AndExpr)
        assert isinstance(where.parts[1], nodes.OrExpr)

    def test_condition_requires_predicate(self):
        with pytest.raises(QueryError, match="comparison or temporal"):
            parse("SELECT * FROM B WHERE BID")


class TestLiterals:
    def test_now(self):
        statement = parse("SELECT * FROM B WHERE T = NOW")
        assert statement.where.right == nodes.PointLiteral("now")

    def test_date(self):
        statement = parse("SELECT * FROM B WHERE T = DATE '08/15+'")
        assert statement.where.right == nodes.PointLiteral("08/15+")

    def test_period_body_is_split(self):
        statement = parse("SELECT * FROM B WHERE VT OVERLAPS PERIOD '[08/15, now)'")
        assert statement.where.right == nodes.PeriodLiteral("08/15", "now")

    def test_malformed_period(self):
        with pytest.raises(QueryError, match="PERIOD"):
            parse("SELECT * FROM B WHERE VT OVERLAPS PERIOD '08/15 to 08/24'")

    def test_period_missing_comma(self):
        with pytest.raises(QueryError, match="two endpoints"):
            parse("SELECT * FROM B WHERE VT OVERLAPS PERIOD '[08/15)'")

    def test_intersection_call(self):
        statement = parse("SELECT INTERSECTION(VT, W) AS both FROM B")
        expression = statement.items[0].expression
        assert expression == nodes.IntersectionCall(
            nodes.ColumnRef("VT"), nodes.ColumnRef("W")
        )


class TestAggregates:
    def test_count_star(self):
        statement = parse("SELECT C, COUNT(*) AS n FROM B GROUP BY C")
        assert statement.items[1].expression == nodes.AggregateCall("count", None)
        assert statement.group_by == ("C",)

    def test_sum_duration(self):
        statement = parse("SELECT SUM_DURATION(VT) AS load FROM B GROUP BY C")
        assert statement.items[0].expression == nodes.AggregateCall(
            "sum_duration", "VT"
        )

    def test_min_max(self):
        statement = parse("SELECT MIN(Sev) AS low, C FROM B GROUP BY C")
        assert statement.items[0].expression == nodes.AggregateCall("min", "Sev")

    def test_count_requires_star(self):
        with pytest.raises(QueryError):
            parse("SELECT COUNT(BID) FROM B")

    def test_group_by_multiple_columns(self):
        statement = parse("SELECT COUNT(*) AS n FROM B GROUP BY C, OS")
        assert statement.group_by == ("C", "OS")


class TestSetOperations:
    def test_union(self):
        statement = parse("SELECT * FROM A UNION SELECT * FROM B")
        assert isinstance(statement, nodes.SetOperation)
        assert statement.operator == "union"

    def test_except(self):
        statement = parse("SELECT * FROM A EXCEPT SELECT * FROM B")
        assert statement.operator == "except"

    def test_chained_left_associative(self):
        statement = parse(
            "SELECT * FROM A UNION SELECT * FROM B EXCEPT SELECT * FROM C"
        )
        assert statement.operator == "except"
        assert statement.left.operator == "union"
