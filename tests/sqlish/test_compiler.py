"""Integration tests for the OSQL compiler against the engine."""

import pytest

from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF, mmdd
from repro.core.timepoint import NOW, OngoingTimePoint, fixed, growing, limited
from repro.engine.database import Database
from repro.errors import QueryError
from repro.relational.schema import Schema
from repro.sqlish import compile_statement, run
from repro.sqlish.compiler import _parse_endpoint


def d(month, day):
    return mmdd(month, day)


@pytest.fixture()
def db() -> Database:
    database = Database("email-service")
    bugs = database.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(d(3, 30), d(8, 21)))
    bugs.insert(502, "Dashboard", until_now(d(7, 1)))
    patches = database.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(d(8, 15), d(8, 24)))
    patches.insert(202, "Spam filter", fixed_interval(d(8, 24), d(8, 27)))
    leads = database.create_table("L", Schema.of("Name", "C", ("VT", "interval")))
    leads.insert("Ann", "Spam filter", fixed_interval(d(1, 20), d(8, 18)))
    leads.insert("Bob", "Spam filter", until_now(d(8, 18)))
    return database


class TestEndpointLiterals:
    def test_now(self):
        assert _parse_endpoint("now") == NOW

    def test_fixed_date(self):
        assert _parse_endpoint("08/15") == fixed(d(8, 15))

    def test_growing(self):
        assert _parse_endpoint("08/15+") == growing(d(8, 15))

    def test_limited(self):
        assert _parse_endpoint("+08/15") == limited(d(8, 15))

    def test_general(self):
        assert _parse_endpoint("08/15+08/20") == OngoingTimePoint(d(8, 15), d(8, 20))

    def test_plain_integers(self):
        assert _parse_endpoint("42") == fixed(42)

    def test_infinities(self):
        assert _parse_endpoint("inf") == fixed(PLUS_INF)
        assert _parse_endpoint("-inf") == fixed(MINUS_INF)


class TestSimpleSelects:
    def test_star(self, db):
        assert len(run("SELECT * FROM B", db)) == 3

    def test_fixed_where(self, db):
        result = run("SELECT BID FROM B WHERE C = 'Dashboard'", db)
        assert result.column("BID") == [502]

    def test_temporal_where_restricts_rt(self, db):
        result = run(
            "SELECT * FROM B WHERE VT OVERLAPS PERIOD '[08/15, 08/24)'", db
        )
        by_bid = {row.values[0]: row.rt for row in result}
        assert by_bid[500] == IntervalSet.at_least(d(8, 16))
        assert by_bid[501].is_universal()

    def test_projection_renames(self, db):
        result = run("SELECT BID AS bug, C AS component FROM B", db)
        assert result.schema.names == ("bug", "component")

    def test_computed_column_needs_alias(self, db):
        with pytest.raises(QueryError, match="AS alias"):
            run("SELECT INTERSECTION(VT, VT) FROM B", db)

    def test_unknown_column(self, db):
        with pytest.raises(QueryError, match="unknown column"):
            run("SELECT nope FROM B", db)

    def test_unknown_table(self, db):
        with pytest.raises(QueryError, match="no table named"):
            run("SELECT * FROM nope", db)


class TestJoins:
    RUNNING_EXAMPLE = """
        SELECT B.BID, B.VT AS BVT, P.PID, L.Name,
               INTERSECTION(B.VT, L.VT) AS Resp
        FROM B, P, L
        WHERE B.C = 'Spam filter'
          AND B.C = P.C AND B.VT BEFORE P.VT
          AND B.C = L.C AND B.VT OVERLAPS L.VT
    """

    def test_running_example_reproduces_fig2(self, db):
        result = run(self.RUNNING_EXAMPLE, db)
        rows = {
            (row.values[0], row.values[2], row.values[3], row.rt.format())
            for row in result
        }
        assert rows == {
            (500, 201, "Ann", "{[01/26, 08/16)}"),
            (500, 202, "Ann", "{[01/26, 08/25)}"),
            (500, 202, "Bob", "{[08/19, 08/25)}"),
            (501, 202, "Ann", "{(-inf, inf)}"),
            (501, 202, "Bob", "{[08/19, inf)}"),
        }

    def test_join_predicates_are_placed_for_hash_join(self, db):
        plan = compile_statement(self.RUNNING_EXAMPLE, db)
        assert "HashJoin" in db.explain(plan)

    def test_ambiguous_column_is_rejected(self, db):
        with pytest.raises(QueryError, match="ambiguous"):
            run("SELECT VT FROM B, P WHERE B.C = P.C", db)

    def test_unqualified_unique_column_resolves(self, db):
        result = run("SELECT Name FROM B, L WHERE B.C = L.C", db)
        assert set(result.column("Name")) == {"Ann", "Bob"}

    def test_self_join_with_aliases(self, db):
        result = run(
            "SELECT x.BID, y.BID AS other FROM B x, B y "
            "WHERE x.C = y.C AND x.BID != y.BID",
            db,
        )
        assert len(result) == 2  # 500<->501 both ways

    def test_compiled_matches_manual_instantiation(self, db):
        result = run(self.RUNNING_EXAMPLE, db)
        for rt in (d(8, 1), d(8, 20), d(9, 15)):
            manual = {
                row for row in result.instantiate(rt)
            }
            assert manual == result.instantiate(rt)


class TestSetOperations:
    def test_union_deduplicates(self, db):
        result = run("SELECT BID FROM B UNION SELECT BID FROM B", db)
        assert len(result) == 3

    def test_except(self, db):
        result = run(
            "SELECT BID FROM B EXCEPT SELECT BID FROM B WHERE C = 'Dashboard'",
            db,
        )
        assert sorted(result.column("BID")) == [500, 501]


class TestAggregates:
    def test_group_count(self, db):
        result = run("SELECT C, COUNT(*) AS n FROM B GROUP BY C", db)
        by_component = {row.values[0]: row.values[1] for row in result}
        assert by_component["Spam filter"].instantiate(0) == 2
        assert by_component["Dashboard"].instantiate(0) == 1

    def test_count_over_restricted_rt_varies(self, db):
        result = run(
            "SELECT C, COUNT(*) AS n FROM B "
            "WHERE VT OVERLAPS PERIOD '[08/15, 08/24)' GROUP BY C",
            db,
        )
        by_component = {row.values[0]: row.values[1] for row in result}
        spam = by_component["Spam filter"]
        assert spam.instantiate(d(8, 1)) == 1   # only the fixed bug
        assert spam.instantiate(d(8, 20)) == 2  # now the ongoing one too

    def test_sum_duration(self, db):
        result = run(
            "SELECT C, SUM_DURATION(VT) AS load FROM B GROUP BY C", db
        )
        by_component = {row.values[0]: row.values[1] for row in result}
        rt = d(8, 1)
        assert by_component["Dashboard"].instantiate(rt) == rt - d(7, 1)

    def test_plain_column_must_be_grouped(self, db):
        with pytest.raises(QueryError, match="GROUP BY"):
            run("SELECT BID, COUNT(*) AS n FROM B GROUP BY C", db)

    def test_aggregates_compile_to_pure_plans(self, db):
        """GROUP BY lowers to an Aggregate plan node — fingerprintable,
        so two clients writing the same query share one subscription."""
        from repro.engine.plan import Aggregate

        source = "SELECT C, COUNT(*) AS n FROM B GROUP BY C"
        plan = compile_statement(source, db)
        assert isinstance(plan, Aggregate)
        assert plan.group_columns == ("C",)
        assert plan.aggregate == "count"
        assert plan.output_name == "n"
        assert plan.fingerprint() == compile_statement(source, db).fingerprint()
        assert db.query(plan) == run(source, db)

    def test_scalar_count_over_empty_table_yields_constant_zero(self, db):
        """SQL semantics: COUNT(*) on an empty table is one row whose
        value is the constant-0 ongoing integer, valid at every rt."""
        from repro.relational.schema import Schema as _Schema

        db.create_table("E", _Schema.of("X", ("VT", "interval")))
        result = run("SELECT COUNT(*) AS n FROM E", db)
        assert len(result) == 1
        (row,) = result.tuples
        for rt in (d(1, 1), d(6, 15), d(12, 31)):
            assert row.values[0].instantiate(rt) == 0
            assert result.instantiate(rt) == frozenset({(0,)})

    def test_multiple_aggregates_in_one_select(self, db):
        result = run(
            "SELECT C, COUNT(*) AS a, MAX(BID) AS b FROM B GROUP BY C",
            db,
        )
        rows = {row.values[0]: row.values[1:] for row in result}
        assert set(rows) == {"Spam filter", "Dashboard"}
        count, biggest = rows["Spam filter"]
        assert count.instantiate(d(8, 1)) == 2
        assert biggest.instantiate(d(8, 1)) == 501


class TestSemanticEquivalence:
    """OSQL results instantiate identically to Clifford evaluation."""

    def test_invariant_on_textual_query(self, db):
        result = run(
            "SELECT * FROM B WHERE VT BEFORE PERIOD '[08/24, 08/27)'", db
        )
        relation = db.relation("B")
        for rt in range(d(1, 1), d(12, 1), 11):
            expected = frozenset(
                row
                for row in relation.instantiate(rt)
                if row[2][1] <= d(8, 24) and row[2][0] < row[2][1]
            )
            assert result.instantiate(rt) == expected, rt
