"""Round-trip tests for the OSQL formatter: parse(format(ast)) == ast."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sqlish import parse
from repro.sqlish.formatter import format_statement

_GOLDEN = [
    "SELECT * FROM B",
    "SELECT BID, C AS component FROM B",
    "SELECT * FROM Bugs AS B, Bugs AS B2 WHERE B.BID != B2.BID",
    "SELECT * FROM B WHERE VT OVERLAPS PERIOD '[08/15, 08/24)'",
    "SELECT * FROM B WHERE T = NOW AND C = 'x' OR BID = 2",
    "SELECT * FROM B WHERE NOT (C = 'x' OR C = 'y') AND BID < 3",
    "SELECT INTERSECTION(B.VT, L.VT) AS Resp FROM B, L WHERE B.C = L.C",
    "SELECT * FROM B WHERE T = DATE '08/15+' AND U = DATE '+09/01'",
    "SELECT C, COUNT(*) AS n FROM B GROUP BY C",
    "SELECT SUM_DURATION(VT) AS load, C FROM B GROUP BY C",
    "SELECT BID FROM B UNION SELECT BID FROM C2",
    "SELECT BID FROM B EXCEPT SELECT BID FROM C2 WHERE BID >= 5",
    # the grammar grown by the ordered-surface PR
    "SELECT DISTINCT C FROM B",
    "SELECT * FROM B ORDER BY BID LIMIT 2",
    "SELECT * FROM B ORDER BY C ASC, BID DESC",
    "SELECT C, COUNT(*) AS n, AVG(BID) AS a FROM B GROUP BY C "
    "HAVING n >= 1 AND a < 9 ORDER BY a DESC, C LIMIT 3",
    "SELECT DISTINCT C, SUM_DURATION(VT) AS load FROM B GROUP BY C LIMIT 5",
    # reserved words usable as column names
    "SELECT having, limit FROM S WHERE distinct > 2 ORDER BY limit DESC",
    "SELECT COUNT(*) AS limit FROM B GROUP BY having",
    "SELECT * FROM B WHERE limit = 3 AND having != 0",
]


@pytest.mark.parametrize("sql", _GOLDEN)
def test_golden_roundtrips(sql):
    ast = parse(sql)
    rendered = format_statement(ast)
    assert parse(rendered) == ast, rendered


# ----------------------------------------------------------------------
# Randomized round-trip: generate ASTs structurally, render, re-parse.
# ----------------------------------------------------------------------

from repro.sqlish import nodes  # noqa: E402

_names = st.sampled_from(["BID", "C", "VT", "B.VT", "x.K"])
_values = st.one_of(
    _names.map(nodes.ColumnRef),
    st.integers(min_value=0, max_value=99).map(nodes.NumberLiteral),
    st.sampled_from(["spam", "Dash board"]).map(nodes.StringLiteral),
    st.sampled_from(["now", "08/15", "08/15+", "+08/15"]).map(nodes.PointLiteral),
    st.sampled_from([("01/25", "now"), ("1", "9")]).map(
        lambda pair: nodes.PeriodLiteral(*pair)
    ),
)

_comparisons = st.builds(
    nodes.Comparison, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    _values, _values,
)
_temporals = st.builds(
    nodes.TemporalPredicate,
    st.sampled_from(["overlaps", "before", "during", "interval_equals"]),
    _values, _values,
)
_atoms = st.one_of(_comparisons, _temporals)


def _booleans(depth: int = 2):
    if depth == 0:
        return _atoms
    sub = _booleans(depth - 1)
    return st.one_of(
        _atoms,
        st.lists(sub, min_size=2, max_size=3).map(
            lambda parts: nodes.AndExpr(tuple(parts))
        ),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda parts: nodes.OrExpr(tuple(parts))
        ),
        sub.map(nodes.NotExpr),
    )


_aggregate_calls = st.one_of(
    st.just(nodes.AggregateCall("count", None)),
    st.builds(
        nodes.AggregateCall,
        st.sampled_from(["sum_duration", "min", "max", "avg"]),
        st.sampled_from(["VT", "BID", "limit"]),
    ),
)

_select_items = st.lists(
    st.builds(
        nodes.SelectItem,
        st.one_of(_values, _aggregate_calls),
        st.one_of(st.none(), st.sampled_from(["a1", "a2"])),
    ),
    min_size=1,
    max_size=3,
)

# "having"/"limit" double as column names here on purpose — the
# reserved-word handling must survive the round trip.  "distinct" is
# excluded from the leading select-item position by construction (greedy
# parsing reads a leading DISTINCT as the quantifier).
_order_keys = st.lists(
    st.builds(
        nodes.OrderItem,
        st.sampled_from(["BID", "C", "B.VT", "limit", "having"]),
        st.booleans(),
    ),
    min_size=1,
    max_size=3,
)


@st.composite
def _grown_statements(draw):
    group_by = draw(st.sampled_from([(), ("C",), ("C", "BID"), ("having",)]))
    having = (
        draw(st.one_of(st.none(), _comparisons)) if group_by else None
    )
    return nodes.SelectStatement(
        tuple(draw(_select_items)),
        (nodes.TableRef("B", None), nodes.TableRef("P", "x")),
        draw(st.one_of(st.none(), _booleans())),
        group_by,
        distinct=draw(st.booleans()),
        having=having,
        order_by=tuple(draw(st.one_of(st.just(()), _order_keys))),
        limit=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=9))),
    )


_statements = _grown_statements()


def _normalize(statement):
    """Flatten nested And/Or the way the parser would."""
    # Rendering nested AndExpr(AndExpr(...)) produces flat "a AND b AND c",
    # so the reparsed tree is the flattened form; compare via rendering.
    return format_statement(statement)


@given(_statements)
def test_random_statements_roundtrip(statement):
    rendered = format_statement(statement)
    reparsed = parse(rendered)
    # Rendering is canonical: a second round-trip must be a fixpoint.
    assert format_statement(reparsed) == rendered
