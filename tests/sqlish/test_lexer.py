"""Unit tests for the OSQL tokenizer."""

import pytest

from repro.errors import QueryError
from repro.sqlish.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_are_case_insensitive(self):
        assert texts("select SELECT Select") == ["SELECT", "SELECT", "SELECT"]
        assert kinds("select")[:-1] == ["KEYWORD"]

    def test_names_and_qualified_names(self):
        tokens = tokenize("B.VT bid_2")
        assert tokens[0].kind == "NAME" and tokens[0].text == "B.VT"
        assert tokens[1].kind == "NAME" and tokens[1].text == "bid_2"

    def test_qualified_name_is_not_a_keyword(self):
        # "max.col" must stay a NAME even though MAX is a keyword.
        token = tokenize("max.col")[0]
        assert token.kind == "NAME"

    def test_numbers(self):
        tokens = tokenize("42 -7")
        assert [t.text for t in tokens[:-1]] == ["42", "-7"]
        assert all(t.kind == "NUMBER" for t in tokens[:-1])

    def test_strings(self):
        token = tokenize("'Spam filter'")[0]
        assert token.kind == "STRING" and token.text == "Spam filter"

    def test_unterminated_string(self):
        with pytest.raises(QueryError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        assert texts("= != <> < <= > >=") == [
            "=", "!=", "!=", "<", "<=", ">", ">=",
        ]

    def test_punctuation(self):
        assert kinds("( ) , * ;")[:-1] == [
            "LPAREN", "RPAREN", "COMMA", "STAR", "SEMICOLON",
        ]

    def test_unexpected_character(self):
        with pytest.raises(QueryError, match="unexpected character"):
            tokenize("SELECT @")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_positions_point_into_source(self):
        source = "SELECT  BID"
        tokens = tokenize(source)
        assert source[tokens[1].position :].startswith("BID")


class TestTemporalKeywords:
    def test_all_predicates_lex_as_keywords(self):
        source = "OVERLAPS BEFORE AFTER MEETS DURING CONTAINS STARTS FINISHES EQUALS"
        assert all(t.kind == "KEYWORD" for t in tokenize(source)[:-1])

    def test_literal_keywords(self):
        assert [t.kind for t in tokenize("NOW DATE PERIOD")[:-1]] == [
            "KEYWORD"
        ] * 3
