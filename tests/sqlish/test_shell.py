"""Unit tests for the OSQL shell helpers."""

import pytest

from repro.core.timeline import mmdd
from repro.errors import QueryError
from repro.sqlish.__main__ import demo_database, execute_line


@pytest.fixture()
def db():
    return demo_database()


class TestExecuteLine:
    def test_describe_lists_tables(self, db):
        text = execute_line(r"\d", db, None)
        assert "B(BID:fixed" in text
        assert "[2 tuples]" in text

    def test_select_renders_result(self, db):
        text = execute_line("SELECT BID FROM B;", db, None)
        assert "(500)" in text and "(501)" in text

    def test_rt_probe_appends_instantiation(self, db):
        text = execute_line("SELECT BID FROM B", db, mmdd(8, 20))
        assert "instantiated at rt=" in text

    def test_explain_shows_physical_plan(self, db):
        text = execute_line(r"\explain SELECT BID FROM B WHERE C = 'x'", db, None)
        assert "SeqScan" in text
        assert "FixedFilter" in text

    def test_empty_line_is_noop(self, db):
        assert execute_line("   ;  ", db, None) == ""

    def test_errors_propagate(self, db):
        with pytest.raises(QueryError):
            execute_line("SELECT nope FROM B", db, None)


class TestDemoDatabase:
    def test_matches_fig1(self, db):
        assert sorted(db.tables()) == ["B", "L", "P"]
        assert len(db.relation("B")) == 2
        assert len(db.relation("P")) == 2
        assert len(db.relation("L")) == 2
