"""Property tests: the physical join algorithms are interchangeable.

For random ongoing relations and a predicate eligible for all three
algorithms (fixed equality + temporal overlaps), HashJoin,
MergeIntervalJoin, and NestedLoopJoin must produce the same ongoing
relation — and that relation must satisfy the Theorem 2 law against
a brute-force fixed evaluation.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.fixed_algebra import overlaps_f
from repro.engine.executor import (
    HashJoin,
    MergeIntervalJoin,
    NestedLoopJoin,
    SeqScan,
    materialize,
)
from repro.relational.predicates import col
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple

from tests.conftest import critical_points, interval_sets, ongoing_intervals

_LEFT = Schema.of("K", ("VT", "interval")).qualify("R")
_RIGHT = Schema.of("K", ("VT", "interval")).qualify("S")
_OUT = _LEFT.concat(_RIGHT)

_EQUI = col("R.K") == col("S.K")
_TEMPORAL = col("R.VT").overlaps(col("S.VT"))


@st.composite
def relations(draw, schema):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                ongoing_intervals(),
                interval_sets(),
            ),
            max_size=4,
        )
    )
    return OngoingRelation(
        schema,
        [
            OngoingTuple((key, interval), rt)
            for key, interval, rt in rows
            if not rt.is_empty()
        ],
    )


def _sweep(*relations_):
    values = []
    for relation in relations_:
        for item in relation:
            values.append(item.values[1])
            values.append(item.rt)
    return critical_points(*values)


@given(relations(_LEFT), relations(_RIGHT))
def test_all_three_join_algorithms_agree(left, right):
    hash_join = HashJoin(
        SeqScan(left), SeqScan(right), [0], [0], _OUT,
        fixed_residual=(), ongoing_residual=(_TEMPORAL,),
    )
    merge_join = MergeIntervalJoin(
        SeqScan(left), SeqScan(right), 1, 1, _OUT,
        fixed_residual=(_EQUI,), ongoing_residual=(_TEMPORAL,),
    )
    nested = NestedLoopJoin(
        SeqScan(left), SeqScan(right), _OUT,
        fixed_residual=(_EQUI,), ongoing_residual=(_TEMPORAL,),
    )
    first = materialize(hash_join)
    assert first == materialize(merge_join)
    assert first == materialize(nested)


@given(relations(_LEFT), relations(_RIGHT))
def test_join_satisfies_theorem_two(left, right):
    joined = materialize(
        HashJoin(
            SeqScan(left), SeqScan(right), [0], [0], _OUT,
            fixed_residual=(), ongoing_residual=(_TEMPORAL,),
        )
    )
    for rt in _sweep(left, right):
        expected = frozenset(
            lrow + rrow
            for lrow in left.instantiate(rt)
            for rrow in right.instantiate(rt)
            if lrow[0] == rrow[0] and overlaps_f(lrow[1], rrow[1])
        )
        assert joined.instantiate(rt) == expected, rt
