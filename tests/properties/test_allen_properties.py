"""Property tests: Table II predicates vs. their fixed counterparts.

For every predicate ``pred`` and every reference time::

    ‖pred(i, j)‖rt  ==  predF(‖i‖rt, ‖j‖rt)

with ``predF`` from :mod:`repro.baselines.fixed_algebra` — the same fixed
operations the instantiating baselines use.  Plus: the optimized (gap-based)
implementations agree with the definitional compositions everywhere.
"""

import pytest
from hypothesis import given

from repro.baselines import fixed_algebra
from repro.core import allen

from tests.conftest import critical_points, ongoing_intervals, ongoing_points

_PAIRS = [
    ("before", fixed_algebra.before_f),
    ("after", fixed_algebra.after_f),
    ("meets", fixed_algebra.meets_f),
    ("met_by", fixed_algebra.met_by_f),
    ("overlaps", fixed_algebra.overlaps_f),
    ("starts", fixed_algebra.starts_f),
    ("started_by", fixed_algebra.started_by_f),
    ("finishes", fixed_algebra.finishes_f),
    ("finished_by", fixed_algebra.finished_by_f),
    ("during", fixed_algebra.during_f),
    ("contains", fixed_algebra.contains_f),
    ("interval_equals", fixed_algebra.equals_f),
]


@pytest.mark.parametrize("name,fixed_predicate", _PAIRS)
@given(i=ongoing_intervals(), j=ongoing_intervals())
def test_predicate_matches_fixed_counterpart(name, fixed_predicate, i, j):
    ongoing_predicate = getattr(allen, name)
    result = ongoing_predicate(i, j)
    for rt in critical_points(i, j):
        expected = fixed_predicate(i.instantiate(rt), j.instantiate(rt))
        assert result.instantiate(rt) == expected, (name, rt)


@given(i=ongoing_intervals(), j=ongoing_intervals())
def test_intersection_matches_fixed_counterpart(i, j):
    result = allen.intersect(i, j)
    for rt in critical_points(i, j):
        expected = fixed_algebra.intersect_f(i.instantiate(rt), j.instantiate(rt))
        got = result.instantiate(rt)
        # Empty intervals may differ in representation but not in meaning.
        if expected[0] >= expected[1]:
            assert got[0] >= got[1], rt
        else:
            assert got == expected, rt


@given(i=ongoing_intervals(), p=ongoing_points())
def test_contains_point_matches_fixed(i, p):
    result = allen.contains_point(i, p)
    for rt in critical_points(i, p):
        start, end = i.instantiate(rt)
        expected = start <= p.instantiate(rt) < end
        assert result.instantiate(rt) == expected


@pytest.mark.parametrize("name", sorted(allen.COMPOSED_REFERENCE))
@given(i=ongoing_intervals(), j=ongoing_intervals())
def test_optimized_equals_composed(name, i, j):
    assert getattr(allen, name)(i, j) == allen.COMPOSED_REFERENCE[name](i, j)


@given(i=ongoing_intervals(), j=ongoing_intervals())
def test_overlaps_is_symmetric(i, j):
    assert allen.overlaps(i, j) == allen.overlaps(j, i)


@given(i=ongoing_intervals())
def test_non_empty_interval_overlaps_itself(i):
    """i overlaps i exactly where i is non-empty."""
    assert allen.overlaps(i, i).true_set == i.non_empty_set()


@given(i=ongoing_intervals(), j=ongoing_intervals())
def test_before_and_after_are_exclusive(i, j):
    both = allen.before(i, j) & allen.after(i, j)
    assert both.is_always_false()
