"""Property tests: delta-maintained aggregates are *exact*.

The aggregate extension of the delta-engine contract
(``tests/properties/test_delta_properties.py``): for any GROUP BY plan
and any sequence of typed modifications, re-aggregating only the touched
groups from maintained member sets produces — step for step — a result
byte-identical to a from-scratch :func:`repro.relational.aggregate.group_by`
evaluation.  The modification sequences (the PR-2 generator shapes, with
an extra fixed numeric column for MIN/MAX and a plain row deletion so
groups can *empty*, not just terminate) deliberately drive
group-appears and group-empties transitions: keys enter with their first
member and leave with their last, and the scalar plan must flip between
real counts and the constant-0 empty row.

Because every modification is typed, the incremental path must never fall
back to full re-evaluation — asserted, so the test cannot silently pass
by re-running everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import fixed_interval, until_now
from repro.engine.database import Database
from repro.engine.modifications import (
    current_delete,
    current_insert,
    current_update,
)
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _plans():
    """One representative plan per aggregate delta shape."""
    window = lit(fixed_interval(10, 20))
    return {
        "scalar-count": scan("R").group_by((), "count"),
        "group-count": scan("R").group_by(("K",), "count", output_name="n"),
        "group-sum-duration": scan("R").group_by(("K",), "sum_duration", "VT"),
        "group-min": scan("R").group_by(("K",), "min", "N"),
        "group-max": scan("R").group_by(("K",), "max", "N"),
        # Aggregation over an ongoing filter: a current update can move
        # rows across the window, so whole groups appear and empty at the
        # aggregate even though their base rows remain.
        "filtered-group-count": scan("R")
        .where(col("VT").overlaps(window))
        .group_by(("K",), "count"),
        "scalar-filtered-count": scan("R")
        .where(col("VT").overlaps(window))
        .group_by((), "count"),
    }


PLAN_KEYS = sorted(_plans())

_KEYS = st.integers(min_value=0, max_value=3)
_NUMS = st.integers(min_value=-5, max_value=5)
_TIMES = st.integers(min_value=0, max_value=30)


def _intervals():
    return st.one_of(
        st.tuples(_TIMES).map(lambda t: until_now(t[0])),
        st.tuples(_TIMES, _TIMES).map(
            lambda pair: fixed_interval(min(pair), max(pair) + 2)
        ),
    )


_MODIFICATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _KEYS, _NUMS, _intervals()),
        st.tuples(st.just("current_insert"), _KEYS, _NUMS, _TIMES),
        st.tuples(st.just("current_delete"), _KEYS, _TIMES),
        st.tuples(st.just("current_update"), _KEYS, _KEYS, _NUMS, _TIMES),
        # A plain deletion removes the rows outright — the only way a
        # group's member set truly empties under Torp-style updates.
        st.tuples(st.just("delete_rows"), _KEYS),
    ),
    min_size=1,
    max_size=6,
)


def _fresh_database() -> Database:
    db = Database("aggregate-props")
    table = db.create_table("R", Schema.of("K", "N", ("VT", "interval")))
    table.insert(0, 2, until_now(5))
    table.insert(1, -1, until_now(3))
    table.insert(1, 4, fixed_interval(8, 18))
    table.insert(2, 0, until_now(12))
    return db


def _apply(db: Database, modification) -> None:
    kind = modification[0]
    table = db.table("R")
    if kind == "insert":
        table.insert(modification[1], modification[2], modification[3])
    elif kind == "current_insert":
        current_insert(
            table, (modification[1], modification[2]), at=modification[3]
        )
    elif kind == "current_delete":
        key = modification[1]
        current_delete(table, lambda r: r.values[0] == key, at=modification[2])
    elif kind == "current_update":
        key = modification[1]
        current_update(
            table,
            lambda r: r.values[0] == key,
            (modification[2], modification[3]),
            at=modification[4],
        )
    else:  # delete_rows: drop the key's rows entirely (group empties)
        key = modification[1]
        table.delete_where(lambda r: r.values[0] != key)


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=120)
def test_delta_maintained_aggregates_equal_full_reevaluation(
    plan_key, modifications
):
    """After every modification, the delta-maintained aggregate result is
    byte-identical to a from-scratch evaluation — and no step fell back."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for step, modification in enumerate(modifications):
        _apply(db, modification)
        session.flush()
        expected = db.query(plan)
        assert sub.result == expected, (
            f"{plan_key}: delta-maintained aggregate diverged at step {step} "
            f"after {modification!r}"
        )
    assert session.stats()["repro_live_full_refreshes_total"] == 0


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=40)
def test_aggregate_instantiations_agree_at_all_reference_times(
    plan_key, modifications
):
    """Exactness through the bind operator: the maintained aggregate
    instantiates identically to a fresh evaluation at every rt."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for modification in modifications:
        _apply(db, modification)
    session.flush()
    expected = db.query(plan)
    for rt in range(-2, 35):
        assert sub.instantiate(rt) == expected.instantiate(rt)
    assert session.stats()["repro_live_full_refreshes_total"] == 0
