"""Property tests: the ordered SQL surface is delta-exact.

The ordered extension of the delta-engine contract: for multi-aggregate
GROUP BY (COUNT + AVG + MAX in one pass), HAVING selections over the
aggregate's output, DISTINCT's multiplicity counting, and maintained
ORDER BY / top-k windows, any sequence of typed modifications (the PR-2
generator shapes) produces — step for step — a result byte-identical to
a from-scratch evaluation.

Two plan families, two guarantees:

* **in-window plans** (pure ORDER BY, or a limit no modification sequence
  can overflow) must never fall back to full re-evaluation — asserted, so
  the test cannot silently pass by re-running everything;
* the **tight-k plan** (``LIMIT 2`` over churning groups) exercises the
  boundary-eviction fallback on purpose — there only exactness is
  asserted; the fallback is the documented, logged escape hatch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import fixed_interval, until_now
from repro.engine.database import Database
from repro.engine.modifications import (
    current_delete,
    current_insert,
    current_update,
)
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema

_MULTI_SPECS = [("count", None, "n"), ("avg", "N", "a"), ("max", "N", "m")]


def _in_window_plans():
    """Plans whose delta path must never fall back.

    The top-k limits are far above the 4 possible group keys / any row
    count the generators can produce, so the window is never full and
    every delete lands on the incremental path.
    """
    window = lit(fixed_interval(10, 20))
    return {
        "multi-aggregate": scan("R").group_by(("K",), specs=_MULTI_SPECS),
        "scalar-avg": scan("R").group_by((), "avg", "N"),
        "having-count": scan("R")
        .group_by(("K",), specs=_MULTI_SPECS)
        .where(col("n") >= lit(2)),
        "having-avg": scan("R")
        .group_by(("K",), specs=_MULTI_SPECS)
        .where(col("a") > lit(0)),
        "distinct": scan("R").select_columns("K", "N").distinct(),
        "order-by": scan("R").order_by(("N", True), "K"),
        "topk-wide": scan("R").order_by(("N", True), ("K", False), limit=100),
        "ordered-aggregate": scan("R")
        .group_by(("K",), specs=_MULTI_SPECS)
        .where(col("n") >= lit(1))
        .distinct()
        .order_by(("a", True), "K", limit=50),
        "filtered-order-by": scan("R")
        .where(col("VT").overlaps(window))
        .order_by(("N", True)),
    }


IN_WINDOW_KEYS = sorted(_in_window_plans())


def _tight_plans():
    """Plans whose boundary can be evicted — correctness only."""
    return {
        "topk-tight": scan("R").order_by(("N", True), limit=2),
        "topk-tight-aggregate": scan("R")
        .group_by(("K",), specs=_MULTI_SPECS)
        .order_by(("a", True), limit=2),
    }


TIGHT_KEYS = sorted(_tight_plans())

_KEYS = st.integers(min_value=0, max_value=3)
_NUMS = st.integers(min_value=-5, max_value=5)
_TIMES = st.integers(min_value=0, max_value=30)


def _intervals():
    return st.one_of(
        st.tuples(_TIMES).map(lambda t: until_now(t[0])),
        st.tuples(_TIMES, _TIMES).map(
            lambda pair: fixed_interval(min(pair), max(pair) + 2)
        ),
    )


_MODIFICATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _KEYS, _NUMS, _intervals()),
        st.tuples(st.just("current_insert"), _KEYS, _NUMS, _TIMES),
        st.tuples(st.just("current_delete"), _KEYS, _TIMES),
        st.tuples(st.just("current_update"), _KEYS, _KEYS, _NUMS, _TIMES),
        st.tuples(st.just("delete_rows"), _KEYS),
    ),
    min_size=1,
    max_size=6,
)


def _fresh_database() -> Database:
    db = Database("ordered-props")
    table = db.create_table("R", Schema.of("K", "N", ("VT", "interval")))
    table.insert(0, 2, until_now(5))
    table.insert(1, -1, until_now(3))
    table.insert(1, 4, fixed_interval(8, 18))
    table.insert(2, 0, until_now(12))
    return db


def _apply(db: Database, modification) -> None:
    kind = modification[0]
    table = db.table("R")
    if kind == "insert":
        table.insert(modification[1], modification[2], modification[3])
    elif kind == "current_insert":
        current_insert(
            table, (modification[1], modification[2]), at=modification[3]
        )
    elif kind == "current_delete":
        key = modification[1]
        current_delete(table, lambda r: r.values[0] == key, at=modification[2])
    elif kind == "current_update":
        key = modification[1]
        current_update(
            table,
            lambda r: r.values[0] == key,
            (modification[2], modification[3]),
            at=modification[4],
        )
    else:  # delete_rows: drop the key's rows entirely
        key = modification[1]
        table.delete_where(lambda r: r.values[0] != key)


@given(st.sampled_from(IN_WINDOW_KEYS), _MODIFICATIONS)
@settings(max_examples=120)
def test_ordered_delta_paths_equal_full_reevaluation(plan_key, modifications):
    """After every modification, the maintained result is byte-identical
    to a from-scratch evaluation — with zero full-refresh fallbacks."""
    plan = _in_window_plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for step, modification in enumerate(modifications):
        _apply(db, modification)
        session.flush()
        expected = db.query(plan)
        assert sub.result == expected, (
            f"{plan_key}: maintained result diverged at step {step} "
            f"after {modification!r}"
        )
    assert session.stats()["repro_live_full_refreshes_total"] == 0


@given(st.sampled_from(TIGHT_KEYS), _MODIFICATIONS)
@settings(max_examples=80)
def test_tight_topk_is_exact_even_through_fallbacks(plan_key, modifications):
    """A k=2 window over churning rows: boundary evictions may force the
    logged full-refresh fallback, but the served result never diverges."""
    plan = _tight_plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for step, modification in enumerate(modifications):
        _apply(db, modification)
        session.flush()
        expected = db.query(plan)
        assert sub.result == expected, (
            f"{plan_key}: top-k diverged at step {step} after "
            f"{modification!r}"
        )


@given(st.sampled_from(IN_WINDOW_KEYS), _MODIFICATIONS)
@settings(max_examples=40)
def test_ordered_instantiations_agree_at_all_reference_times(
    plan_key, modifications
):
    """Exactness through the bind operator: the maintained result
    instantiates identically to a fresh evaluation at every rt."""
    plan = _in_window_plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for modification in modifications:
        _apply(db, modification)
    session.flush()
    expected = db.query(plan)
    for rt in range(-2, 35):
        assert sub.instantiate(rt) == expected.instantiate(rt)
    assert session.stats()["repro_live_full_refreshes_total"] == 0
