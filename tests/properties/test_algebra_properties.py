"""Property tests for the relational algebra — Theorem 2 as an executable law.

For every operator ``Op`` on ongoing relations and every reference time::

    ‖Op(R, S)‖rt  ==  OpF(‖R‖rt, ‖S‖rt)

where ``OpF`` is the classical operator on the instantiated (fixed)
relations.  Relations are drawn with random fixed attributes, random
ongoing-interval attributes, and random non-trivial reference times — so
the law is exercised on inputs that are themselves query results.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.fixed_algebra import overlaps_f
from repro.core.intervalset import IntervalSet
from repro.relational import algebra
from repro.relational.predicates import col, lit
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple

from tests.conftest import (
    critical_points,
    interval_sets,
    ongoing_intervals,
)

_SCHEMA = Schema.of("K", ("VT", "interval"))


@st.composite
def small_relations(draw) -> OngoingRelation:
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                ongoing_intervals(),
                interval_sets(),
            ),
            max_size=5,
        )
    )
    tuples = [
        OngoingTuple((key, interval), rt)
        for key, interval, rt in rows
        if not rt.is_empty()
    ]
    return OngoingRelation(_SCHEMA, tuples)


def _sweep_points(*relations: OngoingRelation):
    values = []
    for relation in relations:
        for item in relation:
            values.append(item.values[1])
            values.append(item.rt)
    return critical_points(*values)


class TestSelectionLaw:
    @given(small_relations(), st.integers(-20, 20), st.integers(1, 10))
    def test_selection_commutes_with_instantiation(self, relation, start, width):
        from repro.core.interval import fixed_interval

        window = (start, start + width)
        predicate = col("VT").overlaps(lit(fixed_interval(*window)))
        selected = algebra.select(relation, predicate)
        for rt in _sweep_points(relation):
            expected = frozenset(
                row
                for row in relation.instantiate(rt)
                if overlaps_f(row[1], window)
            )
            assert selected.instantiate(rt) == expected, rt

    @given(small_relations())
    def test_selection_on_fixed_attribute_behaves_classically(self, relation):
        selected = algebra.select(relation, col("K") == lit(1))
        for rt in _sweep_points(relation):
            expected = frozenset(
                row for row in relation.instantiate(rt) if row[0] == 1
            )
            assert selected.instantiate(rt) == expected

    @given(small_relations())
    def test_selection_never_leaves_empty_rt(self, relation):
        selected = algebra.select(relation, col("K") == lit(1))
        assert all(not item.rt.is_empty() for item in selected)


class TestProjectionLaw:
    @given(small_relations())
    def test_projection_commutes_with_instantiation(self, relation):
        projected = algebra.project(relation, ["K"])
        for rt in _sweep_points(relation):
            expected = frozenset(
                (row[0],) for row in relation.instantiate(rt)
            )
            assert projected.instantiate(rt) == expected


class TestProductAndJoinLaw:
    @given(small_relations(), small_relations())
    def test_product_commutes_with_instantiation(self, left, right):
        result = algebra.product(left, right, left_name="R", right_name="S")
        for rt in _sweep_points(left, right):
            expected = frozenset(
                lrow + rrow
                for lrow in left.instantiate(rt)
                for rrow in right.instantiate(rt)
            )
            assert result.instantiate(rt) == expected

    @given(small_relations(), small_relations())
    def test_join_commutes_with_instantiation(self, left, right):
        predicate = (col("R.K") == col("S.K")) & col("R.VT").overlaps(col("S.VT"))
        result = algebra.join(
            left, right, predicate, left_name="R", right_name="S"
        )
        for rt in _sweep_points(left, right):
            expected = frozenset(
                lrow + rrow
                for lrow in left.instantiate(rt)
                for rrow in right.instantiate(rt)
                if lrow[0] == rrow[0] and overlaps_f(lrow[1], rrow[1])
            )
            assert result.instantiate(rt) == expected


class TestSetOperatorLaws:
    @given(small_relations(), small_relations())
    def test_union_commutes_with_instantiation(self, left, right):
        result = algebra.union(left, right)
        for rt in _sweep_points(left, right):
            expected = left.instantiate(rt) | right.instantiate(rt)
            assert result.instantiate(rt) == expected

    @given(small_relations(), small_relations())
    def test_difference_commutes_with_instantiation(self, left, right):
        result = algebra.difference(left, right)
        for rt in _sweep_points(left, right):
            expected = left.instantiate(rt) - right.instantiate(rt)
            assert result.instantiate(rt) == expected, rt

    @given(small_relations(), small_relations())
    def test_intersection_commutes_with_instantiation(self, left, right):
        result = algebra.intersection(left, right)
        for rt in _sweep_points(left, right):
            expected = left.instantiate(rt) & right.instantiate(rt)
            assert result.instantiate(rt) == expected

    @given(small_relations(), small_relations())
    def test_intersection_equals_double_difference(self, left, right):
        via_difference = algebra.difference(left, algebra.difference(left, right))
        direct = algebra.intersection(left, right)
        for rt in _sweep_points(left, right):
            assert direct.instantiate(rt) == via_difference.instantiate(rt)


class TestCoalesce:
    @given(small_relations())
    def test_coalesce_preserves_instantiations(self, relation):
        coalesced = algebra.coalesce(relation)
        for rt in _sweep_points(relation):
            assert coalesced.instantiate(rt) == relation.instantiate(rt)

    @given(small_relations())
    def test_coalesce_yields_unique_values(self, relation):
        coalesced = algebra.coalesce(relation)
        values = [item.values for item in coalesced]
        assert len(values) == len(set(values))
