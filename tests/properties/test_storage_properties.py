"""Property tests: the storage layout round-trips losslessly.

Whatever the library can store it must read back bit-identically —
pack/unpack is the write/read path of the engine's "disk" format.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.duration import duration
from repro.core.intervalset import IntervalSet
from repro.engine.storage import (
    RT_HEADER_BYTES,
    RT_INTERVAL_BYTES,
    pack_rt,
    pack_tuple,
    unpack_rt,
    unpack_tuple,
)
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple

from tests.conftest import (
    interval_sets,
    ongoing_intervals,
    ongoing_points,
)

_SCHEMA = Schema.of(
    "BID", ("Descr", "fixed"), ("T", "point"), ("VT", "interval")
)


@given(interval_sets())
def test_rt_roundtrip(rt_set):
    buffer = pack_rt(rt_set)
    assert len(buffer) == RT_HEADER_BYTES + RT_INTERVAL_BYTES * rt_set.cardinality
    decoded, consumed = unpack_rt(buffer)
    assert decoded == rt_set
    assert consumed == len(buffer)


@given(
    st.integers(min_value=-(2**30), max_value=2**30),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
        max_size=40,
    ),
    ongoing_points(),
    ongoing_intervals(),
    interval_sets(),
)
def test_tuple_roundtrip(bid, description, point, interval, rt_set):
    original = OngoingTuple((bid, description, point, interval), rt_set)
    buffer = pack_tuple(original)
    decoded = unpack_tuple(buffer, _SCHEMA, text_attributes={"Descr"})
    assert decoded == original


@given(ongoing_intervals(), interval_sets())
def test_ongoing_integer_roundtrip(interval, rt_set):
    schema = Schema.of("K", ("N", "integer"))
    original = OngoingTuple((7, duration(interval)), rt_set)
    buffer = pack_tuple(original)
    decoded = unpack_tuple(buffer, schema)
    assert decoded == original


@given(ongoing_intervals())
def test_fixed_layout_is_strictly_smaller(interval):
    item = OngoingTuple((1, interval))
    ongoing_size = len(pack_tuple(item, layout="ongoing"))
    fixed_size = len(pack_tuple(item, layout="fixed"))
    assert fixed_size < ongoing_size
