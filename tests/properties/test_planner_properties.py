"""Property tests: planning choices never change results.

The contract of the cost-based planning layer: predicate pushdown, the
interval-scan access path, and every secondary index (the merge-join
interval registry, the difference and aggregate partition indexes) are
pure *performance* artifacts — for any plan and any typed modification
sequence, a fully tuned evaluator (rewrites on, indexes forced on with
``index_threshold=1``) maintains a result byte-identical, step for step,
to a baseline evaluator with rewrites off and indexes disabled
(``index_threshold=None``).

Three invariants ride along:

* neither side ever falls back to full re-evaluation on these typed
  sequences (a fallback would mean the equivalence proves nothing);
* :meth:`~repro.engine.delta.DeltaEvaluator.check_index_integrity`
  returns no problems after every flush — each index stays an exact
  mirror of the operator cache it accelerates;
* the equivalence holds at every reference time, not just on the
  uninstantiated rows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import fixed_interval, until_now
from repro.engine.cost import CostModel
from repro.engine.database import Database
from repro.engine.delta import DeltaEvaluator
from repro.engine.modifications import (
    current_delete,
    current_insert,
    current_update,
)
from repro.engine.plan import scan
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _plans():
    """Plans chosen so every new planning artifact is on the hot path."""
    window = lit(fixed_interval(10, 20))
    return {
        # Temporal selection over a scan: the IntervalScan access path.
        "temporal-select": scan("R").where(col("VT").overlaps(window)),
        # Empty-escape orientation: `during` with the column on the left
        # must NOT be indexed (an empty instantiation is during any
        # non-empty literal) — the planner has to prove it stays out.
        "during-select": scan("R").where(col("VT").during(window)),
        # Selection above a temporal join: pushdown moves it below the
        # join, and the merge join probes through its interval registry.
        "pushdown-merge-join": scan("R")
        .join(
            scan("S"),
            on=col("R.VT").overlaps(col("S.VT")),
            left_name="R",
            right_name="S",
        )
        .where(col("R.K") == lit(1)),
        # Difference: the fixed-prefix partition index on the left cache.
        "difference": scan("R").difference(scan("S")),
        # Selection above a difference: the Difference pushdown rewrite.
        "pushdown-difference": scan("R")
        .difference(scan("S"))
        .where(col("VT").overlaps(window)),
        # GROUP BY: the member-set partition index, groups appearing and
        # emptying as modifications move rows.
        "group-count": scan("R").group_by(("K",), "count", output_name="n"),
        # Selection above the aggregate on a grouping column: the
        # Aggregate pushdown rewrite.
        "pushdown-aggregate": scan("R")
        .group_by(("K",), "count", output_name="n")
        .where(col("K") == lit(1)),
    }


PLAN_KEYS = sorted(_plans())

_KEYS = st.integers(min_value=0, max_value=3)
_TIMES = st.integers(min_value=0, max_value=30)


def _intervals():
    return st.one_of(
        st.tuples(_TIMES).map(lambda t: until_now(t[0])),
        st.tuples(_TIMES, _TIMES).map(
            lambda pair: fixed_interval(min(pair), max(pair) + 2)
        ),
    )


_MODIFICATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from("RS"), _KEYS, _intervals()),
        st.tuples(st.just("current_insert"), st.sampled_from("RS"), _KEYS, _TIMES),
        st.tuples(st.just("current_delete"), st.sampled_from("RS"), _KEYS, _TIMES),
        st.tuples(
            st.just("current_update"), st.sampled_from("RS"), _KEYS, _KEYS, _TIMES
        ),
    ),
    min_size=1,
    max_size=6,
)


def _fresh_database() -> Database:
    db = Database("planner-props")
    r = db.create_table("R", Schema.of("K", ("VT", "interval")))
    s = db.create_table("S", Schema.of("K", ("VT", "interval")))
    r.insert(0, until_now(5))
    r.insert(1, until_now(3))
    r.insert(1, fixed_interval(8, 18))
    r.insert(1, fixed_interval(8, 18))  # a genuine duplicate row
    r.insert(2, until_now(12))
    r.insert(3, until_now(7))
    s.insert(0, until_now(9))
    s.insert(1, until_now(2))
    s.insert(1, fixed_interval(11, 25))
    s.insert(2, until_now(6))
    s.insert(3, until_now(1))
    return db


def _apply(db: Database, modification) -> None:
    kind, table_name = modification[0], modification[1]
    table = db.table(table_name)
    if kind == "insert":
        table.insert(modification[2], modification[3])
    elif kind == "current_insert":
        current_insert(table, (modification[2],), at=modification[3])
    elif kind == "current_delete":
        key = modification[2]
        current_delete(table, lambda r: r.values[0] == key, at=modification[3])
    else:  # current_update
        key = modification[2]
        current_update(
            table,
            lambda r: r.values[0] == key,
            (modification[3],),
            at=modification[4],
        )


def _capture_deltas(db, captured):
    db.add_delta_listener(
        lambda name, version, delta: captured.update(
            {name: delta if name not in captured else captured[name].merge(delta)}
        )
    )


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=100, deadline=None)
def test_tuned_and_baseline_evaluators_agree_step_for_step(
    plan_key, modifications
):
    """Rewrites + forced indexes vs. no rewrites + no indexes: identical
    maintained results after every flush, clean indexes throughout."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    tuned = DeltaEvaluator(
        plan, db, cost_model=CostModel(index_threshold=1)
    )
    baseline = DeltaEvaluator(
        plan, db, optimize=False, cost_model=CostModel(index_threshold=None)
    )
    tuned.refresh_full()
    baseline.refresh_full()
    captured = {}
    _capture_deltas(db, captured)
    for step, modification in enumerate(modifications):
        captured.clear()
        _apply(db, modification)
        tuned.apply(dict(captured))
        baseline.apply(dict(captured))
        got = tuned.result
        want = baseline.result
        assert got.schema == want.schema
        assert frozenset(got.tuples) == frozenset(want.tuples), (
            f"{plan_key}: tuned plan diverged at step {step} "
            f"after {modification!r}"
        )
        problems = tuned.check_index_integrity()
        assert problems == [], (
            f"{plan_key}: index drifted at step {step}: {problems}"
        )
    # Typed modifications only — both sides must have stayed incremental.
    assert tuned.full_evaluations == 1
    assert baseline.full_evaluations == 1
    assert tuned.delta_applications == len(modifications)
    assert baseline.delta_applications == len(modifications)


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=40, deadline=None)
def test_tuned_plan_instantiates_like_a_fresh_query(plan_key, modifications):
    """The equivalence holds at every reference time: the tuned
    maintained result instantiates exactly like a from-scratch
    (unoptimized, unindexed) evaluation."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    tuned = DeltaEvaluator(plan, db, cost_model=CostModel(index_threshold=1))
    tuned.refresh_full()
    captured = {}
    _capture_deltas(db, captured)
    for modification in modifications:
        _apply(db, modification)
    tuned.apply(dict(captured))
    expected = db.query(plan, optimize=False)
    for rt in range(-2, 35):
        assert tuned.result.instantiate(rt) == expected.instantiate(rt)
    assert tuned.check_index_integrity() == []
