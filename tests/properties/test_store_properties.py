"""Property tests: lazy copy-on-read snapshots are exact.

Two contracts of the versioned result store
(:class:`~repro.relational.relation.ResultStore`), proven over the same
random plans and modification sequences that pin the delta engine
(``test_delta_properties.py``, reused verbatim):

1. **Snapshot equivalence** — after any modification step, the lazily
   materialized, version-cached snapshot is *byte-identical* to the
   eager ``from_deduplicated`` rebuild every refresh used to pay (same
   tuples, same order, same serialized bytes), and snapshots held from
   earlier versions never change retroactively.

2. **Eviction exactness** — with a deliberately tiny
   ``state_budget_bytes``, every refresh recomputes on miss; the served
   results must not drift from a from-scratch evaluation by a single
   byte, while the eviction and rebuild counters actually advance (so
   the test cannot pass by never evicting).
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.delta import DeltaEvaluator
from repro.engine.storage import pack_tuple
from repro.live import LiveSession

# Reuse the delta-exactness generators: one representative plan per delta
# rule, and typed modification sequences (inserts, current deletes/updates,
# current inserts).  The tests directory is not a package, so the module
# is loaded off its own directory, the way pytest itself would.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from test_delta_properties import (  # noqa: E402
    PLAN_KEYS,
    _MODIFICATIONS,
    _apply,
    _fresh_database,
    _plans,
)


def _packed(relation) -> bytes:
    return b"".join(pack_tuple(item) for item in relation.tuples)


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=80)
def test_lazy_snapshot_equals_eager_rebuild(plan_key, modifications):
    """At every step: snapshot() == the eager from_deduplicated rebuild,
    byte for byte — and a held snapshot is frozen forever."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    evaluator = DeltaEvaluator(plan, db)
    evaluator.refresh_full()
    captured = {}
    db.add_delta_listener(
        lambda name, version, delta: captured.update(
            {name: delta if name not in captured else captured[name].merge(delta)}
        )
    )
    held = []  # (snapshot, packed-bytes-at-capture-time)
    for step, modification in enumerate(modifications):
        captured.clear()
        _apply(db, modification)
        evaluator.apply(captured)
        lazy = evaluator.store.snapshot()
        eager = evaluator.store.materialize()  # the pre-store rebuild path
        assert lazy.tuples == eager.tuples, (
            f"{plan_key}: lazy snapshot diverged from the eager rebuild "
            f"at step {step}"
        )
        assert _packed(lazy) == _packed(eager)
        assert evaluator.store.snapshot() is lazy  # cached per version
        held.append((lazy, _packed(lazy)))
    # Copy-on-read means *frozen*: every snapshot still matches the bytes
    # captured when it was taken, no matter what mutated afterwards.
    for snapshot, bytes_then in held:
        assert _packed(snapshot) == bytes_then
    assert evaluator.full_evaluations == 1  # never fell back


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=40)
def test_eviction_recompute_on_miss_has_zero_drift(plan_key, modifications):
    """A 1-byte budget forces evict-after-every-refresh; the served result
    must still equal a from-scratch evaluation at every step, and the
    miss counters must actually advance."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db, state_budget_bytes=1)
    sub = session.subscribe(plan)
    from repro.core.interval import until_now

    for step, modification in enumerate(modifications):
        _apply(db, modification)
        session.flush()
        expected = db.query(plan)
        assert frozenset(sub.result.tuples) == frozenset(expected.tuples), (
            f"{plan_key}: evicted session drifted at step {step} "
            f"after {modification!r}"
        )
    # One guaranteed-relevant modification (every plan reads R), so the
    # miss counter must advance even when the random sequence only
    # touched tables this plan ignores.
    db.table("R").insert(1, until_now(29))
    session.flush()
    assert frozenset(sub.result.tuples) == frozenset(db.query(plan).tuples)
    stats = session.stats()
    assert stats["repro_store_state_evictions_total"] >= 1  # the budget actually bit
    assert stats["repro_store_state_rebuilds_total"] >= 1  # and at least one miss rebuilt
    assert stats["repro_store_state_rebuilds_total"] >= stats["repro_live_full_refreshes_total"] - 1
    session.close()
