"""Property tests: crash-at-any-point recovery is exact.

The durability contract (:mod:`repro.durable`): for any sequence of
modifications, killing the process at *any* byte offset of the
write-ahead log and recovering yields exactly the database state that
was live when the log last reached that offset — records apply
all-or-nothing, a torn trailing record is truncated, and nothing
before the tear is lost or reordered.

The test drives a random op sequence (plain inserts, predicate
deletes, and ``replace_all`` snapshots) against a durable database,
snapshotting the packed table state and WAL offset after every op.
It then replays recovery from a copy of the log truncated at every
recorded boundary — plus a deliberately torn mid-record offset — and
compares byte-for-byte.  A shadow non-durable database applying the
same ops guards the other direction: WAL hooks must not perturb the
live execution path.
"""

import shutil

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.engine.storage import pack_tuple
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple

KEYS = st.integers(min_value=0, max_value=6)
TIMES = st.integers(min_value=1, max_value=50)

INSERT = st.tuples(st.just("insert"), KEYS, TIMES)
DELETE = st.tuples(st.just("delete"), KEYS, st.just(0))
SNAPSHOT = st.tuples(st.just("snapshot"), KEYS, TIMES)

OPS = st.lists(
    st.one_of(INSERT, INSERT, DELETE, SNAPSHOT), min_size=1, max_size=12
)

SCHEMA = Schema.of("K", ("VT", "interval"))


def _apply(table, op):
    kind, key, time = op
    if kind == "insert":
        table.insert(key, until_now(time))
    elif kind == "delete":
        table.delete_where(lambda row: row.values[0] != key)
    else:  # snapshot — replace the whole heap, logged as one record
        table.replace_all(
            [OngoingTuple((key + k, until_now(time + k))) for k in range(2)]
        )


def _packed(db):
    return sorted(pack_tuple(row) for row in db.table("R").rows())


def _recover_at(source_root, target_root, offset):
    """Copy the durable root with its WAL truncated at *offset*."""
    if target_root.exists():
        shutil.rmtree(target_root)
    shutil.copytree(source_root, target_root)
    segment = target_root / "wal" / "wal-00000001.log"
    with open(segment, "r+b") as handle:
        handle.truncate(offset)
    recovered = Database.open(target_root)
    try:
        return _packed(recovered)
    finally:
        recovered.close()


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_recovery_at_every_record_boundary_is_exact(ops, tmp_path_factory):
    base = tmp_path_factory.mktemp("walprop")
    root = base / "db"
    db = Database.open(root, fsync="off")
    shadow = Database("shadow")
    db.create_table("R", SCHEMA)
    shadow.create_table("R", SCHEMA)

    wal = db._durability.wal
    boundaries = [(wal.position().offset, _packed(db))]
    for op in ops:
        _apply(db.table("R"), op)
        _apply(shadow.table("R"), op)
        boundaries.append((wal.position().offset, _packed(db)))

    # The WAL hook must not perturb the live execution path.
    assert _packed(db) == _packed(shadow)
    final_offset = boundaries[-1][0]
    db.close()
    shadow.close()

    target = base / "crashed"
    for offset, expected in boundaries:
        assert _recover_at(root, target, offset) == expected, (
            f"divergence at boundary offset {offset}"
        )

    # A torn final record (crash mid-write) truncates back to the last
    # complete boundary instead of surfacing a half-applied batch.
    last_start = boundaries[-2][0]
    if final_offset - last_start > 1:
        torn = last_start + (final_offset - last_start) // 2
        assert _recover_at(root, target, torn) == boundaries[-2][1]
