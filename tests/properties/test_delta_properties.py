"""Property tests: delta propagation is *exact*.

The contract of the delta engine (:mod:`repro.engine.delta`): for any
plan and any sequence of modifications, routing the typed row deltas
through the cached operator state produces — step for step — the same
ongoing relation as re-evaluating the plan from scratch.  The plans
below cover every operator with a delta rule (fixed and ongoing
selections, projection, hash / merge-interval / nested-loop joins,
union, difference); the modification sequences mix plain inserts
(including duplicates), Torp-style current deletes and updates, and
current inserts.

Because every modification in these sequences is typed, the incremental
path must never fall back to full re-evaluation — the test asserts that
too, so it cannot silently pass by re-running everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import fixed_interval, until_now
from repro.engine.database import Database
from repro.engine.delta import DeltaEvaluator
from repro.engine.modifications import (
    current_delete,
    current_insert,
    current_update,
)
from repro.engine.plan import PlanNode, scan
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _plans():
    """One representative plan per delta rule (keyed for reporting)."""
    window = lit(fixed_interval(10, 20))
    return {
        "fixed-filter": scan("R").where(col("K") == lit(1)),
        "ongoing-filter": scan("R").where(col("VT").overlaps(window)),
        "project": scan("R").select_columns("K"),
        "hash-join": scan("R").join(
            scan("S"),
            on=(col("R.K") == col("S.K"))
            & col("R.VT").overlaps(col("S.VT")),
            left_name="R",
            right_name="S",
        ),
        "merge-join": scan("R").join(
            scan("S"),
            on=col("R.VT").overlaps(col("S.VT")),
            left_name="R",
            right_name="S",
        ),
        "nested-loop-join": scan("R").join(
            scan("S"),
            on=col("R.VT").before(col("S.VT")),
            left_name="R",
            right_name="S",
        ),
        "union": scan("R")
        .where(col("K") == lit(1))
        .union(scan("R").where(col("VT").overlaps(window))),
        "difference": scan("R").difference(scan("S")),
        "select-project-join": scan("R")
        .where(col("VT").overlaps(window))
        .join(scan("S"), on=col("R.K") == col("S.K"), left_name="R", right_name="S")
        .select_columns("R.K", "S.VT"),
    }


PLAN_KEYS = sorted(_plans())

_KEYS = st.integers(min_value=0, max_value=3)
_TIMES = st.integers(min_value=0, max_value=30)


def _intervals():
    return st.one_of(
        st.tuples(_TIMES).map(lambda t: until_now(t[0])),
        st.tuples(_TIMES, _TIMES).map(
            lambda pair: fixed_interval(min(pair), max(pair) + 2)
        ),
    )


_MODIFICATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from("RS"), _KEYS, _intervals()),
        st.tuples(st.just("current_insert"), st.sampled_from("RS"), _KEYS, _TIMES),
        st.tuples(st.just("current_delete"), st.sampled_from("RS"), _KEYS, _TIMES),
        st.tuples(
            st.just("current_update"), st.sampled_from("RS"), _KEYS, _KEYS, _TIMES
        ),
    ),
    min_size=1,
    max_size=6,
)


def _fresh_database() -> Database:
    # Every key owns an open-ended row, so a current delete or update at
    # *any* time modifies something — the sequences exercise real deltas,
    # not no-ops.
    db = Database("delta-props")
    r = db.create_table("R", Schema.of("K", ("VT", "interval")))
    s = db.create_table("S", Schema.of("K", ("VT", "interval")))
    r.insert(0, until_now(5))
    r.insert(1, until_now(3))
    r.insert(1, fixed_interval(8, 18))
    r.insert(1, fixed_interval(8, 18))  # a genuine duplicate row
    r.insert(2, until_now(12))
    r.insert(3, until_now(7))
    s.insert(0, until_now(9))
    s.insert(1, until_now(2))
    s.insert(1, fixed_interval(11, 25))
    s.insert(2, until_now(6))
    s.insert(3, until_now(1))
    return db


def _apply(db: Database, modification) -> None:
    kind, table_name = modification[0], modification[1]
    table = db.table(table_name)
    if kind == "insert":
        table.insert(modification[2], modification[3])
    elif kind == "current_insert":
        current_insert(table, (modification[2],), at=modification[3])
    elif kind == "current_delete":
        key = modification[2]
        current_delete(table, lambda r: r.values[0] == key, at=modification[3])
    else:  # current_update
        key = modification[2]
        current_update(
            table,
            lambda r: r.values[0] == key,
            (modification[3],),
            at=modification[4],
        )


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=120)
def test_delta_propagation_equals_full_reevaluation(plan_key, modifications):
    """After every modification, the delta-maintained subscription result
    equals a from-scratch evaluation — and no step fell back."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for step, modification in enumerate(modifications):
        _apply(db, modification)
        session.flush()
        expected = db.query(plan)
        assert frozenset(sub.result.tuples) == frozenset(expected.tuples), (
            f"{plan_key}: delta-maintained result diverged at step {step} "
            f"after {modification!r}"
        )
    # Typed modifications only — the incremental path must have carried
    # every refresh (a fallback here would mean the test proves nothing).
    assert session.stats()["repro_live_full_refreshes_total"] == 0


@given(st.sampled_from(PLAN_KEYS), _MODIFICATIONS)
@settings(max_examples=60)
def test_standalone_evaluator_matches_plain_queries(plan_key, modifications):
    """The DeltaEvaluator (no live session involved) maintains exactness
    when fed the raw table deltas directly."""
    plan = _plans()[plan_key]
    db = _fresh_database()
    evaluator = DeltaEvaluator(plan, db)
    evaluator.refresh_full()
    captured = {}
    db.add_delta_listener(
        lambda name, version, delta: captured.update(
            {name: delta if name not in captured else captured[name].merge(delta)}
        )
    )
    for modification in modifications:
        captured.clear()
        _apply(db, modification)
        evaluator.apply(captured)
        expected = db.query(plan)
        assert frozenset(evaluator.result.tuples) == frozenset(expected.tuples)
    assert evaluator.full_evaluations == 1
    assert evaluator.delta_applications == len(modifications)


@given(_MODIFICATIONS)
@settings(max_examples=40)
def test_instantiations_agree_at_all_reference_times(modifications):
    """Exactness through the bind operator: the maintained join result
    instantiates identically to a fresh evaluation at every rt."""
    plan = _plans()["hash-join"]
    db = _fresh_database()
    session = LiveSession(db)
    sub = session.subscribe(plan)
    for modification in modifications:
        _apply(db, modification)
    session.flush()
    expected = db.query(plan)
    for rt in range(-2, 35):
        assert sub.instantiate(rt) == expected.instantiate(rt)
