"""Property tests for the core operations — Definition 4 as an executable law.

Every ongoing operation must satisfy, at **every** reference time::

    ‖op(x, y)‖rt  ==  opF(‖x‖rt, ‖y‖rt)

Truth values can only change at component values of the operands, so the
assertions sweep the complete set of critical reference times rather than a
random sample — within each drawn example the check is exhaustive.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.boolean import OngoingBoolean
from repro.core.operations import (
    equal,
    greater_equal,
    greater_than,
    less_equal,
    less_than,
    not_equal,
    ongoing_max,
    ongoing_min,
)

from tests.conftest import critical_points, interval_sets, ongoing_points


class TestComparisonLaws:
    @given(ongoing_points(), ongoing_points())
    def test_less_than_matches_fixed(self, t1, t2):
        result = less_than(t1, t2)
        for rt in critical_points(t1, t2):
            assert result.instantiate(rt) == (
                t1.instantiate(rt) < t2.instantiate(rt)
            ), rt

    @given(ongoing_points(), ongoing_points())
    def test_less_equal_matches_fixed(self, t1, t2):
        result = less_equal(t1, t2)
        for rt in critical_points(t1, t2):
            assert result.instantiate(rt) == (
                t1.instantiate(rt) <= t2.instantiate(rt)
            )

    @given(ongoing_points(), ongoing_points())
    def test_equal_matches_fixed(self, t1, t2):
        result = equal(t1, t2)
        for rt in critical_points(t1, t2):
            assert result.instantiate(rt) == (
                t1.instantiate(rt) == t2.instantiate(rt)
            )

    @given(ongoing_points(), ongoing_points())
    def test_not_equal_matches_fixed(self, t1, t2):
        result = not_equal(t1, t2)
        for rt in critical_points(t1, t2):
            assert result.instantiate(rt) == (
                t1.instantiate(rt) != t2.instantiate(rt)
            )

    @given(ongoing_points(), ongoing_points())
    def test_greater_comparisons_match_fixed(self, t1, t2):
        gt = greater_than(t1, t2)
        ge = greater_equal(t1, t2)
        for rt in critical_points(t1, t2):
            assert gt.instantiate(rt) == (t1.instantiate(rt) > t2.instantiate(rt))
            assert ge.instantiate(rt) == (t1.instantiate(rt) >= t2.instantiate(rt))

    @given(ongoing_points(), ongoing_points())
    def test_trichotomy(self, t1, t2):
        """Exactly one of <, =, > holds at every reference time."""
        lt = less_than(t1, t2)
        eq = equal(t1, t2)
        gt = greater_than(t1, t2)
        for rt in critical_points(t1, t2):
            truths = [lt.instantiate(rt), eq.instantiate(rt), gt.instantiate(rt)]
            assert sum(truths) == 1


class TestMinMaxLaws:
    @given(ongoing_points(), ongoing_points())
    def test_min_matches_fixed(self, t1, t2):
        result = ongoing_min(t1, t2)
        for rt in critical_points(t1, t2):
            assert result.instantiate(rt) == min(
                t1.instantiate(rt), t2.instantiate(rt)
            )

    @given(ongoing_points(), ongoing_points())
    def test_max_matches_fixed(self, t1, t2):
        result = ongoing_max(t1, t2)
        for rt in critical_points(t1, t2):
            assert result.instantiate(rt) == max(
                t1.instantiate(rt), t2.instantiate(rt)
            )

    @given(ongoing_points(), ongoing_points())
    def test_closure(self, t1, t2):
        """Theorem 1: Ω is closed — results satisfy the a <= b invariant."""
        assert ongoing_min(t1, t2).a <= ongoing_min(t1, t2).b
        assert ongoing_max(t1, t2).a <= ongoing_max(t1, t2).b

    @given(ongoing_points(), ongoing_points(), ongoing_points())
    def test_min_max_distribute(self, x, y, z):
        """min and max distribute over each other (used in the Thm 1 proof)."""
        left = ongoing_min(ongoing_max(x, z), ongoing_max(y, z))
        right = ongoing_max(ongoing_min(x, y), z)
        assert left == right


class TestConnectiveLaws:
    @given(interval_sets(), interval_sets())
    def test_conjunction_matches_fixed(self, s1, s2):
        b1, b2 = OngoingBoolean(s1), OngoingBoolean(s2)
        result = b1 & b2
        for rt in critical_points(s1, s2):
            assert result.instantiate(rt) == (
                b1.instantiate(rt) and b2.instantiate(rt)
            )

    @given(interval_sets(), interval_sets())
    def test_disjunction_matches_fixed(self, s1, s2):
        b1, b2 = OngoingBoolean(s1), OngoingBoolean(s2)
        result = b1 | b2
        for rt in critical_points(s1, s2):
            assert result.instantiate(rt) == (
                b1.instantiate(rt) or b2.instantiate(rt)
            )

    @given(interval_sets())
    def test_negation_matches_fixed(self, s1):
        b1 = OngoingBoolean(s1)
        result = ~b1
        for rt in critical_points(s1):
            assert result.instantiate(rt) == (not b1.instantiate(rt))

    @given(interval_sets(), interval_sets())
    def test_de_morgan(self, s1, s2):
        b1, b2 = OngoingBoolean(s1), OngoingBoolean(s2)
        assert ~(b1 & b2) == (~b1 | ~b2)
        assert ~(b1 | b2) == (~b1 & ~b2)

    @given(interval_sets(), interval_sets())
    def test_cardinality_bounds(self, s1, s2):
        """Section IX-D: |b1 ∧ b2| and |b1 ∨ b2| are at most |b1| + |b2|."""
        b1, b2 = OngoingBoolean(s1), OngoingBoolean(s2)
        bound = s1.cardinality + s2.cardinality
        assert (b1 & b2).true_set.cardinality <= bound
        assert (b1 | b2).true_set.cardinality <= bound

    @given(interval_sets())
    def test_negation_cardinality_bound(self, s1):
        """Section IX-D: |b1| - 1 <= |¬b1| <= |b1| + 1."""
        negated = OngoingBoolean(s1).negation().true_set.cardinality
        assert s1.cardinality - 1 <= negated <= s1.cardinality + 1


class TestIntervalSetInvariants:
    @given(interval_sets(), interval_sets())
    def test_operations_preserve_normalization(self, s1, s2):
        """Results stay maximal, non-overlapping, ascending (Section VIII)."""
        for result in (s1 & s2, s1 | s2, s1 - s2, ~s1):
            pairs = result.intervals
            for start, end in pairs:
                assert start < end
            for (_, previous_end), (next_start, _) in zip(pairs, pairs[1:]):
                # strictly separated: adjacency would violate maximality
                assert previous_end < next_start

    @given(interval_sets(), interval_sets())
    def test_membership_agrees_with_operations(self, s1, s2):
        intersection = s1 & s2
        union = s1 | s2
        difference = s1 - s2
        for rt in critical_points(s1, s2):
            assert (rt in intersection) == ((rt in s1) and (rt in s2))
            assert (rt in union) == ((rt in s1) or (rt in s2))
            assert (rt in difference) == ((rt in s1) and (rt not in s2))

    @given(interval_sets())
    def test_complement_is_involution(self, s1):
        assert ~~s1 == s1

    @given(interval_sets(), interval_sets())
    def test_overlaps_iff_nonempty_intersection(self, s1, s2):
        assert s1.overlaps(s2) == (not (s1 & s2).is_empty())
