"""The telemetry→planner loop: per-plan cost history and adaptation."""

import pytest

from repro.core.interval import until_now
from repro.engine.cost import DEFAULT_COST_MODEL, CostModel
from repro.engine.database import Database
from repro.engine.modifications import current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.relational.schema import Schema

FP = "a" * 64
REFERENCE = CostModel.REFERENCE_PER_ROW_SECONDS


class TestHistory:
    def test_fingerprintless_calls_stay_static(self):
        model = CostModel(index_threshold=32)
        assert model.observe_refresh("", per_row_seconds=1.0) == ()
        assert model.effective_index_threshold() == 32
        assert model.effective_full_refresh_ratio() == 2.0
        assert model.use_index(32) is True
        assert model.use_index(31) is False
        assert model.adaptation_report(None) is None

    def test_non_adaptive_model_never_learns(self):
        model = CostModel(adaptive=False)
        assert model.observe_refresh(FP, per_row_seconds=1.0) == ()
        assert model.effective_index_threshold(FP) == 32
        assert model.adaptation_report(FP) is None

    def test_expensive_rows_lower_the_index_threshold(self):
        model = CostModel(index_threshold=32)
        changed = model.observe_refresh(FP, per_row_seconds=REFERENCE * 2)
        assert changed == ("index_threshold",)
        assert model.effective_index_threshold(FP) == 16
        # The learned threshold drives the probe decision for this plan
        # only; fingerprint-less probes still see the static 32.
        assert model.use_index(16, FP) is True
        assert model.use_index(15, FP) is False
        assert model.use_index(16) is False

    def test_cheap_rows_raise_the_threshold_with_clamp(self):
        model = CostModel(index_threshold=32)
        model.observe_refresh(FP, per_row_seconds=REFERENCE / 100)
        # scale would be 100× but clamps at ADAPT_CLAMP.
        assert model.effective_index_threshold(FP) == 32 * 4
        other = "b" * 64
        model.observe_refresh(other, per_row_seconds=REFERENCE * 1000)
        assert model.effective_index_threshold(other) == max(1, round(32 / 4))

    def test_ewma_smooths_rather_than_replaces(self):
        model = CostModel()
        model.observe_refresh(FP, per_row_seconds=REFERENCE)
        model.observe_refresh(FP, per_row_seconds=REFERENCE * 11)
        report = model.adaptation_report(FP)
        # One alpha=0.2 step from 2µs toward 22µs = 6µs, not 22µs.
        assert report["ewma_per_row_us"] == pytest.approx(6.0, rel=1e-3)

    def test_full_observations_decay_the_safety_ratio(self):
        model = CostModel(full_refresh_ratio=2.0)
        assert model.effective_full_refresh_ratio(FP) == 2.0
        changed = model.observe_refresh(FP, full_seconds=0.01)
        assert "full_refresh_ratio" in changed
        # pad = 1.0 / (1 + 1/4) = 0.8
        assert model.effective_full_refresh_ratio(FP) == pytest.approx(1.8)
        for _ in range(19):
            model.observe_refresh(FP, full_seconds=0.01)
        assert model.effective_full_refresh_ratio(FP) == pytest.approx(
            1.0 + 1.0 / 6.0, abs=1e-4
        )

    def test_choose_refresh_uses_learned_costs(self):
        model = CostModel(full_refresh_floor_rows=10)
        # Learned: 100µs per row, full refresh costs 1ms.
        model.observe_refresh(FP, per_row_seconds=1e-4, full_seconds=1e-3)
        decision = model.choose_refresh(
            pending_rows=1000,
            apply_seconds=0.0,  # cumulative averages say nothing...
            apply_rows=0,
            full_seconds=None,  # ...and no full was measured this cycle
            fingerprint=FP,
        )
        # ...yet the history projects 1000 × 100µs = 100ms >> 1ms full.
        assert decision.full is True
        assert "[adapted]" in decision.reason
        static = model.choose_refresh(
            pending_rows=1000,
            apply_seconds=0.0,
            apply_rows=0,
            full_seconds=None,
        )
        assert static.full is False  # no history, no costs, stay delta

    def test_history_table_is_bounded(self):
        model = CostModel()
        for index in range(CostModel.MAX_HISTORY + 8):
            model.observe_refresh(f"fp{index}", per_row_seconds=REFERENCE)
        assert len(model._history) == CostModel.MAX_HISTORY
        assert model.adaptation_report("fp0") is None  # oldest evicted

    def test_adaptation_report_shape(self):
        model = CostModel()
        model.observe_refresh(FP, per_row_seconds=REFERENCE, full_seconds=0.5)
        report = model.adaptation_report(FP)
        assert set(report) == {
            "index_threshold",
            "full_refresh_ratio",
            "ewma_per_row_us",
            "ewma_full_ms",
            "observations",
        }
        assert report["observations"] == 2
        assert report["ewma_full_ms"] == pytest.approx(500.0)


class TestMaintainerLoop:
    """Refreshes feed the model; adaptations are counted and surfaced."""

    def _session(self):
        db = Database("cost-adapt")
        table = db.create_table("T", Schema.of("K", ("VT", "interval")))
        for index in range(8):
            table.insert(index, until_now(index))
        return db, LiveSession(db)

    def test_refreshes_accumulate_history_and_count_adaptations(self):
        db, session = self._session()
        try:
            subscription = session.subscribe(scan("T"), name="adapt")
            fingerprint = subscription.fingerprint
            for offset in range(4):
                current_insert(db.table("T"), (100 + offset,), at=50 + offset)
                session.flush()
            shared = session.shared_results()[0]
            model = shared._maintainer.cost_model or DEFAULT_COST_MODEL
            report = model.adaptation_report(fingerprint)
            assert report is not None
            assert report["observations"] >= 1
            assert session.stats()[
                "repro_live_cost_adaptations_total"
            ] == shared.cost_adaptations
            assert shared.cost_adaptations >= 1
        finally:
            session.close()

    def test_explain_analyze_surfaces_learned_parameters(self):
        db, session = self._session()
        try:
            subscription = session.subscribe(scan("T"), name="adapt")
            current_insert(db.table("T"), (100,), at=50)
            session.flush()
            text = subscription.explain_analyze()
            assert "cost_adaptations=" in text
            assert "cost=index_threshold=" in text
            data = subscription.explain_analyze(format="json")
            adaptation = data["totals"]["cost_adaptation"]
            assert adaptation["index_threshold"] >= 1
            assert adaptation["observations"] >= 1
        finally:
            session.close()

    def test_adaptations_reach_the_registry_counter(self):
        db, session = self._session()
        try:
            session.subscribe(scan("T"), name="adapt")
            current_insert(db.table("T"), (100,), at=50)
            session.flush()
            snapshot = session.metrics.snapshot()
            family = snapshot.get("repro_cost_adaptations_total")
            assert family is not None
            total = sum(sample["value"] for sample in family["samples"])
            assert total == session.stats()[
                "repro_live_cost_adaptations_total"
            ]
            parameters = {
                sample["labels"]["parameter"] for sample in family["samples"]
            }
            assert parameters <= {"index_threshold", "full_refresh_ratio"}
        finally:
            session.close()
