"""The versioned copy-on-read result store and the operator-state budget.

Tentpole contracts of the O(|Δ|) refresh tail:

* a delta refresh mutates the store and bumps its version **without**
  materializing anything — the O(|result|) copy happens only when a
  consumer reads, at most once per version, shared by all readers;
* a snapshot, once handed out, is frozen: later mutations of the store
  (including structural churn that leaves the output set unchanged) can
  never reach it — byte-for-byte;
* with ``state_budget_bytes`` set, operator state above the budget is
  evicted after the refresh while the result keeps serving, and the next
  refresh transparently rebuilds it (recompute-on-miss), with the
  eviction/rebuild counters advancing and zero correctness drift;
* the sizeof-based memory guard: after every flush the maintained state
  respects the configured budget.
"""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.engine.database import Database
from repro.engine.delta import Delta, DeltaEvaluator
from repro.engine.modifications import current_delete, current_update
from repro.engine.plan import scan
from repro.engine.storage import pack_tuple
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.relation import OngoingRelation, ResultStore
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


def _database():
    db = Database("store-unit")
    r = db.create_table("R", Schema.of("K", ("VT", "interval")))
    s = db.create_table("S", Schema.of("K", ("VT", "interval")))
    for i in range(8):
        r.insert(i % 4, until_now(i))
        s.insert(i % 4, until_now(i + 1))
    return db


def _join_plan():
    return scan("R").join(
        scan("S"),
        on=(col("R.K") == col("S.K")) & col("R.VT").overlaps(col("S.VT")),
        left_name="R",
        right_name="S",
    )


def _packed(relation: OngoingRelation) -> bytes:
    """The relation's tuples serialized in order — the byte-stability probe."""
    return b"".join(pack_tuple(item) for item in relation.tuples)


class TestResultStore:
    def _store(self):
        schema = Schema.of("K", ("VT", "interval"))
        # A plain ordered mapping keyed by tuples — exactly the shape of
        # the delta engine's root derivation-count index.
        rows = {OngoingTuple((i, until_now(i))): 1 for i in range(3)}
        return schema, rows, ResultStore(schema, rows)

    def test_snapshot_is_lazy_cached_and_shared(self):
        schema, rows, store = self._store()
        assert store.peek() is None  # nothing materialized yet
        first = store.snapshot()
        assert isinstance(first, OngoingRelation)
        assert store.snapshot() is first  # same version → same object
        assert store.peek() is first

    def test_bump_invalidates_the_cache_only_on_read(self):
        schema, rows, store = self._store()
        first = store.snapshot()
        extra = OngoingTuple((99, until_now(9)))
        with store.lock:
            rows[extra] = 1
            store.bump()
        assert store.peek() is None  # stale — but no copy was taken
        second = store.snapshot()
        assert second is not first
        assert extra in second.tuples

    def test_snapshot_stats_partition_reads(self):
        stats = {"snapshots_taken": 0, "snapshots_reused": 0}
        schema, rows, _ = self._store()
        store = ResultStore(schema, rows, stats=stats)
        store.snapshot()
        store.snapshot()
        with store.lock:
            store.bump()
        store.snapshot()
        assert stats == {"snapshots_taken": 2, "snapshots_reused": 1}

    def test_partial_stats_dict_gains_missing_keys(self):
        """A caller-supplied dict only needs the keys it cares about —
        the store fills in the canonical counters it maintains."""
        stats = {"snapshots_taken": 3}
        schema, rows, _ = self._store()
        store = ResultStore(schema, rows, stats=stats)
        assert stats == {"snapshots_taken": 3, "snapshots_reused": 0}
        store.snapshot()
        assert stats["snapshots_taken"] == 4

    def test_materialize_is_uncached_and_uncounted(self):
        stats = {"snapshots_taken": 0, "snapshots_reused": 0}
        schema, rows, _ = self._store()
        store = ResultStore(schema, rows, stats=stats)
        eager = store.materialize()
        assert store.materialize() is not eager
        assert stats == {"snapshots_taken": 0, "snapshots_reused": 0}
        assert frozenset(eager.tuples) == frozenset(store.snapshot().tuples)

    def test_len_is_live_without_materializing(self):
        stats = {"snapshots_taken": 0, "snapshots_reused": 0}
        schema, rows, _ = self._store()
        store = ResultStore(schema, rows, stats=stats)
        assert len(store) == 3
        with store.lock:
            rows[OngoingTuple((42, until_now(1)))] = 1
            store.bump()
        assert len(store) == 4
        assert stats["snapshots_taken"] == 0


class TestSnapshotAliasingRegression:
    """The satellite regression: `apply` used to skip the rebuild when the
    root delta was empty, so the served relation could alias state that
    kept churning.  The versioned store makes the hazard impossible —
    a held snapshot is byte-stable across any later mutation."""

    def test_held_snapshot_is_byte_stable_across_mutations(self):
        db = _database()
        evaluator = DeltaEvaluator(_join_plan(), db)
        evaluator.refresh_full()
        held = evaluator.result
        before = _packed(held)
        baseline = frozenset(held.tuples)
        # Structural churn with an empty root delta: add a duplicate of an
        # existing R row (scan count 1 → 2, no set-level change), then
        # delete one copy (2 → 1).
        duplicate = db.table("R").rows()[0]
        assert evaluator.apply({"R": Delta.insert((duplicate,))}).is_empty()
        assert evaluator.apply({"R": Delta.delete((duplicate,))}).is_empty()
        # And a genuine set-level change on top.
        delta = evaluator.apply(
            {"R": Delta.insert((OngoingTuple((0, fixed_interval(2, 9))),))}
        )
        assert not delta.is_empty() and not delta.deleted
        assert _packed(held) == before  # the held copy never moved
        # The *store* did move — a fresh read sees the new version...
        assert evaluator.result is not held
        # ...which is exactly the old set plus the propagated inserts.
        assert frozenset(evaluator.result.tuples) == baseline | frozenset(
            delta.inserted
        )

    def test_empty_root_delta_keeps_the_cached_snapshot(self):
        db = _database()
        evaluator = DeltaEvaluator(_join_plan(), db)
        first = evaluator.refresh_full()
        # Duplicate-row churn propagates an empty root delta — the cached
        # snapshot must stay valid (no version bump, no new copy).
        taken_before = evaluator.snapshot_stats["snapshots_taken"]
        duplicate = db.table("R").rows()[0]
        delta = evaluator.apply({"R": Delta.insert((duplicate,))})
        assert delta.is_empty()
        assert evaluator.result is first
        assert evaluator.snapshot_stats["snapshots_taken"] == taken_before

    def test_delta_refresh_takes_no_snapshot_until_read(self):
        """The tentpole invariant: refreshes without readers never copy."""
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(_join_plan())
        taken_after_subscribe = session.stats()["repro_store_snapshots_taken_total"]
        for i in range(5):
            db.table("R").insert(i % 4, until_now(20 + i))
            session.flush()
        stats = session.stats()
        assert stats["repro_live_delta_refreshes_total"] == 5
        assert stats["repro_store_snapshots_taken_total"] == taken_after_subscribe  # no reads
        # The first read pays the one copy; the second shares it.
        first = sub.result
        assert sub.result is first
        stats = session.stats()
        assert stats["repro_store_snapshots_taken_total"] == taken_after_subscribe + 1
        assert stats["repro_store_snapshots_reused_total"] == 1  # exactly the second read


class TestSharedSnapshots:
    def test_equal_plan_subscribers_share_one_snapshot_per_version(self):
        db = _database()
        session = LiveSession(db)
        a = session.subscribe(_join_plan())
        b = session.subscribe(_join_plan())
        assert a.result is b.result  # one copy serves both
        db.table("R").insert(1, until_now(30))
        session.flush()
        assert a.result is b.result
        assert frozenset(a.result.tuples) == frozenset(
            db.query(_join_plan()).tuples
        )


class TestVersionMonotonicity:
    def test_version_survives_store_rebuilds(self):
        """A full refresh replaces the store; the version sequence must
        keep climbing so version-watchers never miss the rebuild."""
        db = _database()
        evaluator = DeltaEvaluator(_join_plan(), db)
        evaluator.refresh_full()
        evaluator.apply(
            {"R": Delta.insert((OngoingTuple((1, fixed_interval(3, 7))),))}
        )
        version_before = evaluator.store.version
        assert version_before >= 1
        evaluator.refresh_full()  # e.g. a delta fallback rebuilt the store
        assert evaluator.store.version > version_before


class TestServingContinuity:
    def test_result_stays_served_through_incremental_toggle(self):
        """Dropping the evaluator for a plain re-evaluation must not make
        the result transiently None: a reader landing inside the
        re-query window still sees the last served relation."""
        from repro.engine.maintenance import IncrementalMaintainer

        db = _database()
        maintainer = IncrementalMaintainer(_join_plan(), db, label="toggle")
        maintainer.evaluate()
        seen = []
        real_query = db.query

        def spying_query(plan):
            seen.append(maintainer.result)  # a reader inside the window
            return real_query(plan)

        db.query = spying_query
        try:
            maintainer.evaluate(incremental=False)
        finally:
            db.query = real_query
        assert seen and seen[0] is not None
        assert frozenset(maintainer.result.tuples) == frozenset(
            real_query(_join_plan()).tuples
        )


class TestStateBudget:
    def test_eviction_keeps_serving_and_rebuilds_on_miss(self):
        db = _database()
        session = LiveSession(db, state_budget_bytes=1)  # everything evicts
        sub = session.subscribe(_join_plan())
        stats = session.stats()
        assert stats["repro_store_state_evictions_total"] == 1  # evicted right after build
        served_before = frozenset(sub.result.tuples)
        assert served_before  # eviction never takes the result away
        db.table("R").insert(2, until_now(40))
        session.flush()
        stats = session.stats()
        assert stats["repro_store_state_rebuilds_total"] == 1  # the miss paid a rebuild
        assert stats["repro_store_state_evictions_total"] == 2  # ...and evicted again
        (shared,) = session.shared_results()
        assert shared.delta_fallbacks == 0  # a miss is not a failure
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_join_plan()).tuples
        )
        session.close()

    def test_generous_budget_never_evicts(self):
        db = _database()
        session = LiveSession(db, state_budget_bytes=64 * 1024 * 1024)
        session.subscribe(_join_plan())
        db.table("R").insert(2, until_now(40))
        session.flush()
        stats = session.stats()
        assert stats["repro_store_state_evictions_total"] == 0
        assert stats["repro_store_state_rebuilds_total"] == 0
        assert stats["repro_live_delta_refreshes_total"] == 1  # the delta path stayed warm
        session.close()

    def test_negative_budget_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError, match="state_budget_bytes"):
            LiveSession(_database(), state_budget_bytes=-1)

    def test_memory_guard_budget_respected_after_every_flush(self):
        """The sizeof-based memory guard: whatever the workload does, the
        estimated evictable state never exceeds the configured budget
        once the flush (and its eviction pass) completed."""
        budget = 2_048
        db = _database()
        session = LiveSession(db, state_budget_bytes=budget)
        sub = session.subscribe(_join_plan())
        (shared,) = session.shared_results()
        assert shared.state_bytes() <= budget
        for i in range(12):
            if i % 3 == 2:
                current_delete(
                    db.table("R"), lambda r: r.values[0] == i % 4, at=50 + i
                )
            else:
                db.table("R").insert(i % 4, until_now(50 + i))
            session.flush()
            assert shared.state_bytes() <= budget, (
                f"state grew past the budget after flush {i}"
            )
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(_join_plan()).tuples
        )
        session.close()

    def test_state_bytes_prices_cached_inputs_at_input_width(self):
        """A GROUP BY's output rows are narrow (key + aggregate) while its
        cached group members are full input rows — the budget estimate
        must reflect the *input* width, or wide tables under narrow
        aggregates would never evict."""
        from repro.engine.storage import sizeof_tuple

        db = Database("store-width")
        table = db.create_table(
            "W", Schema.of("K", "PAYLOAD", ("VT", "interval"))
        )
        payload = "x" * 500
        for i in range(50):
            table.insert(i % 3, payload, until_now(i))
        plan = scan("W").group_by(("K",), "count")
        evaluator = DeltaEvaluator(plan, db)
        evaluator.refresh_full()
        member_bytes = sizeof_tuple(table.rows()[0])
        # The aggregate caches all 50 wide members; the estimate must be
        # in their ballpark (well above 50 narrow group rows).
        assert evaluator.state_bytes() >= 50 * member_bytes // 2

    def test_incremental_toggle_is_not_counted_as_state_rebuild(self):
        """Dropping the evaluator via incremental=False must clear a
        pending eviction mark: the next cold incremental start is the
        toggle's doing (a delta fallback), not the budget's (a rebuild)."""
        db = _database()
        session = LiveSession(db, state_budget_bytes=1)
        session.subscribe(_join_plan())  # builds, then evicts
        assert session.stats()["repro_store_state_evictions_total"] == 1
        session.incremental = False
        db.table("R").insert(2, until_now(40))
        session.flush()  # plain path drops the evaluator and the mark
        session.incremental = True
        db.table("R").insert(3, until_now(41))
        session.flush()  # fresh cold evaluator — a fallback, not a miss
        (shared,) = session.shared_results()
        assert shared.state_rebuilds == 0
        assert shared.delta_fallbacks >= 1
        session.close()

    def test_state_bytes_tracks_cached_rows(self):
        """The accounting the guard relies on: warm join state prices both
        cached sides plus interior counts, and evicting zeroes it."""
        db = _database()
        evaluator = DeltaEvaluator(_join_plan(), db)
        evaluator.refresh_full()
        assert evaluator.state_rows() >= len(db.table("R")) + len(
            db.table("S")
        )
        assert evaluator.state_bytes() > 0
        evaluator.evict_state()
        assert evaluator.state_rows() == 0
        assert evaluator.state_bytes() == 0
        assert evaluator.result is not None  # still serving

    def test_eviction_releases_the_state_objects(self):
        """Eviction must actually free the memory: no internal map may
        keep the dropped OperatorStates (and their caches) reachable."""
        import gc
        import weakref

        db = _database()
        evaluator = DeltaEvaluator(_join_plan(), db)
        evaluator.refresh_full()
        refs = [weakref.ref(state) for state in evaluator._states.values()]
        evaluator.evict_state()
        gc.collect()
        assert all(ref() is None for ref in refs), (
            "evicted operator state is still pinned in RAM"
        )
        assert evaluator.result is not None  # the store alone survives

    def test_session_counters_survive_unsubscribe(self):
        """The new stats are monotonic: a departing last subscriber
        retires its counters into the session totals instead of
        vanishing with the cache entry."""
        db = _database()
        session = LiveSession(db, state_budget_bytes=1)
        sub = session.subscribe(_join_plan())
        sub.result  # force at least one snapshot
        before = session.stats()
        assert before["repro_store_snapshots_taken_total"] >= 1
        assert before["repro_store_state_evictions_total"] >= 1
        sub.close()  # last subscriber → cache entry dropped
        after = session.stats()
        for key in (
            "repro_store_snapshots_taken_total",
            "repro_store_snapshots_reused_total",
            "repro_store_state_evictions_total",
            "repro_store_state_rebuilds_total",
        ):
            assert after[key] >= before[key], f"{key} went backward"
        session.close()
