"""Distinct and SortLimit plan nodes: planning, maintenance, boundaries.

Covers the ordered-surface tentpole at the engine layer: the multi-spec
Aggregate back-compat contract (one-spec plans keep their historical
fingerprints), δ's multiplicity counting, and the top-k window's state
machine — including the boundary-churn paths where a delete inside the
window forces the logged full-refresh fallback.
"""

import pytest

from repro.engine.database import Database
from repro.engine.plan import Aggregate, Distinct, SortLimit, scan
from repro.errors import QueryError
from repro.live import LiveSession
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _database() -> Database:
    db = Database("ordered-plan")
    table = db.create_table("R", Schema.of("K", "N"))
    for k, n in [(1, 10), (2, 9), (3, 8), (4, 7)]:
        table.insert(k, n)
    return db


def _full_refreshes(session: LiveSession) -> int:
    return session.stats()["repro_live_full_refreshes_total"]


class TestAggregateBackCompat:
    def test_single_spec_signatures_share_one_fingerprint(self):
        """The pre-existing single-aggregate call shape and the new specs
        form are the *same* plan — cached state keyed by fingerprint must
        survive the refactor."""
        old_style = scan("R").group_by(("K",), "count", output_name="n")
        new_style = Aggregate(scan("R"), ("K",), specs=[("count", None, "n")])
        assert old_style.fingerprint() == new_style.fingerprint()
        assert old_style.canonical() == new_style.canonical()

    def test_single_spec_canonical_is_byte_frozen(self):
        """The exact historical canonical string: anything persisted under
        a pre-refactor fingerprint (plan caches, cost histories) must
        still resolve."""
        plan = scan("R").group_by(("K",), "count", output_name="n")
        assert plan.canonical() == (
            "Aggregate(Scan('R'), by=['K'], fn='count', arg=None, out='n')"
        )

    def test_multi_spec_changes_the_fingerprint(self):
        one = scan("R").group_by(("K",), "count", output_name="n")
        two = scan("R").group_by(
            ("K",), specs=[("count", None, "n"), ("avg", "N", "a")]
        )
        assert one.fingerprint() != two.fingerprint()
        assert [s[0] for s in two.specs] == ["count", "avg"]

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(QueryError, match="duplicate aggregate output"):
            scan("R").group_by(
                ("K",), specs=[("count", None, "n"), ("avg", "N", "n")]
            )


class TestDistinct:
    def test_distinct_collapses_duplicate_projections(self):
        db = _database()
        db.table("R").insert(5, 10)  # duplicate N value
        plan = scan("R").select_columns("N").distinct()
        values = sorted(row.values[0] for row in db.query(plan))
        assert values == [7, 8, 9, 10]

    def test_distinct_delta_surfaces_only_multiplicity_transitions(self):
        db = _database()
        table = db.table("R")
        plan = scan("R").select_columns("N").distinct()
        session = LiveSession(db)
        sub = session.subscribe(plan)
        session.flush()
        table.insert(5, 10)  # 10 now derived twice — no visible change
        session.flush()
        assert sub.result == db.query(plan)
        table.delete_where(lambda row: row.values != (5, 10))
        session.flush()  # back to one derivation of 10 — still no change
        assert sub.result == db.query(plan)


class TestSortLimitPlanning:
    def test_rejects_ongoing_temporal_sort_keys(self):
        db = Database()
        db.create_table("T", Schema.of("K", ("VT", "interval")))
        with pytest.raises(QueryError, match="no eventual order"):
            db.query(scan("T").order_by("VT"))

    def test_rejects_non_positive_limit(self):
        with pytest.raises(QueryError, match="positive"):
            scan("R").order_by("N", limit=0)

    def test_requires_keys_or_limit(self):
        with pytest.raises(QueryError, match="sort keys or a limit"):
            SortLimit(scan("R"), (), None)

    def test_limit_without_order_is_deterministic(self):
        db = _database()
        plan = scan("R").order_by(limit=2)
        first = db.query(plan)
        second = db.query(plan)
        assert first == second
        assert len(first) == 2


class TestTopKBoundaryChurn:
    """Rows oscillating across rank k: the window state machine."""

    def test_churn_matches_full_reevaluation(self):
        db = _database()
        table = db.table("R")
        plan = scan("R").order_by(("N", True), limit=2)
        session = LiveSession(db)
        sub = session.subscribe(plan)
        session.flush()
        assert sub.result == db.query(plan)
        baseline = _full_refreshes(session)

        # Insert into the window: evicts the old boundary row — delta path.
        table.insert(9, 11)
        session.flush()
        assert sub.result == db.query(plan)
        assert _full_refreshes(session) == baseline

        # Out-of-window insert and delete: overflow bookkeeping only.
        table.insert(10, 1)
        session.flush()
        table.delete_where(lambda row: row.values != (10, 1))
        session.flush()
        assert sub.result == db.query(plan)
        assert _full_refreshes(session) == baseline

        # Delete the row *inside* the window while overflow rows exist:
        # the next-best row is unknown — logged full-refresh fallback.
        table.delete_where(lambda row: row.values != (9, 11))
        session.flush()
        assert sub.result == db.query(plan)
        assert _full_refreshes(session) == baseline + 1

    def test_window_delete_without_overflow_is_incremental(self):
        db = Database()
        table = db.create_table("R", Schema.of("K", "N"))
        table.insert(1, 5)
        table.insert(2, 7)
        plan = scan("R").order_by(("N", True), limit=3)  # window never full
        session = LiveSession(db)
        sub = session.subscribe(plan)
        session.flush()
        baseline = _full_refreshes(session)
        table.delete_where(lambda row: row.values != (2, 7))
        session.flush()
        assert sub.result == db.query(plan)
        assert _full_refreshes(session) == baseline

    def test_pure_order_by_is_always_incremental(self):
        db = _database()
        table = db.table("R")
        plan = scan("R").order_by(("N", True))
        session = LiveSession(db)
        sub = session.subscribe(plan)
        session.flush()
        baseline = _full_refreshes(session)
        table.insert(9, 11)
        table.delete_where(lambda row: row.values != (2, 9))
        session.flush()
        assert sub.result == db.query(plan)
        assert _full_refreshes(session) == baseline


class TestPushdownRules:
    def test_select_sinks_through_distinct(self):
        from repro.engine.rewrite import push_down_selections

        db = _database()
        plan = scan("R").distinct().where(col("K") < lit(3))
        rewritten = push_down_selections(plan, db)
        assert rewritten.canonical().startswith("Distinct(Select(")
        assert db.query(plan) == db.query(rewritten)

    def test_select_sinks_through_order_by_without_limit(self):
        from repro.engine.rewrite import push_down_selections

        db = _database()
        plan = scan("R").order_by("N").where(col("K") < lit(3))
        rewritten = push_down_selections(plan, db)
        assert rewritten.canonical().startswith("SortLimit(Select(")
        assert db.query(plan) == db.query(rewritten)

    def test_select_stays_above_limit(self):
        """σ below LIMIT k changes *which* k rows survive — the rewrite
        must refuse even when the predicate touches only sort keys."""
        from repro.engine.rewrite import push_down_selections

        db = _database()
        plan = scan("R").order_by("N", limit=2).where(col("N") > lit(7))
        rewritten = push_down_selections(plan, db)
        assert rewritten.canonical().startswith("Select(SortLimit(")
        assert db.query(plan) == db.query(rewritten)
