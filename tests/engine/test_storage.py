"""Unit tests for the byte-accurate storage layout (Section VIII, Table V)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.intervalset import IntervalSet, UNIVERSAL_SET
from repro.core.timeline import MINUS_INF, PLUS_INF, mmdd
from repro.core.timepoint import NOW, fixed
from repro.engine import storage
from repro.errors import StorageError
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


class TestValuePacking:
    def test_int_is_four_bytes(self):
        assert len(storage.pack_value(42)) == 4

    def test_large_int_is_eight_bytes(self):
        assert len(storage.pack_value(2**40)) == 8

    def test_bool_is_one_byte(self):
        assert len(storage.pack_value(True)) == 1

    def test_text_is_header_plus_utf8(self):
        assert len(storage.pack_value("spam")) == 4 + 4
        assert len(storage.pack_value("")) == 4

    def test_ongoing_point_is_two_dates(self):
        assert len(storage.pack_value(NOW)) == 8
        assert len(storage.pack_value(fixed(3))) == 8

    def test_ongoing_point_fixed_layout_halves(self):
        assert len(storage.pack_value(NOW, layout="fixed")) == 4

    def test_ongoing_interval_sizes(self):
        interval = until_now(mmdd(1, 25))
        ongoing = len(storage.pack_value(interval))
        fixed_size = len(storage.pack_value(interval, layout="fixed"))
        # "+8 bytes" over the fixed daterange (Section IX-D).
        assert ongoing - fixed_size == 8

    def test_sentinels_map_to_int32_extremes(self):
        packed = storage.pack_value(NOW)
        assert packed[:4] == (-(2**31)).to_bytes(4, "little", signed=True)

    def test_unserializable_value_raises(self):
        with pytest.raises(StorageError):
            storage.pack_value(object())


class TestReferenceTimePacking:
    def test_single_interval_rt_is_29_bytes(self):
        """The headline Table V constant."""
        assert len(storage.pack_rt(UNIVERSAL_SET)) == 29

    def test_rt_grows_8_bytes_per_interval(self):
        two = IntervalSet([(0, 5), (9, 12)])
        assert len(storage.pack_rt(two)) == 29 + 8

    def test_empty_rt_is_header_only(self):
        assert len(storage.pack_rt(IntervalSet.empty())) == 21


class TestTuplePacking:
    _SCHEMA = Schema.of("BID", "C", ("VT", "interval"))

    def test_layout_difference_is_rt_plus_interval_growth(self):
        item = OngoingTuple((500, "Spam", until_now(mmdd(1, 25))))
        ongoing = storage.sizeof_tuple(item, layout="ongoing")
        fixed_size = storage.sizeof_tuple(item, layout="fixed")
        assert ongoing - fixed_size == 29 + 8

    def test_unknown_layout_rejected(self):
        item = OngoingTuple((1,))
        with pytest.raises(StorageError, match="layout"):
            storage.pack_tuple(item, layout="columnar")

    def test_header_toggle(self):
        item = OngoingTuple((1,))
        with_header = len(storage.pack_tuple(item))
        without = len(storage.pack_tuple(item, include_header=False))
        assert with_header - without == storage.TUPLE_HEADER_BYTES


class TestRelationReport:
    def test_empty_relation(self):
        report = storage.relation_storage(
            OngoingRelation(Schema.of("A"), [])
        )
        assert report.tuple_count == 0
        assert report.ongoing_vs_fixed == 1.0

    def test_report_fields(self):
        schema = Schema.of("BID", ("VT", "interval"))
        relation = OngoingRelation.from_rows(
            schema,
            [(1, until_now(0)), (2, fixed_interval(0, 5))],
        )
        report = storage.relation_storage(relation)
        assert report.tuple_count == 2
        assert report.avg_rt_bytes == 29.0
        assert report.avg_rt_cardinality == 1.0
        assert report.max_rt_cardinality == 1
        assert report.ongoing_vs_fixed > 1.0
        assert 0 < report.rt_share < 1
        assert "29B" in report.format()
