"""The Aggregate plan node: planning, execution, and per-group deltas."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.engine.database import Database
from repro.engine.delta import Delta, DeltaEvaluator, NonIncrementalDelta
from repro.engine.modifications import current_delete, current_update
from repro.engine.plan import Aggregate, scan
from repro.errors import PredicateError, SchemaError
from repro.live import LiveSession
from repro.relational.aggregate import group_by
from repro.relational.predicates import col, lit
from repro.relational.schema import AttributeKind, Schema


def _database() -> Database:
    db = Database("agg-plan")
    table = db.create_table("E", Schema.of("ID", "G", "N", ("VT", "interval")))
    table.insert(1, "a", 5, until_now(5))
    table.insert(2, "a", 3, fixed_interval(3, 9))
    table.insert(3, "b", 7, until_now(7))
    return db


class TestPlanNode:
    def test_fluent_builder_and_children(self):
        plan = scan("E").group_by(("G",), "count", output_name="n")
        assert isinstance(plan, Aggregate)
        assert plan.children() == (plan.child,)
        assert plan.referenced_tables() == frozenset({"E"})

    def test_structurally_equal_plans_share_a_fingerprint(self):
        first = scan("E").group_by(("G",), "count", output_name="n")
        second = scan("E").group_by(("G",), "count", output_name="n")
        assert first.fingerprint() == second.fingerprint()

    def test_default_output_name_is_normalized(self):
        """output_name=None and the explicit default name the column would
        get anyway are the *same* plan — the sqlish path (which always
        passes a name) and the fluent path must share one fingerprint."""
        implicit = scan("E").group_by(("G",), "count")
        explicit = scan("E").group_by(("G",), "count", output_name="count")
        assert implicit.output_name == "count"
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_fingerprint_distinguishes_aggregate_shape(self):
        base = scan("E").group_by(("G",), "count")
        assert base.fingerprint() != scan("E").group_by((), "count").fingerprint()
        assert (
            base.fingerprint()
            != scan("E").group_by(("G",), "max", "N").fingerprint()
        )
        assert (
            base.fingerprint()
            != scan("E").group_by(("G",), "count", output_name="n").fingerprint()
        )


class TestPlanning:
    def test_output_schema_and_explain(self):
        db = _database()
        plan = scan("E").group_by(("G",), "sum_duration", "VT", output_name="load")
        result = db.query(plan)
        assert result.schema.names == ("G", "load")
        assert result.schema.attribute("load").kind is AttributeKind.ONGOING_INTEGER
        assert "Aggregate γ sum_duration(VT)" in db.explain(plan)

    def test_unknown_aggregate_fails_at_plan_time(self):
        db = _database()
        with pytest.raises(PredicateError, match="unknown aggregate"):
            db.query(scan("E").group_by(("G",), "median", "N"))

    def test_ongoing_group_column_rejected(self):
        db = _database()
        with pytest.raises(SchemaError, match="fixed"):
            db.query(scan("E").group_by(("VT",), "count"))

    def test_missing_argument_rejected(self):
        db = _database()
        with pytest.raises(PredicateError, match="requires"):
            db.query(scan("E").group_by(("G",), "min"))


class TestExecution:
    def test_pull_path_matches_relational_operator(self):
        db = _database()
        plan = scan("E").group_by(("G",), "count", output_name="n")
        assert db.query(plan) == group_by(
            db.relation("E"), ["G"], "count", output_name="n"
        )

    def test_aggregate_over_filtered_child(self):
        db = _database()
        window = lit(fixed_interval(4, 6))
        plan = (
            scan("E").where(col("VT").overlaps(window)).group_by(("G",), "count")
        )
        filtered = db.query(scan("E").where(col("VT").overlaps(window)))
        assert db.query(plan) == group_by(filtered, ["G"], "count")

    def test_scalar_aggregate_over_empty_table(self):
        db = Database("empty")
        db.create_table("X", Schema.of("A", ("VT", "interval")))
        result = db.query(scan("X").group_by((), "count"))
        assert len(result) == 1
        assert result.instantiate(42) == frozenset({(0,)})


class _Maintained:
    """A DeltaEvaluator fed by the database's typed delta listeners."""

    def __init__(self, db: Database, plan):
        self.db = db
        self.plan = plan
        self.evaluator = DeltaEvaluator(plan, db)
        self.evaluator.refresh_full()
        self._captured = {}
        db.add_delta_listener(self._capture)

    def _capture(self, name, version, delta):
        held = self._captured.get(name)
        self._captured[name] = delta if held is None else held.merge(delta)

    def step(self) -> Delta:
        delta = self.evaluator.apply(self._captured)
        self._captured.clear()
        expected = self.db.query(self.plan)
        assert frozenset(self.evaluator.result.tuples) == frozenset(
            expected.tuples
        )
        return delta


class TestDeltaRule:
    def test_insert_into_existing_group_is_one_row_swap(self):
        db = _database()
        maintained = _Maintained(db, scan("E").group_by(("G",), "count"))
        db.table("E").insert(4, "a", 1, until_now(2))
        delta = maintained.step()
        # Only group "a" re-aggregated: its old row leaves, its new row
        # enters; group "b" is untouched.
        assert len(delta.inserted) == 1 and len(delta.deleted) == 1
        assert delta.inserted[0].values[0] == "a"
        assert delta.deleted[0].values[0] == "a"

    def test_group_appears_with_first_member(self):
        db = _database()
        maintained = _Maintained(db, scan("E").group_by(("G",), "count"))
        db.table("E").insert(9, "c", 2, until_now(1))
        delta = maintained.step()
        assert len(delta.inserted) == 1 and not delta.deleted
        assert delta.inserted[0].values[0] == "c"

    def test_group_empties_when_last_member_leaves(self):
        db = _database()
        maintained = _Maintained(db, scan("E").group_by(("G",), "count"))
        db.table("E").delete_where(lambda row: row.values[1] != "b")
        delta = maintained.step()
        assert len(delta.deleted) == 1 and not delta.inserted
        assert delta.deleted[0].values[0] == "b"

    def test_scalar_group_falls_back_to_the_empty_row(self):
        db = _database()
        maintained = _Maintained(db, scan("E").group_by((), "count"))
        db.table("E").delete_where(lambda row: False)
        delta = maintained.step()
        # The scalar row never vanishes: it swaps to the constant 0.
        assert len(delta.inserted) == 1 and len(delta.deleted) == 1
        assert delta.inserted[0].values[0].instantiate(100) == 0

    def test_current_update_preserving_the_aggregate_is_silent(self):
        """A current update splits ``[7, now)`` into ``[7, +20)`` plus
        ``[20, now)`` — the summed duration ramp is *identical*, and the
        per-group re-aggregation recognizes that: the propagated delta is
        empty, so subscribers are not even notified."""
        db = _database()
        maintained = _Maintained(
            db, scan("E").group_by(("G",), "sum_duration", "VT")
        )
        current_update(
            db.table("E"), lambda row: row.values[0] == 3, (3, "b", 7), at=20
        )
        delta = maintained.step()
        assert delta.is_empty()

    def test_cross_group_move_touches_only_the_two_groups(self):
        db = _database()
        maintained = _Maintained(db, scan("E").group_by(("G",), "count"))
        # Move row 3 from group "b" to a new group "c": the terminated old
        # row stays in "b" (count there is unchanged — suppressed), the
        # successor row founds "c".
        current_update(
            db.table("E"), lambda row: row.values[0] == 3, (3, "c", 7), at=20
        )
        delta = maintained.step()
        assert {row.values[0] for row in delta.inserted} == {"c"}
        assert not delta.deleted

    def test_min_max_maintained_through_terminations(self):
        db = _database()
        maintained = _Maintained(db, scan("E").group_by(("G",), "max", "N"))
        current_delete(db.table("E"), lambda row: row.values[0] == 1, at=4)
        maintained.step()
        db.table("E").insert(5, "a", 9, until_now(6))
        maintained.step()

    def test_delete_unknown_to_the_group_raises(self):
        """An inconsistent delta forces the logged full-refresh fallback."""
        from repro.core.intervalset import IntervalSet
        from repro.engine.planner import plan_query
        from repro.relational.tuples import OngoingTuple

        db = _database()
        operator = plan_query(scan("E").group_by(("G",), "count"), db)
        state = operator.delta_state()
        operator.evaluate(state, (tuple(db.relation("E").tuples),))
        ghost = OngoingTuple(("zz", "a", 0, None), IntervalSet([(0, 1)]))
        with pytest.raises(NonIncrementalDelta, match="unknown"):
            operator.apply_delta(state, (Delta.delete([ghost]),))


class TestLiveFallback:
    def test_untyped_modification_falls_back_to_full_refresh(self):
        db = _database()
        session = LiveSession(db)
        sub = session.subscribe(scan("E").group_by(("G",), "count"))
        db.table("E").replace_all(db.table("E").rows())  # full-flagged delta
        session.flush()
        stats = session.stats()
        assert stats["repro_live_full_refreshes_total"] == 1
        assert frozenset(sub.result.tuples) == frozenset(
            db.query(scan("E").group_by(("G",), "count")).tuples
        )
