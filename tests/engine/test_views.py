"""Unit tests for materialized ongoing views (Section IX-C)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import scan
from repro.engine.views import MaterializedOngoingView
from repro.errors import QueryError
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _setup():
    db = Database("views")
    bugs = db.create_table("B", Schema.of("BID", ("VT", "interval")))
    bugs.insert(500, until_now(d(1, 25)))
    bugs.insert(501, fixed_interval(d(3, 30), d(8, 21)))
    plan = scan("B").where(
        col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1))))
    )
    return db, MaterializedOngoingView("open", plan, db)


class TestRefreshAndServe:
    def test_result_before_refresh_raises(self):
        _, view = _setup()
        with pytest.raises(QueryError, match="refreshed"):
            view.result

    def test_instantiate_matches_direct_query(self):
        db, view = _setup()
        view.refresh()
        direct = db.query(view.plan)
        for rt in (d(7, 1), d(8, 10), d(10, 1)):
            assert view.instantiate(rt) == direct.instantiate(rt)

    def test_instantiations_at_different_rts_differ(self):
        _, view = _setup()
        view.refresh()
        early = view.instantiate(d(7, 1))
        late = view.instantiate(d(8, 10))
        assert early != late


class TestStaleness:
    def test_fresh_view_is_not_stale(self):
        _, view = _setup()
        view.refresh()
        assert not view.is_stale()

    def test_unrefreshed_view_is_stale(self):
        _, view = _setup()
        assert view.is_stale()

    def test_time_passing_does_not_stale(self):
        _, view = _setup()
        view.refresh()
        # Instantiating at ever-later reference times is not a modification.
        view.instantiate(d(12, 31))
        assert not view.is_stale()

    def test_insert_stales(self):
        db, view = _setup()
        view.refresh()
        db.table("B").insert(502, until_now(d(8, 20)))
        assert view.is_stale()
        view.refresh()
        assert not view.is_stale()
        assert 502 in [row[0] for row in view.instantiate(d(8, 25))]

    def test_current_delete_stales(self):
        """In-place modifications keep the cardinality constant; the
        event-driven staleness flag still catches them (the old length
        polling could not)."""
        from repro.engine.modifications import current_delete

        db, view = _setup()
        view.refresh()
        modified = current_delete(
            db.table("B"), lambda row: row.values[0] == 500, at=d(9, 10)
        )
        assert modified == 1
        assert view.is_stale()

    def test_noop_modification_does_not_stale(self):
        from repro.engine.modifications import current_delete

        db, view = _setup()
        view.refresh()
        # Bug 501's interval is fixed and already over at the deletion time.
        modified = current_delete(
            db.table("B"), lambda row: row.values[0] == 501, at=d(12, 1)
        )
        assert modified == 0
        assert not view.is_stale()

    def test_closed_view_stops_listening(self):
        db, view = _setup()
        view.refresh()
        view.close()
        db.table("B").insert(502, until_now(d(8, 20)))
        assert not view.is_stale()
        view.close()  # idempotent

    def test_abandoned_view_is_not_pinned_by_the_database(self):
        """The change listener only holds a weak reference: dropping the
        last reference to a view frees it, and the next change event
        deregisters the dead listener — no close() required (the old
        polling design needed no cleanup either)."""
        import gc
        import weakref

        db, view = _setup()
        view.refresh()
        listeners_with_view = len(db._delta_listeners)
        view_ref = weakref.ref(view)
        del view
        gc.collect()
        assert view_ref() is None  # the database did not keep it alive
        db.table("B").insert(502, until_now(d(8, 20)))  # triggers cleanup
        assert len(db._delta_listeners) == listeners_with_view - 1
