"""Unit tests for the envelope interval index (Section X future work)
and the incrementally maintained secondary indexes (PR 7)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed
from repro.engine.indexes import (
    IntervalIndex,
    IntervalProbeIndex,
    OrderedIndex,
    PartitionIndex,
    SecondaryIndexRegistry,
)
from repro.errors import QueryError
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema

_SCHEMA = Schema.of("ID", ("VT", "interval"))


def _relation(intervals) -> OngoingRelation:
    return OngoingRelation.from_rows(
        _SCHEMA, [(i, interval) for i, interval in enumerate(intervals)]
    )


def _brute_force(relation, start, end):
    position = relation.schema.index_of("VT")
    hits = []
    for item in relation:
        value = item.values[position]
        if value.start.a < end and value.end.b > start:
            hits.append(item)
    return hits


class TestBasics:
    def test_build_and_size(self):
        index = IntervalIndex(_relation([fixed_interval(0, 5)]), "VT")
        assert index.size == 1

    def test_rejects_fixed_attribute(self):
        with pytest.raises(QueryError, match="fixed"):
            IntervalIndex(_relation([fixed_interval(0, 5)]), "ID")

    def test_rejects_non_interval_values(self):
        schema = Schema.of(("VT", "interval"))
        relation = OngoingRelation.from_rows(schema, [(42,)])
        with pytest.raises(QueryError, match="expected an"):
            IntervalIndex(relation, "VT")

    def test_empty_relation(self):
        index = IntervalIndex(_relation([]), "VT")
        assert index.overlapping(0, 100) == []

    def test_empty_query_range(self):
        index = IntervalIndex(_relation([fixed_interval(0, 5)]), "VT")
        assert index.overlapping(5, 5) == []

    def test_stabbing(self):
        index = IntervalIndex(
            _relation([fixed_interval(0, 5), fixed_interval(10, 20)]), "VT"
        )
        assert [t.values[0] for t in index.stabbing(12)] == [1]

    def test_expanding_interval_reaches_the_future(self):
        index = IntervalIndex(_relation([until_now(mmdd(1, 25))]), "VT")
        assert len(index.stabbing(mmdd(12, 31))) == 1

    def test_shrinking_interval_reaches_the_past(self):
        index = IntervalIndex(
            _relation([OngoingInterval(NOW, fixed(mmdd(3, 1)))]), "VT"
        )
        assert len(index.stabbing(mmdd(1, 1))) == 1
        assert len(index.stabbing(mmdd(4, 1))) == 0


class TestAgainstBruteForce:
    def test_randomized_queries(self):
        rng = random.Random(7)
        intervals = []
        for _ in range(300):
            start = rng.randrange(0, 1000)
            if rng.random() < 0.15:
                intervals.append(until_now(start))
            else:
                intervals.append(fixed_interval(start, start + rng.randrange(1, 60)))
        relation = _relation(intervals)
        index = IntervalIndex(relation, "VT")
        for _ in range(50):
            qs = rng.randrange(-50, 1100)
            qe = qs + rng.randrange(1, 120)
            got = {t.values[0] for t in index.overlapping(qs, qe)}
            want = {t.values[0] for t in _brute_force(relation, qs, qe)}
            assert got == want, (qs, qe)

    @given(
        st.lists(
            st.tuples(st.integers(0, 60), st.integers(1, 20)), max_size=40
        ),
        st.integers(-10, 80),
        st.integers(1, 30),
    )
    def test_hypothesis_queries(self, raw, qs, width):
        intervals = [fixed_interval(s, s + w) for s, w in raw]
        relation = _relation(intervals)
        index = IntervalIndex(relation, "VT")
        got = {t.values[0] for t in index.overlapping(qs, qs + width)}
        want = {t.values[0] for t in _brute_force(relation, qs, qs + width)}
        assert got == want


class TestOrderedIndex:
    def test_below_and_between(self):
        index = OrderedIndex()
        for key, item in [(5, "e"), (1, "a"), (3, "c"), (3, "cc"), (9, "i")]:
            index.add(key, item)
        assert sorted(index.below(4)) == ["a", "c", "cc"]
        assert sorted(index.between(3, 9)) == ["c", "cc", "e"]
        assert len(index) == 5

    def test_remove_exact_entry_among_equal_keys(self):
        index = OrderedIndex()
        index.add(3, "c")
        index.add(3, "cc")
        index.remove(3, "c")
        assert sorted(index.below(10)) == ["cc"]
        with pytest.raises(KeyError):
            index.remove(3, "c")


class TestPartitionIndex:
    def test_buckets_track_membership(self):
        index = PartitionIndex()
        index.add("k", 1)
        index.add("k", 2)
        index.add("other", 3)
        assert set(index.bucket("k")) == {1, 2}
        assert len(index) == 3
        index.remove("k", 1)
        index.remove("k", 2)
        assert index.bucket("k") == {}  # emptied bucket is dropped
        assert "k" not in set(index.keys())
        assert len(index) == 1

    def test_duplicate_add_is_idempotent(self):
        index = PartitionIndex()
        index.add("k", 1)
        index.add("k", 1)
        assert len(index) == 1

    def test_remove_unknown_raises(self):
        index = PartitionIndex()
        with pytest.raises(KeyError):
            index.remove("k", 1)

    def test_ensure_materializes_empty_bucket(self):
        index = PartitionIndex()
        index.ensure(())
        assert list(index.buckets()) == [((), {})]
        assert len(index) == 0


class TestIntervalProbeIndex:
    def test_matches_brute_force_under_mutation(self):
        rng = random.Random(11)
        index = IntervalProbeIndex()
        live = {}
        counter = 0
        for _ in range(600):
            if live and rng.random() < 0.4:
                item = rng.choice(list(live))
                index.remove(item)
                del live[item]
            else:
                start = rng.randrange(0, 500)
                end = start + rng.randrange(1, 50)
                item = f"i{counter}"
                counter += 1
                index.add(item, start, end)
                live[item] = (start, end)
            if rng.random() < 0.25:
                qs = rng.randrange(-20, 520)
                qe = qs + rng.randrange(1, 80)
                got = set(index.overlapping(qs, qe))
                want = {
                    it
                    for it, (s, e) in live.items()
                    if s < qe and e > qs
                }
                assert got == want
        assert len(index) == len(live)

    def test_duplicate_add_raises(self):
        index = IntervalProbeIndex()
        index.add("a", 0, 5)
        with pytest.raises(KeyError):
            index.add("a", 0, 5)

    def test_remove_then_readd_same_envelope(self):
        index = IntervalProbeIndex()
        index.add("a", 0, 5)
        index.remove("a")
        assert index.overlapping(0, 10) == []
        index.add("a", 2, 7)
        assert index.overlapping(0, 10) == ["a"]

    def test_empty_probe_window(self):
        index = IntervalProbeIndex()
        index.add("a", 0, 5)
        assert index.overlapping(3, 3) == []


class TestSecondaryIndexRegistry:
    def test_get_or_create_and_entry_count(self):
        registry = SecondaryIndexRegistry()
        assert registry.get("left") is None
        interval = registry.interval("left")
        assert registry.interval("left") is interval
        interval.add("a", 0, 5)
        registry.partition("groups").add("k", "x")
        registry.ordered("ends").add(3, "y")
        assert registry.entry_count() == 3
        assert "left" in registry
        assert sorted(registry) == ["ends", "groups", "left"]
