"""Unit tests for the envelope interval index (Section X future work)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed
from repro.engine.indexes import IntervalIndex
from repro.errors import QueryError
from repro.relational.relation import OngoingRelation
from repro.relational.schema import Schema

_SCHEMA = Schema.of("ID", ("VT", "interval"))


def _relation(intervals) -> OngoingRelation:
    return OngoingRelation.from_rows(
        _SCHEMA, [(i, interval) for i, interval in enumerate(intervals)]
    )


def _brute_force(relation, start, end):
    position = relation.schema.index_of("VT")
    hits = []
    for item in relation:
        value = item.values[position]
        if value.start.a < end and value.end.b > start:
            hits.append(item)
    return hits


class TestBasics:
    def test_build_and_size(self):
        index = IntervalIndex(_relation([fixed_interval(0, 5)]), "VT")
        assert index.size == 1

    def test_rejects_fixed_attribute(self):
        with pytest.raises(QueryError, match="fixed"):
            IntervalIndex(_relation([fixed_interval(0, 5)]), "ID")

    def test_rejects_non_interval_values(self):
        schema = Schema.of(("VT", "interval"))
        relation = OngoingRelation.from_rows(schema, [(42,)])
        with pytest.raises(QueryError, match="expected an"):
            IntervalIndex(relation, "VT")

    def test_empty_relation(self):
        index = IntervalIndex(_relation([]), "VT")
        assert index.overlapping(0, 100) == []

    def test_empty_query_range(self):
        index = IntervalIndex(_relation([fixed_interval(0, 5)]), "VT")
        assert index.overlapping(5, 5) == []

    def test_stabbing(self):
        index = IntervalIndex(
            _relation([fixed_interval(0, 5), fixed_interval(10, 20)]), "VT"
        )
        assert [t.values[0] for t in index.stabbing(12)] == [1]

    def test_expanding_interval_reaches_the_future(self):
        index = IntervalIndex(_relation([until_now(mmdd(1, 25))]), "VT")
        assert len(index.stabbing(mmdd(12, 31))) == 1

    def test_shrinking_interval_reaches_the_past(self):
        index = IntervalIndex(
            _relation([OngoingInterval(NOW, fixed(mmdd(3, 1)))]), "VT"
        )
        assert len(index.stabbing(mmdd(1, 1))) == 1
        assert len(index.stabbing(mmdd(4, 1))) == 0


class TestAgainstBruteForce:
    def test_randomized_queries(self):
        rng = random.Random(7)
        intervals = []
        for _ in range(300):
            start = rng.randrange(0, 1000)
            if rng.random() < 0.15:
                intervals.append(until_now(start))
            else:
                intervals.append(fixed_interval(start, start + rng.randrange(1, 60)))
        relation = _relation(intervals)
        index = IntervalIndex(relation, "VT")
        for _ in range(50):
            qs = rng.randrange(-50, 1100)
            qe = qs + rng.randrange(1, 120)
            got = {t.values[0] for t in index.overlapping(qs, qe)}
            want = {t.values[0] for t in _brute_force(relation, qs, qe)}
            assert got == want, (qs, qe)

    @given(
        st.lists(
            st.tuples(st.integers(0, 60), st.integers(1, 20)), max_size=40
        ),
        st.integers(-10, 80),
        st.integers(1, 30),
    )
    def test_hypothesis_queries(self, raw, qs, width):
        intervals = [fixed_interval(s, s + w) for s, w in raw]
        relation = _relation(intervals)
        index = IntervalIndex(relation, "VT")
        got = {t.values[0] for t in index.overlapping(qs, qs + width)}
        want = {t.values[0] for t in _brute_force(relation, qs, qs + width)}
        assert got == want
