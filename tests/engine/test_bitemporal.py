"""Unit tests for bitemporal tables (VT + TT + RT, Section IV)."""

import pytest

from repro.core.interval import OngoingInterval, until_now
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed, limited
from repro.engine.bitemporal import BitemporalTable
from repro.engine.database import Database
from repro.errors import QueryError, SchemaError
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _table() -> BitemporalTable:
    db = Database("bitemporal")
    return BitemporalTable(db, "B", Schema.of("BID", ("VT", "interval")))


class TestSchema:
    def test_tt_attribute_is_appended(self):
        table = _table()
        assert table.table.schema.names == ("BID", "VT", "TT")

    def test_user_schema_may_not_contain_tt(self):
        db = Database("x")
        with pytest.raises(SchemaError, match="maintained by the system"):
            BitemporalTable(db, "B", Schema.of("TT"))


class TestPaperExample:
    """Section IV: bug 500 with VT=[01/25, now), TT=[01/26, now)."""

    def test_insert_sets_open_transaction_time(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        (row,) = table.current().tuples
        assert row.values[2] == OngoingInterval(fixed(d(1, 26)), NOW)

    def test_vt_and_tt_instantiate_independently(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        rt = d(3, 15)
        (row,) = table.current().instantiate(rt)
        bid, vt, tt = row
        assert vt == (d(1, 25), rt)   # valid time follows now
        assert tt == (d(1, 26), rt)   # transaction time follows now too


class TestDelete:
    def test_delete_caps_transaction_time_with_limited_point(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        affected = table.delete(lambda row: row.values[0] == 500, at=d(6, 1))
        assert affected == 1
        (row,) = table.current().tuples
        assert row.values[2].end == limited(d(6, 1))

    def test_deleted_tuple_not_visible_after_deletion_time(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        table.delete(lambda row: row.values[0] == 500, at=d(6, 1))
        late_rt = d(9, 1)
        assert table.as_of(d(8, 1), late_rt) == []           # after delete
        assert len(table.as_of(d(3, 1), late_rt)) == 1       # history kept

    def test_delete_is_idempotent_on_dead_tuples(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        table.delete(lambda row: True, at=d(6, 1))
        assert table.delete(lambda row: True, at=d(7, 1)) == 0


class TestAsOf:
    def test_slices_combine_tt_and_rt(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        table.insert((501, until_now(d(4, 1))), at=d(4, 2))
        rt = d(12, 1)
        assert len(table.as_of(d(2, 1), rt)) == 1
        assert len(table.as_of(d(5, 1), rt)) == 2

    def test_as_of_result_remains_valid_as_time_passes(self):
        """The point of keeping TT ongoing: the same slice is correct at
        every reference time, before and after the deletion."""
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        table.delete(lambda row: row.values[0] == 500, at=d(6, 1))
        slice_time = d(3, 1)
        for rt in (d(4, 1), d(6, 1), d(12, 1)):
            rows = table.as_of(slice_time, rt)
            assert len(rows) == 1, rt
            # the valid time still instantiates per Definition 2
            assert rows[0][1][0] == d(1, 25)


class TestUpdate:
    def test_update_preserves_history(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        affected = table.update(
            lambda row: row.values[0] == 500,
            (500, until_now(d(6, 1))),
            at=d(6, 1),
        )
        assert affected == 1
        rt = d(12, 1)
        assert len(table.as_of(d(3, 1), rt)) == 1   # the old version
        assert len(table.as_of(d(8, 1), rt)) == 1   # the new version
        old = table.as_of(d(3, 1), rt)[0]
        new = table.as_of(d(8, 1), rt)[0]
        assert old[1][0] == d(1, 25)
        assert new[1][0] == d(6, 1)


class TestClock:
    def test_transaction_times_must_be_monotone(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(5, 1))
        with pytest.raises(QueryError, match="monotone"):
            table.insert((501, until_now(d(1, 25))), at=d(4, 1))

    def test_arity_checked(self):
        table = _table()
        with pytest.raises(SchemaError):
            table.insert((500,), at=d(1, 1))


class TestChangeEventContract:
    """Bitemporal writes obey the exactly-once modification-event contract."""

    def test_noop_delete_does_not_bump_the_version(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        version = table.table.version
        affected = table.delete(lambda row: False, at=d(2, 1))
        assert affected == 0
        assert table.table.version == version

    def test_update_coalesces_to_one_change_event(self):
        table = _table()
        table.insert((500, until_now(d(1, 25))), at=d(1, 26))
        events = []
        table.table.add_change_listener(
            lambda name, version: events.append(version)
        )
        affected = table.update(
            lambda row: row.values[0] == 500,
            (500, until_now(d(1, 25))),
            at=d(3, 1),
        )
        assert affected == 1
        assert events == [table.table.version]
