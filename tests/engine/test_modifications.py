"""Unit tests for Torp-style temporal modifications."""

import pytest

from repro.core.interval import OngoingInterval
from repro.core.timeline import mmdd
from repro.core.timepoint import NOW, fixed, limited
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_insert, current_update
from repro.errors import QueryError
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _table():
    db = Database("mods")
    return db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))


class TestCurrentInsert:
    def test_inserts_open_ended_tuple(self):
        table = _table()
        current_insert(table, (500, "Spam filter"), at=d(1, 25))
        (row,) = table.as_relation().tuples
        assert row.values[2] == OngoingInterval(fixed(d(1, 25)), NOW)

    def test_respects_vt_position(self):
        db = Database("mods2")
        table = db.create_table("X", Schema.of(("VT", "interval"), "K"))
        current_insert(table, (7,), at=d(2, 2))
        (row,) = table.as_relation().tuples
        assert row.values[1] == 7
        assert row.values[0].start == fixed(d(2, 2))

    def test_wrong_arity_rejected(self):
        table = _table()
        with pytest.raises(QueryError, match="non-VT values"):
            current_insert(table, (500,), at=d(1, 25))

    def test_missing_interval_attribute_rejected(self):
        from repro.errors import ReproError

        db = Database("mods3")
        table = db.create_table("X", Schema.of("K"))
        with pytest.raises(ReproError):
            current_insert(table, (), at=0)


class TestCurrentDelete:
    def test_open_tuple_gets_limited_end(self):
        """Deleting [a, now) at td yields [a, +td) — Torp's semantics.

        Before td the tuple still instantiates as current (it *was* current
        then); from td on it instantiates to [a, td).
        """
        table = _table()
        current_insert(table, (500, "Spam filter"), at=d(1, 25))
        modified = current_delete(
            table, lambda row: row.values[0] == 500, at=d(9, 10)
        )
        assert modified == 1
        (row,) = table.as_relation().tuples
        valid_time = row.values[2]
        assert valid_time.end == limited(d(9, 10))
        # before the deletion: still ends at the reference time
        assert valid_time.instantiate(d(5, 1)) == (d(1, 25), d(5, 1))
        # after the deletion: frozen at the deletion time
        assert valid_time.instantiate(d(12, 1)) == (d(1, 25), d(9, 10))

    def test_already_closed_tuple_untouched(self):
        table = _table()
        table.insert(500, "X", OngoingInterval(fixed(d(1, 1)), fixed(d(2, 1))))
        modified = current_delete(table, lambda row: True, at=d(9, 10))
        assert modified == 0

    def test_delete_after_closed_interval_is_a_noop(self):
        """Deleting ``[s, e)`` at ``t >= e`` changes nothing — not even the
        table version, so derived results are not invalidated spuriously."""
        table = _table()
        table.insert(500, "X", OngoingInterval(fixed(d(1, 1)), fixed(d(2, 1))))
        version = table.version
        modified = current_delete(table, lambda row: True, at=d(2, 1))  # t == e
        assert modified == 0
        modified = current_delete(table, lambda row: True, at=d(9, 10))  # t > e
        assert modified == 0
        assert table.version == version
        (row,) = table.as_relation().tuples
        assert row.values[2] == OngoingInterval(fixed(d(1, 1)), fixed(d(2, 1)))

    def test_non_matching_tuples_untouched(self):
        table = _table()
        current_insert(table, (500, "X"), at=d(1, 25))
        current_insert(table, (501, "Y"), at=d(2, 25))
        current_delete(table, lambda row: row.values[0] == 500, at=d(9, 10))
        by_bid = {row.values[0]: row.values[2] for row in table.as_relation()}
        assert by_bid[501].end == NOW


class TestCurrentUpdate:
    def test_update_is_delete_plus_insert(self):
        table = _table()
        current_insert(table, (500, "Spam filter"), at=d(1, 25))
        terminated = current_update(
            table,
            lambda row: row.values[0] == 500,
            (500, "Junk filter"),
            at=d(6, 1),
        )
        assert terminated == 1
        rows = sorted(table.as_relation().tuples, key=lambda r: r.values[1])
        assert rows[0].values[1] == "Junk filter"
        assert rows[0].values[2].start == fixed(d(6, 1))
        assert rows[1].values[2].end == limited(d(6, 1))

    def test_instantiations_remain_consistent(self):
        """At every rt the table shows exactly one current version.

        A tuple valid ``[a, now)`` instantiates to ``[a, rt)`` — the end is
        exclusive, so "current at rt" means the interval covers ``rt - 1``.
        """
        table = _table()
        current_insert(table, (500, "v1"), at=d(1, 25))
        current_update(table, lambda row: row.values[0] == 500, (500, "v2"), at=d(6, 1))
        relation = table.as_relation()
        for rt in (d(3, 1), d(6, 1), d(9, 1)):
            current = [
                row
                for row in relation.instantiate(rt)
                if row[2][0] <= rt - 1 < row[2][1]
            ]
            assert len(current) == 1, rt

    def test_update_matching_nothing_is_a_noop(self):
        """Like SQL UPDATE: zero matched tuples → nothing inserted, no
        version bump, no change event."""
        table = _table()
        current_insert(table, (500, "v1"), at=d(1, 25))
        version = table.version
        terminated = current_update(
            table, lambda row: row.values[0] == 999, (999, "ghost"), at=d(6, 1)
        )
        assert terminated == 0
        assert len(table) == 1
        assert table.version == version


class TestVersionBumps:
    """Every modification path bumps the table version exactly once."""

    def test_insert_bumps_once(self):
        table = _table()
        assert table.version == 0
        table.insert(500, "X", OngoingInterval(fixed(d(1, 1)), fixed(d(2, 1))))
        assert table.version == 1

    def test_insert_many_bumps_once(self):
        table = _table()
        vt = OngoingInterval(fixed(d(1, 1)), fixed(d(2, 1)))
        table.insert_many([(500, "X", vt), (501, "Y", vt), (502, "Z", vt)])
        assert table.version == 1
        table.insert_many([])
        assert table.version == 1

    def test_current_insert_bumps_once(self):
        table = _table()
        current_insert(table, (500, "X"), at=d(1, 25))
        assert table.version == 1

    def test_current_delete_bumps_once(self):
        table = _table()
        current_insert(table, (500, "X"), at=d(1, 25))
        current_delete(table, lambda row: True, at=d(9, 10))
        assert table.version == 2

    def test_current_update_bumps_once_not_twice(self):
        """The delete + insert pair of a current update is one logical
        modification — observers must see a single change event."""
        table = _table()
        current_insert(table, (500, "v1"), at=d(1, 25))
        events = []
        table.add_change_listener(lambda name, version: events.append(version))
        terminated = current_update(
            table, lambda row: row.values[0] == 500, (500, "v2"), at=d(6, 1)
        )
        assert terminated == 1
        assert table.version == 2
        assert events == [2]

    def test_delete_where_bumps_only_when_rows_removed(self):
        table = _table()
        current_insert(table, (500, "X"), at=d(1, 25))
        table.delete_where(lambda row: True)  # keeps everything
        assert table.version == 1
        table.delete_where(lambda row: False)  # removes everything
        assert table.version == 2
