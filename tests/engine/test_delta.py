"""Unit tests for the delta-propagation engine (:mod:`repro.engine.delta`).

The property suite (``tests/properties/test_delta_properties.py``) checks
exactness over random plans and modification sequences; these tests pin
the deterministic contracts — the Delta type itself, typed deltas on the
table write paths, a fixed modification script per operator kind (so a
broken delta rule fails here by name), and the automatic fallback.
"""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.engine.database import Database
from repro.engine.delta import (
    Delta,
    DeltaEvaluator,
    EMPTY_DELTA,
    FULL_DELTA,
    NonIncrementalDelta,
    OperatorState,
    commit_changes,
)
from repro.engine.modifications import (
    current_delete,
    current_insert,
    current_update,
)
from repro.engine.plan import scan
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema
from repro.relational.tuples import OngoingTuple


def _database():
    db = Database("delta-unit")
    r = db.create_table("R", Schema.of("K", ("VT", "interval")))
    s = db.create_table("S", Schema.of("K", ("VT", "interval")))
    r.insert(0, until_now(5))
    r.insert(1, until_now(3))
    r.insert(2, fixed_interval(8, 18))
    s.insert(0, until_now(9))
    s.insert(1, fixed_interval(11, 25))
    return db


class TestDeltaType:
    def test_empty_and_full(self):
        assert EMPTY_DELTA.is_empty()
        assert not FULL_DELTA.is_empty()
        assert FULL_DELTA.full
        assert not EMPTY_DELTA.full
        assert len(EMPTY_DELTA) == 0

    def test_merge_concatenates_in_order(self):
        a = OngoingTuple((1,))
        b = OngoingTuple((2,))
        merged = Delta.insert((a,)).merge(Delta.delete((b,)))
        assert merged.inserted == (a,)
        assert merged.deleted == (b,)

    def test_full_absorbs(self):
        typed = Delta.insert((OngoingTuple((1,)),))
        assert typed.merge(FULL_DELTA).full
        assert FULL_DELTA.merge(typed).full

    def test_merge_identities(self):
        typed = Delta.insert((OngoingTuple((1,)),))
        assert typed.merge(EMPTY_DELTA) is typed
        assert EMPTY_DELTA.merge(typed) is typed

    def test_commit_changes_emits_only_transitions(self):
        state = OperatorState()
        a, b = OngoingTuple((1,)), OngoingTuple((2,))
        delta = commit_changes(state, {a: 2, b: 1})
        assert set(delta.inserted) == {a, b}
        # interior move: 2 -> 1 is not a transition
        delta = commit_changes(state, {a: -1})
        assert delta.is_empty()
        delta = commit_changes(state, {a: -1, b: -1})
        assert set(delta.deleted) == {a, b}

    def test_commit_changes_rejects_negative_counts(self):
        state = OperatorState()
        with pytest.raises(NonIncrementalDelta, match="count"):
            commit_changes(state, {OngoingTuple((1,)): -1})

    def test_builder_coalesces_in_linear_time_order(self):
        from repro.engine.delta import DeltaBuilder

        rows = [OngoingTuple((i,)) for i in range(5)]
        builder = DeltaBuilder()
        for row in rows:
            builder.add(Delta.insert((row,)))
        builder.add(Delta.delete((rows[0],)))
        built = builder.build()
        assert built.inserted == tuple(rows)
        assert built.deleted == (rows[0],)
        # full absorbs and empties
        builder.add(FULL_DELTA)
        builder.add(Delta.insert((rows[1],)))  # ignored after full
        assert builder.build() is FULL_DELTA
        assert DeltaBuilder().build() is EMPTY_DELTA


class TestTypedTableDeltas:
    def test_insert_reports_the_row(self):
        db = _database()
        captured = []
        db.add_delta_listener(
            lambda name, version, delta: captured.append((name, delta))
        )
        db.table("R").insert(7, until_now(1))
        ((name, delta),) = captured
        assert name == "R"
        assert len(delta.inserted) == 1 and not delta.deleted and not delta.full
        assert delta.inserted[0].values[0] == 7

    def test_current_update_is_one_delete_insert_pair(self):
        db = _database()
        captured = []
        db.add_delta_listener(
            lambda name, version, delta: captured.append(delta)
        )
        current_update(
            db.table("R"), lambda r: r.values[0] == 0, (0,), at=20
        )
        (delta,) = captured  # batch-coalesced: exactly one event
        assert len(delta.deleted) == 1
        assert len(delta.inserted) == 2  # terminated-row successor + new row
        assert not delta.full

    def test_replace_all_without_delta_is_full(self):
        db = _database()
        captured = []
        db.add_delta_listener(
            lambda name, version, delta: captured.append(delta)
        )
        db.table("R").replace_all([OngoingTuple((9, until_now(1)))])
        (delta,) = captured
        assert delta.full

    def test_drop_table_reports_full(self):
        db = _database()
        captured = []
        db.add_delta_listener(
            lambda name, version, delta: captured.append((name, delta))
        )
        db.drop_table("S")
        ((name, delta),) = captured
        assert name == "S" and delta.full

    def test_noop_modification_emits_nothing(self):
        db = _database()
        captured = []
        db.add_delta_listener(
            lambda name, version, delta: captured.append(delta)
        )
        current_delete(db.table("R"), lambda r: False, at=10)
        assert captured == []


def _script(db):
    """A fixed modification script hitting inserts, deletes, and updates."""
    r, s = db.table("R"), db.table("S")
    yield r.insert(1, until_now(10))
    yield current_delete(r, lambda t: t.values[0] == 1, at=12)
    yield current_update(r, lambda t: t.values[0] == 0, (0,), at=15)
    yield current_insert(s, (2,), at=4)
    yield current_delete(s, lambda t: t.values[0] == 0, at=6)
    yield r.insert(2, fixed_interval(8, 18))   # duplicate of a seed row
    yield current_update(s, lambda t: t.values[0] == 1, (3,), at=14)


_WINDOW = lit(fixed_interval(10, 20))

_OPERATOR_PLANS = {
    "fixed-filter": lambda: scan("R").where(col("K") == lit(1)),
    "ongoing-filter": lambda: scan("R").where(col("VT").overlaps(_WINDOW)),
    "project": lambda: scan("R").select_columns("K"),
    "hash-join": lambda: scan("R").join(
        scan("S"),
        on=(col("R.K") == col("S.K")) & col("R.VT").overlaps(col("S.VT")),
        left_name="R",
        right_name="S",
    ),
    "merge-join": lambda: scan("R").join(
        scan("S"), on=col("R.VT").overlaps(col("S.VT")),
        left_name="R", right_name="S",
    ),
    "nested-loop-join": lambda: scan("R").join(
        scan("S"), on=col("R.VT").before(col("S.VT")),
        left_name="R", right_name="S",
    ),
    "union": lambda: scan("R")
    .where(col("K") == lit(1))
    .union(scan("R").where(col("VT").overlaps(_WINDOW))),
    "difference": lambda: scan("R").difference(scan("S")),
}


class TestOperatorDeltaRules:
    @pytest.mark.parametrize("kind", sorted(_OPERATOR_PLANS))
    def test_script_stays_exact_and_incremental(self, kind):
        plan = _OPERATOR_PLANS[kind]()
        db = _database()
        evaluator = DeltaEvaluator(plan, db)
        evaluator.refresh_full()
        pending = {}
        db.add_delta_listener(
            lambda name, version, delta: pending.update(
                {
                    name: delta
                    if name not in pending
                    else pending[name].merge(delta)
                }
            )
        )
        steps = 0
        for _ in _script(db):
            evaluator.apply(pending)
            pending.clear()
            expected = db.query(plan)
            assert frozenset(evaluator.result.tuples) == frozenset(
                expected.tuples
            ), f"{kind} diverged at step {steps}"
            steps += 1
        assert evaluator.full_evaluations == 1  # never fell back
        assert evaluator.delta_applications == steps


class TestDeltaStorage:
    def test_delta_bytes_cover_both_directions(self):
        from repro.engine.storage import sizeof_delta, sizeof_tuple

        old = OngoingTuple((1, until_now(3)))
        new = OngoingTuple((1, fixed_interval(3, 9)))
        delta = Delta.update((old,), (new,))
        assert sizeof_delta(delta) == sizeof_tuple(old) + sizeof_tuple(new)
        assert sizeof_delta(EMPTY_DELTA) == 0
        assert sizeof_delta(FULL_DELTA) == 0  # no rows to ship


class TestEvaluatorFallback:
    def test_cold_state_raises(self):
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        with pytest.raises(NonIncrementalDelta, match="cold"):
            evaluator.apply({})

    def test_full_table_delta_raises(self):
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        evaluator.refresh_full()
        with pytest.raises(NonIncrementalDelta, match="full"):
            evaluator.apply({"R": FULL_DELTA})

    def test_unrelated_table_delta_is_ignored(self):
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        before = evaluator.refresh_full()
        delta = evaluator.apply(
            {"S": Delta.insert((OngoingTuple((5, until_now(1))),))}
        )
        assert delta.is_empty()
        assert evaluator.result is before

    def test_inconsistent_delta_invalidates_state(self):
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        evaluator.refresh_full()
        ghost = OngoingTuple((99, until_now(1)))
        with pytest.raises(NonIncrementalDelta):
            evaluator.apply({"R": Delta.delete((ghost,))})
        assert not evaluator.warm  # half-applied state must not survive
        evaluator.refresh_full()
        assert evaluator.warm

    def test_failed_replan_invalidates_stale_state(self):
        """A refresh_full that fails at *planning* time (dropped table)
        must invalidate the old operator state — otherwise deltas after
        the table is re-created silently apply to pre-drop state."""
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        evaluator.refresh_full()
        rows_before = len(evaluator.result)
        db.drop_table("R")
        with pytest.raises(Exception):
            evaluator.refresh_full()
        assert not evaluator.warm
        recreated = db.create_table("R", Schema.of("K", ("VT", "interval")))
        recreated.insert(99, until_now(1))
        result, delta = evaluator.refresh({})
        assert delta is None  # cold → full path
        assert [t.values[0] for t in result.tuples] == [99]
        assert len(result) != rows_before + 1  # no pre-drop leftovers

    def test_refresh_helper_routes_and_falls_back(self):
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        # cold: full path
        result, delta = evaluator.refresh({})
        assert delta is None and len(result) == 3
        # warm + typed delta: incremental path
        db.table("R").insert(9, until_now(2))
        captured = {}
        db.add_delta_listener(
            lambda name, version, d: captured.update({name: d})
        )
        db.table("R").insert(10, until_now(2))
        result, delta = evaluator.refresh(captured)
        assert delta is not None and len(delta.inserted) == 1
        assert 10 in [t.values[0] for t in result.tuples]
        # warm + full-flagged delta: logged fallback to full
        result, delta = evaluator.refresh({"R": FULL_DELTA})
        assert delta is None
        assert 9 in [t.values[0] for t in result.tuples]  # catches up fully

    def test_refresh_full_after_modifications_matches_query(self):
        db = _database()
        evaluator = DeltaEvaluator(scan("R"), db)
        evaluator.refresh_full()
        db.table("R").replace_all([OngoingTuple((9, until_now(1)))])
        with pytest.raises(NonIncrementalDelta):
            evaluator.apply({"R": FULL_DELTA})
        result = evaluator.refresh_full()
        assert frozenset(result.tuples) == frozenset(
            db.query(scan("R")).tuples
        )
