"""Unit tests for the plan rewriter (Section VIII's optimization rules)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import Difference, Join, Scan, Select, Union, scan
from repro.engine.rewrite import push_down_selections, split_selections
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


@pytest.fixture()
def db() -> Database:
    database = Database("rewrite-tests")
    bugs = database.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(d(3, 30), d(8, 21)))
    bugs.insert(502, "Dashboard", until_now(d(7, 1)))
    patches = database.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(d(8, 15), d(8, 24)))
    patches.insert(202, "Dashboard", fixed_interval(d(8, 24), d(8, 27)))
    return database


class TestSplit:
    def test_conjunction_cascades(self):
        plan = Select(
            Scan("B"),
            (col("C") == lit("x")) & (col("BID") == lit(1)),
        )
        rebuilt = split_selections(plan)
        assert isinstance(rebuilt, Select)
        assert isinstance(rebuilt.child, Select)
        assert isinstance(rebuilt.child.child, Scan)

    def test_single_conjunct_untouched(self):
        plan = Select(Scan("B"), col("C") == lit("x"))
        rebuilt = split_selections(plan)
        assert isinstance(rebuilt, Select)
        assert isinstance(rebuilt.child, Scan)

    def test_split_preserves_results(self, db):
        plan = Select(
            Scan("B"),
            (col("C") == lit("Spam filter"))
            & col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1)))),
        )
        assert db.query(split_selections(plan)) == db.query(plan)


class TestPushDown:
    def _joined(self):
        return Join(
            Scan("B"),
            Scan("P"),
            col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )

    def test_projection_exposes_columns_to_sink_into_join(self, db):
        # A selection over a join with a left-only predicate sinks into
        # the left input once exposure is known via an inner projection.
        inner = Join(
            Select(Scan("B"), col("C") == col("C")),  # keeps schema opaque
            Scan("P"),
            col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )
        plan = Select(inner, col("B.BID") == lit(500))
        rewritten = push_down_selections(plan)
        # scans are opaque to the pure rewriter, so the conjunct merges
        # into the join predicate instead of being lost
        assert isinstance(rewritten, Join)
        assert db.query(rewritten) == db.query(plan)

    def test_union_pushes_into_both_branches(self, db):
        plan = Select(
            Union(Scan("B"), Scan("B")), col("C") == lit("Dashboard")
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Union)
        assert isinstance(rewritten.left, Select)
        assert isinstance(rewritten.right, Select)
        assert db.query(rewritten) == db.query(plan)

    def test_difference_pushes_into_left_only(self, db):
        plan = Select(
            Difference(Scan("B"), Scan("B")), col("C") == lit("Dashboard")
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Difference)
        assert isinstance(rewritten.left, Select)
        assert isinstance(rewritten.right, Scan)
        assert db.query(rewritten) == db.query(plan)

    def test_join_predicate_absorbs_unsinkable_conjunct(self, db):
        plan = Select(self._joined(), col("B.VT").overlaps(col("P.VT")))
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Join)  # the Select disappeared
        assert db.query(rewritten) == db.query(plan)

    def test_results_identical_on_compound_plans(self, db):
        plan = Select(
            Select(
                Union(self._joined(), self._joined()),
                col("B.C") == lit("Spam filter"),
            ),
            col("B.VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1)))),
        )
        rewritten = push_down_selections(plan)
        assert db.query(rewritten) == db.query(plan)

    def test_projection_pass_through(self, db):
        plan = Select(
            scan("B").select_columns("BID", "C"),
            col("C") == lit("Dashboard"),
        )
        rewritten = push_down_selections(plan)
        assert db.query(rewritten) == db.query(plan)
