"""Unit tests for the plan rewriter (Section VIII's optimization rules)."""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import (
    Aggregate,
    Difference,
    Join,
    Scan,
    Select,
    Union,
    scan,
)
from repro.engine.rewrite import push_down_selections, split_selections
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


@pytest.fixture()
def db() -> Database:
    database = Database("rewrite-tests")
    bugs = database.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(d(3, 30), d(8, 21)))
    bugs.insert(502, "Dashboard", until_now(d(7, 1)))
    patches = database.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(d(8, 15), d(8, 24)))
    patches.insert(202, "Dashboard", fixed_interval(d(8, 24), d(8, 27)))
    return database


class TestSplit:
    def test_conjunction_cascades(self):
        plan = Select(
            Scan("B"),
            (col("C") == lit("x")) & (col("BID") == lit(1)),
        )
        rebuilt = split_selections(plan)
        assert isinstance(rebuilt, Select)
        assert isinstance(rebuilt.child, Select)
        assert isinstance(rebuilt.child.child, Scan)

    def test_single_conjunct_untouched(self):
        plan = Select(Scan("B"), col("C") == lit("x"))
        rebuilt = split_selections(plan)
        assert isinstance(rebuilt, Select)
        assert isinstance(rebuilt.child, Scan)

    def test_split_preserves_results(self, db):
        plan = Select(
            Scan("B"),
            (col("C") == lit("Spam filter"))
            & col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1)))),
        )
        assert db.query(split_selections(plan)) == db.query(plan)


class TestPushDown:
    def _joined(self):
        return Join(
            Scan("B"),
            Scan("P"),
            col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )

    def test_projection_exposes_columns_to_sink_into_join(self, db):
        # A selection over a join with a left-only predicate sinks into
        # the left input once exposure is known via an inner projection.
        inner = Join(
            Select(Scan("B"), col("C") == col("C")),  # keeps schema opaque
            Scan("P"),
            col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )
        plan = Select(inner, col("B.BID") == lit(500))
        rewritten = push_down_selections(plan)
        # scans are opaque to the pure rewriter, so the conjunct merges
        # into the join predicate instead of being lost
        assert isinstance(rewritten, Join)
        assert db.query(rewritten) == db.query(plan)

    def test_union_pushes_into_both_branches(self, db):
        plan = Select(
            Union(Scan("B"), Scan("B")), col("C") == lit("Dashboard")
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Union)
        assert isinstance(rewritten.left, Select)
        assert isinstance(rewritten.right, Select)
        assert db.query(rewritten) == db.query(plan)

    def test_difference_pushes_into_left_only(self, db):
        plan = Select(
            Difference(Scan("B"), Scan("B")), col("C") == lit("Dashboard")
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Difference)
        assert isinstance(rewritten.left, Select)
        assert isinstance(rewritten.right, Scan)
        assert db.query(rewritten) == db.query(plan)

    def test_join_predicate_absorbs_unsinkable_conjunct(self, db):
        plan = Select(self._joined(), col("B.VT").overlaps(col("P.VT")))
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Join)  # the Select disappeared
        assert db.query(rewritten) == db.query(plan)

    def test_results_identical_on_compound_plans(self, db):
        plan = Select(
            Select(
                Union(self._joined(), self._joined()),
                col("B.C") == lit("Spam filter"),
            ),
            col("B.VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1)))),
        )
        rewritten = push_down_selections(plan)
        assert db.query(rewritten) == db.query(plan)

    def test_projection_pass_through(self, db):
        plan = Select(
            scan("B").select_columns("BID", "C"),
            col("C") == lit("Dashboard"),
        )
        rewritten = push_down_selections(plan)
        assert db.query(rewritten) == db.query(plan)

    def test_catalog_resolves_scan_schemas_for_join_sink(self, db):
        # With the owning database, scans stop being opaque: a left-only
        # conjunct sinks below the join instead of merging into its
        # predicate.
        plan = Select(self._joined(), col("B.BID") == lit(500))
        rewritten = push_down_selections(plan, db)
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.left, Select)
        assert rewritten.left.predicate.references() == {"BID"}
        assert isinstance(rewritten.right, Scan)
        assert db.query(rewritten) == db.query(plan)

    def test_difference_right_side_never_restricted(self, db):
        # Regression for the unsound direction: a right tuple failing θ
        # still subtracts reference time, so σθ must not reach R.
        plan = Select(
            Difference(Scan("B"), Scan("B")), col("C") == lit("Dashboard")
        )
        rewritten = push_down_selections(plan, db)
        assert isinstance(rewritten, Difference)
        assert isinstance(rewritten.right, Scan)
        assert db.query(rewritten) == db.query(plan)


class TestAggregatePushdown:
    def test_group_column_predicate_sinks_below_aggregate(self, db):
        plan = Select(
            Aggregate(Scan("B"), ("C",), "count"),
            col("C") == lit("Dashboard"),
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Aggregate)
        assert isinstance(rewritten.child, Select)
        assert db.query(rewritten) == db.query(plan)

    def test_aggregated_column_predicate_stays_above(self):
        # θ over the aggregate's output column is NOT constant per group
        # member; pushing it below γ would filter inputs, not groups.
        plan = Select(
            Aggregate(Scan("B"), ("C",), "count"),
            col("count") == lit(1),
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.child, Aggregate)

    def test_mixed_reference_predicate_stays_above(self):
        plan = Select(
            Aggregate(Scan("B"), ("C",), "count"),
            (col("C") == lit("Dashboard")) | (col("count") == lit(1)),
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.child, Aggregate)

    def test_ongoing_literal_blocks_push(self):
        # Even over a grouping column, comparing against an ongoing value
        # can change truth as time passes — it must stay above γ.
        plan = Select(
            Aggregate(Scan("B"), ("C",), "count"),
            col("C") == lit(until_now(d(1, 25))),
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.child, Aggregate)

    def test_allen_predicate_blocks_push(self):
        plan = Select(
            Aggregate(Scan("B"), ("C",), "count"),
            col("C").overlaps(lit(fixed_interval(d(1, 1), d(2, 1)))),
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.child, Aggregate)

    def test_scalar_aggregate_never_pushed(self):
        # A scalar γ emits an empty-group row; a selection above it must
        # see that row, so nothing sinks through.
        plan = Select(
            Aggregate(Scan("B"), (), "count"),
            col("count") == lit(0),
        )
        rewritten = push_down_selections(plan)
        assert isinstance(rewritten, Select)
        assert isinstance(rewritten.child, Aggregate)

    def test_pushdown_composes_with_join_below_aggregate(self, db):
        inner = Join(
            Scan("B"),
            Scan("P"),
            col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )
        plan = Select(
            Aggregate(inner, ("B.C",), "count"),
            col("B.C") == lit("Spam filter"),
        )
        rewritten = push_down_selections(plan, db)
        # The conjunct sinks through γ and then below the join.
        assert isinstance(rewritten, Aggregate)
        assert isinstance(rewritten.child, Join)
        assert isinstance(rewritten.child.left, Select)
        assert db.query(rewritten) == db.query(plan)
