"""Unit tests for the catalog and query entry point."""

import pytest

from repro.core.interval import until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.plan import scan
from repro.errors import QueryError, SchemaError
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def _database() -> Database:
    db = Database("test")
    table = db.create_table("bugs", Schema.of("BID", "C", ("VT", "interval")))
    table.insert(500, "Spam filter", until_now(mmdd(1, 25)))
    table.insert(501, "Dashboard", until_now(mmdd(3, 30)))
    return db


class TestCatalog:
    def test_create_and_lookup(self):
        db = _database()
        assert db.table("bugs").name == "bugs"
        assert len(db.relation("bugs")) == 2

    def test_duplicate_table_rejected(self):
        db = _database()
        with pytest.raises(QueryError, match="already exists"):
            db.create_table("bugs", Schema.of("X"))

    def test_unknown_table_lists_catalog(self):
        db = _database()
        with pytest.raises(QueryError, match="bugs"):
            db.table("nope")

    def test_drop_table(self):
        db = _database()
        db.drop_table("bugs")
        with pytest.raises(QueryError):
            db.table("bugs")
        with pytest.raises(QueryError):
            db.drop_table("bugs")

    def test_register_preloads(self):
        db = _database()
        db.register("copy", db.relation("bugs"))
        assert len(db.relation("copy")) == 2


class TestTable:
    def test_insert_arity_checked(self):
        db = _database()
        with pytest.raises(SchemaError, match="expects 3 values"):
            db.table("bugs").insert(1, 2)

    def test_insert_many_arity_checked(self):
        db = _database()
        with pytest.raises(SchemaError):
            db.table("bugs").insert_many([(1, 2)])

    def test_insert_many_is_all_or_nothing(self):
        """A malformed row mid-batch must not leave earlier rows stored
        without a version bump, snapshot invalidation, or delta event."""
        db = _database()
        table = db.table("bugs")
        before_len = len(table)
        before_version = table.version
        snapshot = table.as_relation()
        with pytest.raises(SchemaError):
            table.insert_many(
                [(502, "Search", until_now(mmdd(5, 1))), (503, "oops")]
            )
        assert len(table) == before_len
        assert table.version == before_version
        assert table.as_relation() is snapshot  # cache untouched, and true

    def test_snapshot_is_cached_and_invalidated(self):
        db = _database()
        table = db.table("bugs")
        first = table.as_relation()
        assert table.as_relation() is first
        table.insert(502, "Search", until_now(mmdd(5, 1)))
        assert table.as_relation() is not first
        assert len(table.as_relation()) == 3

    def test_delete_where(self):
        db = _database()
        removed = db.table("bugs").delete_where(lambda row: row.values[0] != 500)
        assert removed == 1
        assert db.relation("bugs").column("BID") == [501]

    def test_base_tuples_get_trivial_rt(self):
        db = _database()
        assert all(item.rt.is_universal() for item in db.relation("bugs"))


class TestQuery:
    def test_query_materializes(self):
        db = _database()
        result = db.query(scan("bugs").where(col("C") == lit("Dashboard")))
        assert result.column("BID") == [501]

    def test_explain_mentions_operators(self):
        db = _database()
        text = db.explain(scan("bugs").where(col("C") == lit("Dashboard")))
        assert "SeqScan" in text
        assert "FixedFilter" in text
