"""Unit tests for the planner (Section VIII) and the physical operators.

The key invariants:

* the predicate split never changes results (optimize=True == optimize=False);
* the three join algorithms produce identical relations;
* the split actually happens (fixed conjuncts -> FixedFilter / hash keys,
  ongoing conjuncts -> OngoingFilter / residuals).
"""

import pytest

from repro.core.interval import fixed_interval, until_now
from repro.core.timeline import mmdd
from repro.engine.database import Database
from repro.engine.executor import (
    HashJoin,
    MergeIntervalJoin,
    NestedLoopJoin,
    SeqScan,
    materialize,
)
from repro.engine.plan import Difference, Join, Project, Scan, Select, Union, scan
from repro.engine.planner import Planner
from repro.errors import QueryError, SchemaError
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema


def d(month, day):
    return mmdd(month, day)


def _database() -> Database:
    db = Database("planner-tests")
    bugs = db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(d(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(d(3, 30), d(8, 21)))
    bugs.insert(502, "Dashboard", until_now(d(7, 1)))
    patches = db.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(d(8, 15), d(8, 24)))
    patches.insert(202, "Dashboard", fixed_interval(d(8, 24), d(8, 27)))
    return db


class TestPredicateSplit:
    def test_fixed_conjunct_becomes_fixed_filter(self):
        db = _database()
        plan = scan("B").where(
            (col("C") == lit("Spam filter"))
            & col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1))))
        )
        text = db.explain(plan)
        assert "FixedFilter (1 conjuncts)" in text
        assert "OngoingFilter (1 conjuncts)" in text

    def test_unoptimized_puts_everything_on_ongoing_path(self):
        db = _database()
        plan = scan("B").where(col("C") == lit("Spam filter"))
        text = db.explain(plan, optimize=False)
        assert "FixedFilter" not in text
        assert "OngoingFilter" in text

    def test_split_does_not_change_results(self):
        db = _database()
        plan = scan("B").where(
            (col("C") == lit("Spam filter"))
            & col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1))))
        )
        assert db.query(plan) == db.query(plan, optimize=False)


class TestJoinSelection:
    def test_equi_conjunct_selects_hash_join(self):
        db = _database()
        plan = scan("B").join(
            scan("P"),
            on=(col("B.C") == col("P.C")) & col("B.VT").before(col("P.VT")),
            left_name="B",
            right_name="P",
        )
        physical = Planner().plan(plan, db)
        assert isinstance(physical, HashJoin)

    def test_overlaps_conjunct_selects_merge_join(self):
        db = _database()
        plan = scan("B").join(
            scan("P"),
            on=col("B.VT").overlaps(col("P.VT")),
            left_name="B",
            right_name="P",
        )
        physical = Planner().plan(plan, db)
        assert isinstance(physical, MergeIntervalJoin)

    def test_fallback_is_nested_loop(self):
        db = _database()
        plan = scan("B").join(
            scan("P"),
            on=col("B.VT").before(col("P.VT")),
            left_name="B",
            right_name="P",
        )
        physical = Planner().plan(plan, db)
        assert isinstance(physical, NestedLoopJoin)

    def test_unoptimized_join_is_nested_loop(self):
        db = _database()
        plan = scan("B").join(
            scan("P"),
            on=col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )
        physical = Planner(optimize=False).plan(plan, db)
        assert isinstance(physical, NestedLoopJoin)

    def test_all_join_algorithms_agree(self):
        db = _database()
        predicate = (col("B.C") == col("P.C")) & col("B.VT").overlaps(col("P.VT"))
        plan = scan("B").join(
            scan("P"), on=predicate, left_name="B", right_name="P"
        )
        optimized = db.query(plan)
        naive = db.query(plan, optimize=False)
        assert optimized == naive
        # Force the merge join by dropping the equi conjunct from planning:
        merge_plan = scan("B").join(
            scan("P"),
            on=col("B.VT").overlaps(col("P.VT")) & (col("B.C") == col("P.C")),
            left_name="B",
            right_name="P",
        )
        assert db.query(merge_plan) == optimized

    def test_join_clash_requires_qualification(self):
        db = _database()
        plan = Join(Scan("B"), Scan("P"), col("BID") == col("PID"))
        with pytest.raises(SchemaError, match="left_name/right_name"):
            db.query(plan)


class TestOtherOperators:
    def test_projection_plan(self):
        db = _database()
        result = db.query(scan("B").select_columns("BID"))
        assert sorted(result.column("BID")) == [500, 501, 502]

    def test_union_plan(self):
        db = _database()
        result = db.query(Union(Scan("B"), Scan("B")))
        assert len(result) == 3

    def test_difference_plan(self):
        db = _database()
        filtered = Select(Scan("B"), col("C") == lit("Dashboard"))
        result = db.query(Difference(Scan("B"), filtered))
        assert sorted(result.column("BID")) == [500, 501]

    def test_empty_projection_rejected(self):
        with pytest.raises(QueryError):
            Project(Scan("B"), ())

    def test_unknown_plan_node_rejected(self):
        class Strange:
            pass

        with pytest.raises(QueryError):
            Planner().plan(Strange(), _database())

    def test_scan_requires_table_name(self):
        with pytest.raises(QueryError):
            Scan("")

    def test_materialize_roundtrip(self):
        db = _database()
        relation = db.relation("B")
        assert materialize(SeqScan(relation)) == relation

    def test_explain_is_indented_tree(self):
        db = _database()
        plan = scan("B").join(
            scan("P"),
            on=col("B.C") == col("P.C"),
            left_name="B",
            right_name="P",
        )
        lines = db.explain(plan).splitlines()
        assert lines[0].startswith("HashJoin")
        assert any(line.startswith("  ") for line in lines)


class TestIntervalScan:
    """The cost-gated index access path for cold temporal selections."""

    @staticmethod
    def _big_database(rows: int = 200) -> Database:
        import random

        rng = random.Random(23)
        db = Database("interval-scan-tests")
        events = db.create_table("E", Schema.of("ID", ("VT", "interval")))
        for i in range(rows):
            start = rng.randrange(1, 300)
            if rng.random() < 0.2:
                events.insert(i, until_now(start))
            else:
                events.insert(i, fixed_interval(start, start + rng.randrange(1, 40)))
        return db

    def test_big_table_overlap_select_uses_interval_scan(self):
        db = self._big_database()
        plan = scan("E").where(col("VT").overlaps(lit(fixed_interval(50, 60))))
        text = db.explain(plan)
        assert "IntervalScan" in text
        assert "SeqScan" not in text

    def test_small_table_keeps_seq_scan(self):
        db = _database()  # 3 rows, below the 32-row threshold
        plan = scan("B").where(
            col("VT").overlaps(lit(fixed_interval(d(8, 1), d(9, 1))))
        )
        assert "IntervalScan" not in db.explain(plan)

    def test_cost_model_none_threshold_disables_index(self):
        from repro.engine.cost import CostModel

        db = self._big_database()
        plan = scan("E").where(col("VT").overlaps(lit(fixed_interval(50, 60))))
        planner = Planner(cost_model=CostModel(index_threshold=None))
        assert "IntervalScan" not in planner.plan(plan, db).explain()

    def test_disjoint_allen_relations_never_indexed(self):
        db = self._big_database()
        for plan in (
            scan("E").where(col("VT").before(lit(fixed_interval(50, 60)))),
            scan("E").where(col("VT").meets(lit(fixed_interval(50, 60)))),
        ):
            assert "IntervalScan" not in db.explain(plan)

    def test_lossless_across_allen_family(self):
        """Index candidates + exact filter == full scan + exact filter."""
        db = self._big_database()
        probe = lit(fixed_interval(100, 140))
        indexed = [
            col("VT").overlaps(probe),
            col("VT").contains(probe),
            col("VT").starts(probe),
            col("VT").finishes(probe),
            col("VT").interval_equals(probe),
            col("VT").overlaps(lit(until_now(120))),
        ]
        for predicate in indexed:
            plan = scan("E").where(predicate)
            assert "IntervalScan" in db.explain(plan), predicate
            assert db.query(plan) == db.query(plan, optimize=False), predicate

    def test_empty_escape_orientations_not_indexed(self):
        """``col during lit`` holds for *empty* column instantiations
        that share no point with the probe — the index would lose rows,
        so the planner must refuse it (and the symmetric ``contains``)."""
        from repro.relational.predicates import AllenPredicate

        db = self._big_database()
        probe = lit(fixed_interval(100, 140))
        unsound = [
            col("VT").during(probe),
            AllenPredicate("contains", probe, col("VT")),
            col("VT").interval_equals(lit(until_now(120))),  # ongoing probe
        ]
        for predicate in unsound:
            plan = scan("E").where(predicate)
            assert "IntervalScan" not in db.explain(plan), predicate
            assert db.query(plan) == db.query(plan, optimize=False), predicate

    def test_literal_on_left_side_also_indexed(self):
        db = self._big_database()
        from repro.relational.predicates import AllenPredicate

        plan = scan("E").where(
            AllenPredicate("during", lit(fixed_interval(100, 110)), col("VT"))
        )
        assert "IntervalScan" in db.explain(plan)
        assert db.query(plan) == db.query(plan, optimize=False)

    def test_index_cached_per_version(self):
        db = self._big_database()
        table = db.table("E")
        first = table.interval_index("VT")
        assert first is table.interval_index("VT")
        table.insert(9999, fixed_interval(1, 2))
        second = table.interval_index("VT")
        assert second is not first
        assert second.size == first.size + 1

    def test_non_indexable_attribute_returns_none(self):
        db = self._big_database()
        assert db.table("E").interval_index("ID") is None
