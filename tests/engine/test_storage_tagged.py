"""The tagged (self-describing) tuple codec behind the write-ahead log.

Unlike the schema-directed layout (``pack_tuple``), the tagged layout
must decode with no catalog at hand — recovery reads WAL records before
any schema exists.  Whatever a table can hold must round-trip
bit-identically, including the int32 edge values that the sentinel-coded
date layout cannot represent.
"""

import pytest

from repro.core.interval import OngoingInterval, fixed_interval, until_now
from repro.core.intervalset import IntervalSet
from repro.core.timeline import MINUS_INF, PLUS_INF
from repro.core.timepoint import OngoingTimePoint
from repro.engine.storage import (
    pack_tagged_tuple,
    pack_tagged_value,
    unpack_tagged_tuple,
    unpack_tagged_value,
)
from repro.errors import StorageError
from repro.relational.tuples import OngoingTuple


def _roundtrip_value(value):
    buffer = pack_tagged_value(value)
    decoded, offset = unpack_tagged_value(buffer, 0)
    assert offset == len(buffer)
    return decoded


class TestScalarRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**31 - 1,
            -(2**31),  # must NOT be sentinel-mapped to MINUS_INF
            2**31,
            -(2**31) - 1,
            2**63 - 1,
            -(2**63),
            "",
            "spam filter",
            "ünïcode — 日本語",
        ],
    )
    def test_value_roundtrips_identically(self, value):
        decoded = _roundtrip_value(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_int_beyond_64_bits_rejected(self):
        with pytest.raises(StorageError):
            pack_tagged_value(2**63)

    def test_bool_is_not_confused_with_int(self):
        assert _roundtrip_value(True) is True
        assert _roundtrip_value(1) == 1
        assert _roundtrip_value(1) is not True


class TestOngoingRoundTrip:
    def test_ongoing_time_point(self):
        point = OngoingTimePoint(5, 20)
        assert _roundtrip_value(point) == point

    def test_ongoing_interval(self):
        interval = until_now(7)
        assert _roundtrip_value(interval) == interval

    def test_fixed_interval(self):
        interval = fixed_interval(3, 9)
        assert _roundtrip_value(interval) == interval

    def test_interval_with_infinite_bounds(self):
        interval = OngoingInterval(
            OngoingTimePoint(MINUS_INF, MINUS_INF),
            OngoingTimePoint(PLUS_INF, PLUS_INF),
        )
        assert _roundtrip_value(interval) == interval


class TestTupleRoundTrip:
    def test_plain_tuple(self):
        item = OngoingTuple((1, "bug", until_now(5)))
        decoded, offset = unpack_tagged_tuple(pack_tagged_tuple(item))
        assert decoded == item
        assert decoded.rt == item.rt

    def test_tuple_with_bounded_rt(self):
        item = OngoingTuple(
            (42, None, fixed_interval(1, 4)),
            IntervalSet([(2, 10), (20, PLUS_INF)]),
        )
        decoded, _ = unpack_tagged_tuple(pack_tagged_tuple(item))
        assert decoded == item
        assert list(decoded.rt) == list(item.rt)

    def test_consecutive_tuples_in_one_buffer(self):
        first = OngoingTuple((1, until_now(2)))
        second = OngoingTuple(("two", False))
        buffer = pack_tagged_tuple(first) + pack_tagged_tuple(second)
        decoded_first, offset = unpack_tagged_tuple(buffer, 0)
        decoded_second, end = unpack_tagged_tuple(buffer, offset)
        assert (decoded_first, decoded_second) == (first, second)
        assert end == len(buffer)

    def test_empty_tuple(self):
        item = OngoingTuple(())
        decoded, _ = unpack_tagged_tuple(pack_tagged_tuple(item))
        assert decoded == item
