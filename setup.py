"""Legacy setuptools entry point.

The offline evaluation environment ships setuptools 65 without ``wheel``,
which breaks PEP 660 editable installs.  This thin ``setup.py`` keeps
``pip install -e .`` working there; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
