"""Bitemporal audit trail: valid time + transaction time + reference time.

Section IV of the paper separates three temporal dimensions: *valid time*
(when a fact holds in the world), *transaction time* (when the database
knew it), and *reference time* (when a tuple belongs to the instantiated
relations).  This example keeps all three for a bug tracker and shows that
``AS OF`` audit queries stay correct as time passes — because transaction
time is stored as an *ongoing* interval, never as an instantiated
timestamp.

Run with::

    python examples/bitemporal_audit.py
"""

from repro import fmt_point, mmdd, until_now
from repro.engine import Database
from repro.engine.bitemporal import BitemporalTable
from repro.relational import Schema


def main() -> None:
    db = Database("tracker")
    bugs = BitemporalTable(db, "bugs", Schema.of("BID", "Sev", ("VT", "interval")))

    # 01/26: bug 500 is recorded (it has been open since 01/25).
    bugs.insert((500, "minor", until_now(mmdd(1, 25))), at=mmdd(1, 26))
    # 03/10: triage raises the severity — a logical update.
    bugs.update(
        lambda row: row.values[0] == 500,
        (500, "major", until_now(mmdd(1, 25))),
        at=mmdd(3, 10),
    )
    # 06/01: the record is deleted (bug moved to another tracker).
    bugs.delete(lambda row: row.values[0] == 500, at=mmdd(6, 1))

    print("The stored bitemporal relation (TT is ongoing, never instantiated):")
    print(bugs.current().format())
    print()

    print("AS OF audit queries, evaluated at reference time 12/01:")
    rt = mmdd(12, 1)
    for slice_label, slice_time in [
        ("02/01 (before triage)", mmdd(2, 1)),
        ("04/01 (after triage) ", mmdd(4, 1)),
        ("07/01 (after delete) ", mmdd(7, 1)),
    ]:
        rows = bugs.as_of(slice_time, rt)
        if rows:
            for bid, severity, vt in rows:
                print(
                    f"  as of {slice_label}: bug {bid} severity={severity} "
                    f"open [{fmt_point(vt[0])}, {fmt_point(vt[1])})"
                )
        else:
            print(f"  as of {slice_label}: no record")
    print()

    print("The same audit answers hold at every reference time:")
    slice_time = mmdd(4, 1)
    for rt in (mmdd(4, 15), mmdd(8, 1), mmdd(12, 31)):
        rows = bugs.as_of(slice_time, rt)
        (bid, severity, vt) = rows[0]
        print(
            f"  rt={fmt_point(rt)}: as-of-04/01 shows severity={severity}, "
            f"VT=[{fmt_point(vt[0])}, {fmt_point(vt[1])})"
        )
    print()
    print("Note the valid time still instantiates per Definition 2 at each rt,")
    print("while the transaction-time slice pins the audit point in history.")


if __name__ == "__main__":
    main()
