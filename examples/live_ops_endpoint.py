"""The operations plane, end to end: SLO, /metrics endpoint, adaptation.

``live_dashboard_serve.py`` shows the serving layer under load; this
variant runs the same kind of deployment with the PR 8 operations plane
wired in:

* the session carries a :class:`~repro.obs.FreshnessSLO` — every
  delivered notification is stamped at write time, so the SLO window
  sees true write→deliver latency and the adaptive ``serve()`` debounce
  tightens while the error budget burns;
* an :class:`~repro.obs.ObsServer` exposes the whole plane over HTTP on
  an ephemeral port — the script scrapes its own ``/metrics``,
  ``/health``, ``/subscriptions``, and ``/explain`` endpoints exactly
  the way Prometheus or an operator would;
* refresh timings feed the per-plan cost history, and the learned
  parameters show up in ``/explain`` and
  ``repro_cost_adaptations_total``.

Run with::

    python examples/live_ops_endpoint.py
"""

import json
import threading
import urllib.request

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.engine.modifications import current_delete, current_insert
from repro.engine.plan import scan
from repro.live import LiveSession
from repro.obs import FreshnessSLO, ObsServer
from repro.relational.predicates import col, lit
from repro.relational.schema import Schema

N_WRITERS = 2
WRITES_PER_WRITER = 150


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


def main() -> None:
    db = Database("ops")
    orders = db.create_table(
        "Orders", Schema.of("ID", "STATUS", ("VT", "interval"))
    )
    orders.insert_many(
        (i, "open" if i % 3 else "done", until_now(i % 7))
        for i in range(2_000)
    )

    # A 250ms write→deliver target: generous for this workload, so the
    # endpoint reports a healthy budget — lower it to watch /health
    # flip to 503 and the debounce band tighten.
    session = LiveSession(
        db,
        delivery_workers=2,
        backpressure="coalesce",
        queue_capacity=8,
        freshness_slo=FreshnessSLO(0.25, objective=0.95, window=128),
    )
    delivered = []
    lock = threading.Lock()

    def on_refresh(event):
        with lock:
            delivered.append(event)

    open_orders = session.subscribe(
        scan("Orders").where(col("STATUS") == lit("open")),
        on_refresh=on_refresh,
        name="open-orders",
    )
    session.subscribe(
        scan("Orders").select_columns("ID"),
        on_refresh=on_refresh,
        name="order-ids",
    )
    session.serve(debounce_min=0.001, debounce_max=0.05)

    def writer(seed: int) -> None:
        for i in range(WRITES_PER_WRITER):
            key = 2_000 + seed * WRITES_PER_WRITER + i
            at = 100 + i
            if i % 5 == 4:
                current_delete(
                    db.table("Orders"),
                    lambda row, k=key - 2: row.values[0] == k,
                    at=at,
                )
            else:
                current_insert(
                    db.table("Orders"), (key, "open"), at=at
                )

    with ObsServer(session) as obs:
        print(f"operations endpoint listening on {obs.url}\n")
        threads = [
            threading.Thread(target=writer, args=(seed,))
            for seed in range(N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        session.stop_serving()
        session.flush()
        session.bus.drain(timeout=30)

        health = json.loads(_get(obs.url + "/health"))
        print(f"/health          → {health['status']}")
        print(f"  slo            {health['slo']}")
        print(f"  freshness p99  {health['freshness']['p99']}")
        print(f"  staleness      {health['staleness_seconds']}")

        subs = json.loads(_get(obs.url + "/subscriptions"))
        for entry in subs:
            print(
                f"/subscriptions   → {entry['name']}: "
                f"{entry['refreshes']} refreshes, "
                f"{entry['notifications']} notifications"
            )

        metrics = _get(obs.url + "/metrics")
        for line in metrics.splitlines():
            if line.startswith(
                ("repro_freshness_seconds_count", "repro_cost_adaptations")
            ):
                print(f"/metrics         → {line}")

        explain = _get(obs.url + f"/explain/{open_orders.fingerprint[:12]}")
        print("\n/explain/" + open_orders.fingerprint[:12])
        print(explain)

    with lock:
        print(f"{len(delivered)} notifications delivered")
    session.close()


if __name__ == "__main__":
    main()
