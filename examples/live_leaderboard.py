"""A live top-k leaderboard, served straight from OSQL.

The ordered-surface PR makes the *full* SQL shape subscribable: one
statement carries multi-aggregate ``GROUP BY``, ``HAVING``, ``DISTINCT``
and a maintained ``ORDER BY ... LIMIT k`` window, and the serving layer
needs no changes at all — :func:`repro.sqlish.subscribe` compiles the
text to a plan whose top of the tree is a :class:`SortLimit` node.

Two boards over the MozillaBugs workload:

* **newest-bugs feed** — ``ORDER BY ID DESC LIMIT 10``: every freshly
  filed bug has the largest ID so far, so each write lands *inside* the
  window and stays on the O(log k) delta path (insert into the sorted
  window, evict the boundary row into the overflow count);
* **component leaderboard** — ``GROUP BY Component`` with ``COUNT(*)``
  and ``SUM_DURATION(VT)`` in one pass, filtered by ``HAVING`` and
  topped by ``ORDER BY open_bugs DESC ... LIMIT 3``: rows are ordered
  by their *eventual* value (counts over ongoing tuples keep growing as
  time passes), and a rank change at the window boundary falls back to
  the logged full refresh — the stats below show both paths firing.

Run with::

    python examples/live_leaderboard.py
"""

import threading
import time

from repro.datasets import generate_mozilla
from repro.datasets import mozilla as mozilla_module
from repro.engine.modifications import current_delete, current_insert
from repro.live import LiveSession
from repro.sqlish import compile_statement, subscribe

FEED_SQL = "SELECT ID, Component FROM B ORDER BY ID DESC LIMIT 10"

BOARD_SQL = (
    "SELECT Component, COUNT(*) AS open_bugs, SUM_DURATION(VT) AS load "
    "FROM B GROUP BY Component "
    "HAVING open_bugs >= 2 "
    "ORDER BY open_bugs DESC, Component LIMIT 3"
)

N_WRITERS = 2
WRITES_PER_WRITER = 20
HOT_COMPONENT = "component-03"


def _show(title: str, subscription, key) -> None:
    # The maintained window is a *set* of ongoing tuples (which k rows
    # survive); presentation order is applied at instantiation time.
    rows = sorted(subscription.instantiate(mozilla_module.HISTORY_END), key=key)
    print(f"{title}:")
    for rank, row in enumerate(rows, start=1):
        print(f"  {rank}. {row}")


def _feed_rank(row):
    return -row[0]  # newest bug ID first


def _board_rank(row):
    return (-row[1], row[0])  # open_bugs DESC, Component


def main() -> None:
    dataset = generate_mozilla(5_000)
    db = dataset.as_database()
    session = LiveSession(db, delivery_workers=2)

    feed = subscribe(FEED_SQL, session, name="newest-bugs")
    board = subscribe(BOARD_SQL, session, name="component-leaderboard")
    _show("initial top components", board, _board_rank)

    session.serve(debounce=0.005)
    bugs = db.table("B")

    def writer(seed: int) -> None:
        base = 30_000_000 + seed * WRITES_PER_WRITER
        for i in range(WRITES_PER_WRITER):
            bug_id = base + i
            row = ("product-00", HOT_COMPONENT, "Linux", f"burst {seed}/{i}")
            current_insert(
                bugs, (bug_id,) + row, at=mozilla_module.HISTORY_END - 5
            )
            if i % 7 == 6:  # the occasional triage closes a bug again
                current_delete(
                    bugs,
                    lambda r, b=bug_id: r.values[0] == b,
                    at=mozilla_module.HISTORY_END - 3,
                )

    started = time.perf_counter()
    threads = [
        threading.Thread(target=writer, args=(seed,))
        for seed in range(N_WRITERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    write_seconds = time.perf_counter() - started

    session.stop_serving()
    session.flush()
    session.bus.drain(timeout=10)

    print(
        f"\n{N_WRITERS} writers filed {N_WRITERS * WRITES_PER_WRITER} "
        f"modifications against {HOT_COMPONENT!r} in "
        f"{write_seconds * 1e3:.1f} ms while the serve loop kept both "
        f"boards fresh\n"
    )
    _show("top components now", board, _board_rank)
    _show("\nnewest bugs", feed, _feed_rank)

    stats = session.stats()
    print(
        f"\nrefreshes: {stats['repro_live_delta_refreshes_total']} by delta, "
        f"{stats['repro_live_full_refreshes_total']} full "
        f"(top-k boundary evictions fall back, in-window churn does not); "
        f"{stats['repro_live_flushes_total']} flushes coalesced from "
        f"{stats['repro_live_events_total']} events"
    )

    # Both maintained windows are exact: byte-identical to re-running the
    # compiled plans from scratch.
    for sql, subscription in ((FEED_SQL, feed), (BOARD_SQL, board)):
        assert subscription.result == db.query(compile_statement(sql, db))
    print("both boards match a from-scratch evaluation — exactly")
    session.close()


if __name__ == "__main__":
    main()
