"""Ongoing aggregation — the paper's future work (Section X), working today.

The paper closes by asking for a duration function returning *ongoing
integers* and an aggregation operator for ongoing relations.  This library
implements both: an ongoing integer is a piecewise-linear function of the
reference time, and aggregates (COUNT, SUM of durations, MIN/MAX) evaluate
to ongoing integers that — like every ongoing result — remain valid as time
passes by.

Run with::

    python examples/aggregation_preview.py
"""

from repro import allen, duration, fixed_interval, fmt_point, mmdd, until_now
from repro.relational import (
    OngoingRelation,
    Schema,
    count_tuples,
    group_by,
    sum_durations,
)


def build_bugs() -> OngoingRelation:
    schema = Schema.of("BID", "C", ("VT", "interval"))
    return OngoingRelation.from_rows(
        schema,
        [
            (500, "Spam filter", until_now(mmdd(1, 25))),
            (501, "Spam filter", fixed_interval(mmdd(3, 30), mmdd(8, 21))),
            (502, "Spam filter", until_now(mmdd(6, 15))),
            (503, "Dashboard", until_now(mmdd(7, 1))),
            (504, "Dashboard", fixed_interval(mmdd(2, 1), mmdd(4, 1))),
        ],
    )


def main() -> None:
    bugs = build_bugs()

    print("=== duration() returns an ongoing integer ===")
    bug_age = duration(until_now(mmdd(1, 25)))
    print(f"duration([01/25, now)) = {bug_age.format()}")
    for rt in (mmdd(1, 20), mmdd(2, 25), mmdd(8, 15)):
        print(f"  at rt={fmt_point(rt)}: {bug_age.instantiate(rt)} days")
    print()

    print("=== COUNT(*) as a function of the reference time ===")
    # Base tuples exist at every reference time, so their count is constant:
    print(f"count over the base table = {count_tuples(bugs).format()}")
    # A query result's RT is restricted by its predicate, so counting the
    # result gives a genuinely time-dependent answer: how many bugs overlap
    # the August patch window, as a function of the reference time?
    from repro.relational import col, lit, select

    window = fixed_interval(mmdd(8, 15), mmdd(8, 24))
    affected = select(bugs, col("VT").overlaps(lit(window)))
    affected_count = count_tuples(affected)
    print(f"count of bugs overlapping the patch window = "
          f"{affected_count.format()}")
    print()

    print("=== an ongoing threshold alert ===")
    # 'When do more than 2 bugs hit the patch window?' — an ongoing boolean
    # that composes with every other predicate in the library.
    alert = affected_count.greater_than(2)
    print(f"count > 2  =  {alert}")
    print()

    print("=== GROUP BY component with ongoing aggregates ===")
    per_component = group_by(bugs, ["C"], "count")
    for row in per_component:
        component, count = row.values
        print(f"  {component:12} -> {count.format()}")
    print()

    print("=== total open-bug days per component (SUM of durations) ===")
    per_component_load = group_by(bugs, ["C"], "sum_duration", "VT", output_name="load")
    for row in per_component_load:
        component, load = row.values
        values = ", ".join(
            f"{fmt_point(rt)}: {load.instantiate(rt)}"
            for rt in (mmdd(3, 1), mmdd(6, 1), mmdd(9, 1))
        )
        print(f"  {component:12} -> {values}")
    print()
    print("All of these were computed once and stay correct at every\n"
          "reference time - no re-aggregation when the clock advances.")


if __name__ == "__main__":
    main()
