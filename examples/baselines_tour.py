"""A tour of the prior approaches (Section III) and where each one breaks.

Four ways to handle the ongoing time point *now*, demonstrated on the
paper's own counter-examples:

1. **Clifford et al.** — instantiate when accessed: correct at the chosen
   reference time, invalidated as time passes by.
2. **Snodgrass' Forever** — replace *now* with the largest time point:
   plainly incorrect results.
3. **Anselma et al.** — ``T ∪ {now}``: keeps *now* in easy intersections,
   forced to instantiate otherwise.
4. **Torp et al.** — ``Tf``: uninstantiated ∩/− (enough for modifications)
   but not closed under min/max and no predicates.

Run with::

    python examples/baselines_tour.py
"""

from repro import fixed_interval, fmt_point, mmdd, until_now
from repro.baselines import (
    AnselmaInterval,
    NotRepresentableError,
    TfInterval,
    TfTimePoint,
    bind_relation,
    forever_relation,
    selection,
)
from repro.relational import OngoingRelation, Schema


def clifford_gets_outdated() -> None:
    print("=== 1. Clifford: results get invalidated as time passes ===")
    bugs = OngoingRelation.from_rows(
        Schema.of("BID", ("VT", "interval")),
        [(500, until_now(mmdd(1, 25))), (501, fixed_interval(mmdd(3, 30), mmdd(8, 21)))],
    )
    patch_window = (mmdd(8, 15), mmdd(8, 24))
    for rt in (mmdd(5, 14), mmdd(8, 20)):
        rows = selection(bind_relation(bugs, rt), 1, "before", patch_window)
        answer = sorted(row[0] for row in rows)
        print(f"  'bugs resolved before the patch' at rt={fmt_point(rt)}: {answer}")
    print("  -> the two answers differ; each is valid only at its own rt.\n")


def forever_is_wrong() -> None:
    print("=== 2. Forever: replacing now with the max time point is incorrect ===")
    bugs = OngoingRelation.from_rows(
        Schema.of("BID", ("VT", "interval")), [(500, until_now(mmdd(1, 25)))]
    )
    rt = mmdd(5, 14)
    correct = selection(bind_relation(bugs, rt), 1, "before", (mmdd(8, 15), mmdd(8, 24)))
    wrong = selection(
        bind_relation(forever_relation(bugs), rt), 1, "before",
        (mmdd(8, 15), mmdd(8, 24)),
    )
    print(f"  at rt={fmt_point(rt)}: correct answer contains bug 500: "
          f"{any(row[0] == 500 for row in correct)}")
    print(f"  Forever's answer contains bug 500: "
          f"{any(row[0] == 500 for row in wrong)}   <- wrong!\n")


def anselma_must_instantiate() -> None:
    print("=== 3. Anselma: T ∪ {now} keeps easy cases, instantiates the rest ===")
    kept = AnselmaInterval.make(mmdd(10, 14), None).intersect(
        AnselmaInterval.make(mmdd(10, 17), None)
    )
    print(f"  [10/14, now) ∩ [10/17, now) -> "
          f"[{fmt_point(kept.interval.start.value)}, now)  "
          f"instantiated: {kept.instantiated}")
    forced = AnselmaInterval.make(mmdd(10, 17), mmdd(10, 22)).intersect(
        AnselmaInterval.make(mmdd(10, 17), None), rt=mmdd(10, 20)
    )
    start, end = forced.interval.start.value, forced.interval.end.value
    print(f"  [10/17, 10/22) ∩ [10/17, now) -> "
          f"[{fmt_point(start)}, {fmt_point(end)})  "
          f"instantiated: {forced.instantiated} (only valid at rt=10/20)\n")


def torp_is_not_closed() -> None:
    print("=== 4. Torp: Tf handles ∩/- but is not closed under min/max ===")
    open_bug = TfInterval(TfTimePoint.fixed(mmdd(1, 25)), TfTimePoint.now())
    window = TfInterval(TfTimePoint.fixed(mmdd(8, 15)), TfTimePoint.fixed(mmdd(8, 24)))
    print(f"  [01/25, now) ∩ [08/15, 08/24) = {open_bug.intersect(window).format()}"
          f"  (stays in Tf)")
    try:
        TfTimePoint.min_now(mmdd(8, 20)).maximum(TfTimePoint.fixed(mmdd(8, 10)))
    except NotRepresentableError as error:
        print(f"  max(min(08/20, now), 08/10) -> {error}")
    print("  -> the result is the general ongoing point 08/10+08/20, which\n"
          "     only the paper's domain Omega can represent.\n")


if __name__ == "__main__":
    clifford_gets_outdated()
    forever_is_wrong()
    anselma_must_instantiate()
    torp_is_not_closed()
    print("The ongoing approach avoids all four problems: results carry an\n"
          "RT attribute and remain valid at every reference time.")
