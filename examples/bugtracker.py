"""The paper's running example (Section II), end to end.

A company tracks bugs (B), pre-scheduled patches (P), and technical leads
(L) for the components of its email service.  The query V joins open
spam-filter bugs with upcoming patches and the responsible technical leads:

    V = π[BID, B.VT, PID, Name, B.VT ∩ L.VT](
            σ[C='Spam filter'](B)
            ⋈ (B.C=P.C ∧ B.VT before P.VT) P
            ⋈ (B.C=L.C ∧ B.VT overlaps L.VT) L)

Run with::

    python examples/bugtracker.py

The output reproduces Fig. 2 of the paper exactly — including the ongoing
intersection ``[01/25, +08/18)`` ("Ann is responsible from 01/25 until
possibly earlier, but not later than 08/17") that no fixed representation
and no now-only representation can express — and then demonstrates the
validity of V at several reference times against a from-scratch
re-evaluation.
"""

from repro import fixed_interval, fmt_point, mmdd, until_now
from repro.engine import Database, scan
from repro.relational import Schema, col, lit


def build_database() -> Database:
    """The relations of Fig. 1 (base tuples get the trivial RT)."""
    db = Database("email-service")
    bugs = db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(mmdd(1, 25)))       # b1
    bugs.insert(501, "Spam filter", fixed_interval(mmdd(3, 30), mmdd(8, 21)))  # b2

    patches = db.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(mmdd(8, 15), mmdd(8, 24)))  # p1
    patches.insert(202, "Spam filter", fixed_interval(mmdd(8, 24), mmdd(8, 27)))  # p2

    leads = db.create_table("L", Schema.of("Name", "C", ("VT", "interval")))
    leads.insert("Ann", "Spam filter", fixed_interval(mmdd(1, 20), mmdd(8, 18)))  # l1
    leads.insert("Bob", "Spam filter", until_now(mmdd(8, 18)))                    # l2
    return db


def the_query():
    """The plan for query V."""
    return (
        scan("B")
        .where(col("C") == lit("Spam filter"))
        .join(
            scan("P"),
            on=(col("B.C") == col("P.C")) & col("B.VT").before(col("P.VT")),
            left_name="B",
            right_name="P",
        )
        .join(
            scan("L"),
            on=(col("B.C") == col("L.C")) & col("B.VT").overlaps(col("L.VT")),
            right_name="L",
        )
        .select_columns(
            ("BID", col("B.BID")),
            ("B.VT", col("B.VT")),
            ("PID", col("P.PID")),
            ("Name", col("L.Name")),
            ("Resp", col("B.VT").intersect(col("L.VT"))),
        )
    )


def main() -> None:
    db = build_database()
    plan = the_query()

    print("Physical plan chosen by the planner (Section VIII):")
    print(db.explain(plan))
    print()

    result = db.query(plan)
    print("Query result V (compare with Fig. 2 of the paper):")
    print(result.format())
    print()

    print("V remains valid as time passes by - instantiations at three rts:")
    for rt in (mmdd(8, 1), mmdd(8, 20), mmdd(9, 15)):
        rows = result.instantiate(rt)
        print(f"  rt={fmt_point(rt)}: {len(rows)} tuples")
        for row in sorted(rows, key=str):
            bid, bvt, pid, name, resp = row
            print(
                f"    bug {bid} VT=[{fmt_point(bvt[0])}, {fmt_point(bvt[1])}) "
                f"patch {pid} lead {name} responsible "
                f"[{fmt_point(resp[0])}, {fmt_point(resp[1])})"
            )
    print()
    print(
        "Note tuple v1: Ann's responsibility for bug 500 is [01/25, +08/18) -\n"
        "an ongoing interval that ends 'possibly earlier, but not later than\n"
        "08/17'. Fixed time points plus `now` cannot represent this."
    )


if __name__ == "__main__":
    main()
