"""Materialized ongoing views: caches that never go stale by time passing.

A key consequence of ongoing query results (Section IX-C): a materialized
view over an ongoing query only needs refreshing after explicit database
modifications — never because the clock advanced.  Applications that want
plain fixed results simply *instantiate* the stored ongoing result at their
reference time, which is far cheaper than re-running the query.

Run with::

    python examples/materialized_views.py
"""

import time

from repro import fmt_point, mmdd
from repro.datasets import SelectionWorkload, generate_mozilla, last_tenth
from repro.datasets import mozilla as mozilla_module
from repro.engine import MaterializedOngoingView
from repro.engine.modifications import current_insert


def main() -> None:
    dataset = generate_mozilla(5_000)
    db = dataset.as_database()
    workload = SelectionWorkload(
        "B",
        "overlaps",
        last_tenth(mozilla_module.HISTORY_START, mozilla_module.HISTORY_END),
    )

    view = MaterializedOngoingView("open_during_window", workload.plan(), db)
    started = time.perf_counter()
    view.refresh()
    refresh_seconds = time.perf_counter() - started
    print(
        f"view refreshed once: {len(view.result)} ongoing tuples "
        f"in {refresh_seconds * 1e3:.1f} ms"
    )

    print("\nServing *fixed* results at many reference times from the view:")
    total_instantiate = 0.0
    total_clifford = 0.0
    for offset in (-700, -400, -100, -10, 30, 400):
        rt = mozilla_module.HISTORY_END + offset
        started = time.perf_counter()
        from_view = view.instantiate(rt)
        total_instantiate += time.perf_counter() - started

        started = time.perf_counter()
        re_evaluated = workload.run_clifford(db, rt)
        total_clifford += time.perf_counter() - started

        assert from_view == frozenset(re_evaluated)
        print(
            f"  rt={fmt_point(rt):>12}: {len(from_view):>5} tuples "
            f"(identical to a full re-evaluation)"
        )
    print(
        f"\n6 instantiations: {total_instantiate * 1e3:.1f} ms from the view "
        f"vs {total_clifford * 1e3:.1f} ms via re-evaluation"
    )
    print(
        f"amortization incl. the refresh: "
        f"{(refresh_seconds + total_instantiate) * 1e3:.1f} ms vs "
        f"{total_clifford * 1e3:.1f} ms"
    )

    print(f"\nstale after time passes?  {view.is_stale()}  (never by time)")
    current_insert(
        db.table("B"),
        (99_999, "product-00", "component-00", "Linux", "new bug"),
        at=mozilla_module.HISTORY_END + 1,
    )
    print(f"stale after an explicit INSERT?  {view.is_stale()}")
    view.refresh()
    print(f"after refresh: {len(view.result)} ongoing tuples")


if __name__ == "__main__":
    main()
