"""Quickstart: ongoing time points, predicates, and a first ongoing query.

Run with::

    python examples/quickstart.py

The example walks through the core ideas of the paper in five minutes:
ongoing time points instantiate differently at different reference times;
predicates over them evaluate to *ongoing booleans*; and query results carry
a reference time attribute RT that keeps them valid as time passes by.
"""

from repro import (
    NOW,
    allen,
    fixed,
    fixed_interval,
    fmt_point,
    less_than,
    mmdd,
    ongoing_min,
    until_now,
)
from repro.engine import Database, scan
from repro.relational import Schema, col, lit


def ongoing_points() -> None:
    print("=== 1. Ongoing time points (the domain Omega) ===")
    # `now` instantiates to the reference time; a growing point 08/15+ is
    # "not earlier than 08/15, possibly later"; +08/20 is "not later than
    # 08/20, possibly earlier".
    deadline = ongoing_min(fixed(mmdd(8, 20)), NOW)  # min(08/20, now) = +08/20
    print(f"min(08/20, now) = {deadline}")
    for rt in (mmdd(8, 10), mmdd(8, 15), mmdd(8, 25)):
        print(f"  at rt={fmt_point(rt)} it instantiates to "
              f"{fmt_point(deadline.instantiate(rt))}")
    print()


def ongoing_predicates() -> None:
    print("=== 2. Predicates evaluate to ongoing booleans ===")
    bug = until_now(mmdd(1, 25))               # [01/25, now) - an open bug
    patch = fixed_interval(mmdd(8, 15), mmdd(8, 24))
    verdict = allen.before(bug, patch)          # ongoing boolean
    print(f"[01/25, now) before [08/15, 08/24)  =  {verdict}")
    for rt in (mmdd(8, 10), mmdd(8, 20)):
        print(f"  at rt={fmt_point(rt)}: {verdict.instantiate(rt)}")
    # Comparing ongoing points works the same way:
    print(f"now < 08/15  =  {less_than(NOW, fixed(mmdd(8, 15)))}")
    print()


def first_ongoing_query() -> None:
    print("=== 3. A query whose result remains valid as time passes ===")
    db = Database("quickstart")
    bugs = db.create_table("bugs", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(mmdd(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(mmdd(3, 30), mmdd(8, 21)))
    bugs.insert(502, "Dashboard", until_now(mmdd(7, 1)))

    # Which spam-filter bugs are open during the patch window?
    query = scan("bugs").where(
        (col("C") == lit("Spam filter"))
        & col("VT").overlaps(lit(fixed_interval(mmdd(8, 15), mmdd(8, 24))))
    )
    result = db.query(query)
    print(result.format())
    print()
    print("The RT attribute says *when* each tuple is in the answer:")
    for rt in (mmdd(8, 1), mmdd(8, 18), mmdd(12, 1)):
        rows = sorted(row[0] for row in result.instantiate(rt))
        print(f"  at rt={fmt_point(rt)}: bugs {rows}")
    print()
    print("No re-evaluation was needed - one ongoing result serves every rt.")


if __name__ == "__main__":
    ongoing_points()
    ongoing_predicates()
    first_ongoing_query()
