"""A live *grouped* dashboard: subscribable GROUP BY with per-group deltas.

Aggregate queries compile to plans now (:class:`repro.engine.plan.Aggregate`),
so a ``SELECT region, COUNT(*) ... GROUP BY region`` dashboard subscribes
like any other ongoing query: the grouped counts are *ongoing integers* —
functions of the reference time — so the panel stays correct as time
passes without a single re-evaluation, and a write refreshes the result
by re-aggregating **only the touched group's member set**.

Run with::

    python examples/live_group_dashboard.py
"""

import random
import time

from repro.core.interval import until_now
from repro.engine.database import Database
from repro.live import LiveSession
from repro.relational.schema import Schema
from repro.sqlish import subscribe

REGIONS = ("emea", "amer", "apac", "latam")
N_SESSIONS = 20_000
HISTORY = 1_000


def main() -> None:
    random.seed(7)
    db = Database("sessions")
    table = db.create_table(
        "S", Schema.of("SID", "Region", ("VT", "interval"))
    )
    table.insert_many(
        (i, REGIONS[i % len(REGIONS)], until_now(random.randrange(HISTORY)))
        for i in range(N_SESSIONS)
    )

    session = LiveSession(db)
    pushes = []
    sub = subscribe(
        "SELECT Region, COUNT(*) AS active FROM S GROUP BY Region",
        session,
        on_refresh=pushes.append,
        reference_time=HISTORY,
        name="ops-dashboard",
    )
    print(f"subscribed: {len(sub.result)} group rows, each an ongoing count")

    # Time passes: the grouped counts are piecewise-linear functions of
    # the reference time — serving any rt is pure instantiation.
    for rt in (HISTORY, HISTORY + 500):
        panel = dict(sorted(sub.instantiate(rt)))
        print(f"  rt={rt}: {panel}")

    # A single sign-in lands in one region...
    started = time.perf_counter()
    table.insert(N_SESSIONS, "apac", until_now(HISTORY + 1))
    session.flush()
    flush_ms = (time.perf_counter() - started) * 1e3
    stats = session.stats()
    print(
        f"one insert: flushed in {flush_ms:.2f} ms — "
        f"delta_refreshes={stats['repro_live_delta_refreshes_total']}, "
        f"full_refreshes={stats['repro_live_full_refreshes_total']} "
        f"(only the 'apac' group re-aggregated)"
    )
    print(f"  push carried result delta: {pushes[-1].delta}")
    print(f"  apac now: {dict(sub.instantiate(HISTORY + 2))['apac']} sessions")

    # A second dashboard with the same SQL shares the materialization.
    twin = subscribe(
        "SELECT Region, COUNT(*) AS active FROM S GROUP BY Region",
        session,
        name="exec-dashboard",
    )
    stats = session.stats()
    print(
        f"second dashboard attached: shared_results={stats['repro_live_shared_results']}, "
        f"cache_hits={stats['repro_live_cache_hits_total']} (same fingerprint, zero new work)"
    )
    assert twin.fingerprint == sub.fingerprint
    session.close()


if __name__ == "__main__":
    main()
