"""OSQL — querying ongoing databases in SQL, results that never go stale.

The paper's prototype extends PostgreSQL, so its users keep writing SQL.
This example shows the equivalent textual surface of this library: ongoing
literals, temporal predicates as infix keywords, the INTERSECTION function,
joins, set operations, and RT-aware aggregation.

Run with::

    python examples/osql_tour.py

(For an interactive shell over the same database: ``python -m repro.sqlish``.)
"""

from repro import fixed_interval, fmt_point, mmdd, until_now
from repro.engine import Database
from repro.relational import Schema


def build_database() -> Database:
    db = Database("email-service")
    bugs = db.create_table("B", Schema.of("BID", "C", ("VT", "interval")))
    bugs.insert(500, "Spam filter", until_now(mmdd(1, 25)))
    bugs.insert(501, "Spam filter", fixed_interval(mmdd(3, 30), mmdd(8, 21)))
    bugs.insert(502, "Dashboard", until_now(mmdd(7, 1)))
    patches = db.create_table("P", Schema.of("PID", "C", ("VT", "interval")))
    patches.insert(201, "Spam filter", fixed_interval(mmdd(8, 15), mmdd(8, 24)))
    patches.insert(202, "Spam filter", fixed_interval(mmdd(8, 24), mmdd(8, 27)))
    leads = db.create_table("L", Schema.of("Name", "C", ("VT", "interval")))
    leads.insert("Ann", "Spam filter", fixed_interval(mmdd(1, 20), mmdd(8, 18)))
    leads.insert("Bob", "Spam filter", until_now(mmdd(8, 18)))
    return db


QUERIES = [
    (
        "Ongoing literals and temporal predicates",
        "SELECT BID, VT FROM B WHERE VT OVERLAPS PERIOD '[08/15, 08/24)'",
    ),
    (
        "The paper's running example (query V of Section II)",
        """
        SELECT B.BID, B.VT AS BVT, P.PID, L.Name,
               INTERSECTION(B.VT, L.VT) AS Resp
        FROM B, P, L
        WHERE B.C = 'Spam filter'
          AND B.C = P.C AND B.VT BEFORE P.VT
          AND B.C = L.C AND B.VT OVERLAPS L.VT
        """,
    ),
    (
        "Set operations",
        "SELECT BID FROM B EXCEPT SELECT BID FROM B WHERE C = 'Dashboard'",
    ),
    (
        "RT-aware aggregation: per-component bug counts that vary with rt",
        """
        SELECT C, COUNT(*) AS n
        FROM B
        WHERE VT OVERLAPS PERIOD '[08/15, 08/24)'
        GROUP BY C
        """,
    ),
]


def main() -> None:
    db = build_database()
    for title, sql in QUERIES:
        print(f"=== {title} ===")
        print(sql.strip())
        print()
        result = db.sql(sql)
        print(result.format())
        print()

    print("=== and the results remain valid as time passes ===")
    result = db.sql(
        "SELECT BID FROM B WHERE VT OVERLAPS PERIOD '[08/15, 08/24)'"
    )
    for rt in (mmdd(8, 1), mmdd(8, 20), mmdd(12, 31)):
        rows = sorted(row[0] for row in result.instantiate(rt))
        print(f"  instantiated at {fmt_point(rt)}: bugs {rows}")


if __name__ == "__main__":
    main()
