"""A live dashboard: many subscribers, one ongoing result, zero polling.

The live engine (:mod:`repro.live`) turns the paper's headline property
into a push-based service: however many dashboard clients watch the same
ongoing query, the engine materializes it **once** (plans are fingerprinted
and shared), serves every client's reference time by cheap instantiation,
and re-evaluates only when a base table is explicitly modified — a whole
burst of modifications coalesces into a single refresh per affected plan.

Run with::

    python examples/live_dashboard.py

For the concurrent variant — writer threads, sharded background flushing,
threaded delivery with backpressure — see ``live_dashboard_serve.py``.
"""

import time

from repro import fmt_point
from repro.datasets import SelectionWorkload, generate_mozilla, last_tenth
from repro.datasets import mozilla as mozilla_module
from repro.engine.modifications import current_delete, current_insert
from repro.live import LiveSession


N_CLIENTS = 40


def main() -> None:
    dataset = generate_mozilla(5_000)
    db = dataset.as_database()
    workload = SelectionWorkload(
        "B",
        "overlaps",
        last_tenth(mozilla_module.HISTORY_START, mozilla_module.HISTORY_END),
    )

    session = LiveSession(db)
    pushes = []

    # Every dashboard client subscribes to the *same* query at its own
    # reference time.  The plans are structurally equal, so the session
    # materializes exactly one shared ongoing result.
    started = time.perf_counter()
    subscriptions = [
        session.subscribe(
            workload.plan(),
            on_refresh=pushes.append,
            reference_time=mozilla_module.HISTORY_END - 10 * client,
            name=f"client-{client}",
        )
        for client in range(N_CLIENTS)
    ]
    subscribe_seconds = time.perf_counter() - started
    stats = session.stats()
    print(
        f"{N_CLIENTS} clients subscribed in {subscribe_seconds * 1e3:.1f} ms: "
        f"{stats['repro_live_evaluations_total']} evaluation(s), "
        f"{stats['repro_live_cache_hits_total']} cache hits, "
        f"{stats['repro_live_shared_results']} shared result(s)"
    )

    # Time passes: every client is served by instantiation, no re-run.
    started = time.perf_counter()
    for subscription in subscriptions:
        rows = subscription.instantiate(subscription.reference_time)
    serve_seconds = time.perf_counter() - started
    print(
        f"served all {N_CLIENTS} clients by instantiation in "
        f"{serve_seconds * 1e3:.1f} ms "
        f"(evaluations still {session.stats()['repro_live_evaluations_total']})"
    )

    # A burst of explicit modifications arrives...
    bugs = db.table("B")
    demo_row = ("Demo", "Dashboard", "Linux", "live engine demo")
    current_insert(bugs, (10_000_000,) + demo_row, at=mozilla_module.HISTORY_END - 5)
    current_insert(bugs, (10_000_001,) + demo_row, at=mozilla_module.HISTORY_END - 4)
    current_delete(
        bugs,
        lambda row: row.values[0] == 10_000_000,
        at=mozilla_module.HISTORY_END - 2,
    )
    print(f"\n3 modifications arrived; dirty plans: {session.pending}")

    # ...and one flush refreshes the shared result once and pushes fresh
    # rows to every subscriber at its own reference time.
    started = time.perf_counter()
    refreshed = session.flush()
    flush_seconds = time.perf_counter() - started
    print(
        f"flush: {refreshed} re-evaluation for {N_CLIENTS} clients "
        f"({len(pushes)} pushes) in {flush_seconds * 1e3:.1f} ms"
    )
    example = pushes[0]
    print(
        f"first push: {len(example.rows)} rows at "
        f"rt={fmt_point(example.subscription.reference_time)}, "
        f"coalesced tables={example.changed_tables}"
    )

    final = session.stats()
    print(
        f"\nsession stats: {final['repro_live_evaluations_total']} evaluations total for "
        f"{final['repro_live_subscriptions']} subscriptions — "
        f"a Clifford-style service would have re-run the query "
        f"{N_CLIENTS * 2} times for the same traffic"
    )
    session.close()


if __name__ == "__main__":
    main()
