"""The live dashboard, concurrently: writers, shards, delivery workers.

``live_dashboard.py`` shows the single-threaded live engine; this variant
turns on the serving layer (:mod:`repro.serve`) and drives it the way a
deployment would:

* **4 writer threads** hammer the bug table with current inserts/deletes
  (the database write lock serializes them; every write is one typed
  change event);
* the session runs **4 delivery workers** (threaded fan-out with
  ``coalesce`` backpressure — a slow dashboard client receives fewer,
  merged notifications instead of stalling everyone) and **2 flush
  shards** (independent shared results refresh in parallel);
* :meth:`~repro.live.SubscriptionManager.serve` flushes in the
  background, debounced, woken only by modifications — the dashboards
  never poll and the engine never recomputes because time passed.

Run with::

    python examples/live_dashboard_serve.py
"""

import threading
import time

from repro.datasets import SelectionWorkload, generate_mozilla, last_tenth
from repro.datasets import mozilla as mozilla_module
from repro.engine.modifications import current_delete, current_insert
from repro.live import LiveSession

N_CLIENTS = 40
N_WRITERS = 4
WRITES_PER_WRITER = 25


def main() -> None:
    dataset = generate_mozilla(5_000)
    db = dataset.as_database()
    workload = SelectionWorkload(
        "B",
        "overlaps",
        last_tenth(mozilla_module.HISTORY_START, mozilla_module.HISTORY_END),
    )

    session = LiveSession(
        db,
        delivery_workers=4,
        flush_shards=2,
        backpressure="coalesce",
        queue_capacity=8,
    )
    pushes = []
    push_lock = threading.Lock()

    def on_refresh(event):
        with push_lock:
            pushes.append(event)

    subscriptions = [
        session.subscribe(
            workload.plan(),
            on_refresh=on_refresh,
            reference_time=mozilla_module.HISTORY_END - 10 * client,
            name=f"client-{client}",
        )
        for client in range(N_CLIENTS)
    ]
    stats = session.stats()
    print(
        f"{N_CLIENTS} clients share {stats['repro_live_shared_results']} materialization "
        f"({stats['repro_live_cache_hits_total']} cache hits); serving with "
        f"{stats['delivery_workers']} delivery workers / "
        f"{stats['flush_shards']} flush shards"
    )

    session.serve(debounce=0.005)
    bugs = db.table("B")

    def writer(seed: int) -> None:
        base = 20_000_000 + seed * WRITES_PER_WRITER
        for i in range(WRITES_PER_WRITER):
            bug_id = base + i
            row = ("Threaded", "Dashboard", "Linux", f"writer {seed} burst {i}")
            current_insert(
                bugs, (bug_id,) + row, at=mozilla_module.HISTORY_END - 5
            )
            if i % 5 == 4:
                current_delete(
                    bugs,
                    lambda r, b=bug_id: r.values[0] == b,
                    at=mozilla_module.HISTORY_END - 3,
                )

    started = time.perf_counter()
    threads = [
        threading.Thread(target=writer, args=(seed,)) for seed in range(N_WRITERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    write_seconds = time.perf_counter() - started
    print(
        f"\n{N_WRITERS} writer threads issued "
        f"{N_WRITERS * WRITES_PER_WRITER} modifications in "
        f"{write_seconds * 1e3:.1f} ms while the serve loop flushed behind them"
    )

    session.stop_serving()
    session.flush()  # whatever the loop had not picked up yet
    session.bus.drain(timeout=10)
    final = session.stats()
    with push_lock:
        n_pushes = len(pushes)
    print(
        f"flushes: {final['repro_live_flushes_total']} (debounce-coalesced from "
        f"{final['repro_live_events_total']} events), refreshes by delta: "
        f"{final['repro_live_delta_refreshes_total']}, per-shard {final['shard_flushes']}"
    )
    print(
        f"pushes: {n_pushes} delivered / {final['repro_serve_queued_notifications_total']} "
        f"queued, {final['repro_serve_coalesced_notifications_total']} coalesced under "
        f"backpressure, {final['repro_serve_dropped_notifications_total']} dropped"
    )
    expected = db.query(workload.plan())
    assert all(
        frozenset(subscription.result.tuples) == frozenset(expected.tuples)
        for subscription in subscriptions
    )
    print(
        "every dashboard client converged on the exact ongoing result — "
        "served concurrently, recomputed only on modification"
    )
    session.close()


if __name__ == "__main__":
    main()
